"""Wire-protocol unit tests: decode validation, deterministic encode."""

import pytest

from repro.serve import protocol
from repro.serve.errors import ProtocolError
from repro.serve.protocol import (
    Event,
    Request,
    Response,
    decode_reply,
    decode_request,
    encode,
    param_bool,
    param_float,
    param_int,
    param_opt_int,
    param_str,
)


class TestDecodeRequest:
    def test_roundtrip(self):
        request = Request(
            id="7",
            op="eco",
            session="chipA",
            params={"kind": "move", "cell": "c1", "x": 4.0, "y": 2.0},
        )
        decoded = decode_request(encode(request))
        assert decoded == request

    def test_encode_is_deterministic(self):
        a = encode(Request(id="1", op="ping", params={"b": 1, "a": 2}))
        b = encode(Request(id="1", op="ping", params={"a": 2, "b": 1}))
        assert a == b
        assert a.endswith(b"\n")

    @pytest.mark.parametrize(
        "line",
        [
            b"not json",
            b"[1, 2]",
            b'{"op": "ping"}',  # missing id
            b'{"id": "", "op": "ping"}',  # empty id
            b'{"id": "1"}',  # missing op
            b'{"id": "1", "op": "frobnicate"}',  # unknown op
            b'{"id": "1", "op": "eco"}',  # session op without session
            b'{"id": "1", "op": "ping", "params": 3}',
            b'{"id": "1", "op": "ping", "session": 9}',
        ],
    )
    def test_malformed_lines_raise(self, line):
        with pytest.raises(ProtocolError):
            decode_request(line)

    def test_every_session_op_requires_session(self):
        for op in protocol.SESSION_OPS:
            with pytest.raises(ProtocolError):
                decode_request(f'{{"id": "1", "op": "{op}"}}'.encode())

    def test_non_session_ops_decode_bare(self):
        for op in ("ping", "sessions", "shutdown"):
            request = decode_request(f'{{"id": "1", "op": "{op}"}}')
            assert request.op == op
            assert request.session is None


class TestDecodeReply:
    def test_ok_response(self):
        reply = decode_reply(
            encode(Response(id="3", ok=True, result={"seq": 1}))
        )
        assert isinstance(reply, Response)
        assert reply.ok and reply.result == {"seq": 1}

    def test_error_response(self):
        reply = decode_reply(
            encode(
                Response(
                    id="3",
                    ok=False,
                    error_code="busy",
                    error_message="queue full",
                )
            )
        )
        assert isinstance(reply, Response)
        assert not reply.ok
        assert reply.error_code == "busy"

    def test_event(self):
        reply = decode_reply(
            encode(Event(id="3", kind="progress", data={"done": 2}))
        )
        assert isinstance(reply, Event)
        assert reply.kind == "progress"
        assert reply.data == {"done": 2}

    def test_garbage_raises(self):
        with pytest.raises(ProtocolError):
            decode_reply(b'{"id": "1"}')


class TestTypedParams:
    def test_required_and_defaults(self):
        params = {"s": "x", "i": 3, "f": 1.5, "b": True, "n": None}
        assert param_str(params, "s") == "x"
        assert param_int(params, "i") == 3
        assert param_float(params, "f") == 1.5
        assert param_float(params, "i") == 3.0  # int accepted as number
        assert param_bool(params, "b") is True
        assert param_opt_int(params, "n") is None
        assert param_opt_int(params, "missing") is None
        assert param_int(params, "missing", 9) == 9

    def test_bool_is_not_an_int(self):
        with pytest.raises(ProtocolError):
            param_int({"i": True}, "i")
        with pytest.raises(ProtocolError):
            param_float({"f": False}, "f")

    def test_missing_required_raises(self):
        with pytest.raises(ProtocolError):
            param_str({}, "s")
        with pytest.raises(ProtocolError):
            param_int({}, "i")

    def test_wrong_types_raise(self):
        with pytest.raises(ProtocolError):
            param_str({"s": 3}, "s")
        with pytest.raises(ProtocolError):
            param_bool({"b": 1}, "b")
        with pytest.raises(ProtocolError):
            param_opt_int({"n": "x"}, "n")

    def test_bounds_accept_in_range_values(self):
        assert param_int({"i": 5}, "i", minimum=1, maximum=10) == 5
        assert param_int({"i": 1}, "i", minimum=1) == 1
        assert param_int({"i": 10}, "i", maximum=10) == 10
        assert param_float({"f": 0.5}, "f", minimum=0.0, maximum=1.0) == 0.5
        assert param_opt_int({"n": 3}, "n", minimum=1, maximum=4) == 3
        assert param_opt_int({"n": None}, "n", minimum=1) is None

    def test_bounds_reject_out_of_range_values(self):
        with pytest.raises(ProtocolError, match="must be >= 1"):
            param_int({"i": 0}, "i", minimum=1)
        with pytest.raises(ProtocolError, match="must be <= 10"):
            param_int({"i": 11}, "i", maximum=10)
        with pytest.raises(ProtocolError, match="must be >= 0.01"):
            param_float({"f": 0.001}, "f", minimum=0.01)
        with pytest.raises(ProtocolError, match="must be <= 0.95"):
            param_float({"f": 0.96}, "f", maximum=0.95)
        with pytest.raises(ProtocolError, match="must be >= 1"):
            param_opt_int({"n": 0}, "n", minimum=1)

    def test_bounds_apply_to_defaulted_and_nan_values(self):
        # A default inside the range passes; the wire value is what
        # gets range-checked, not the default.
        assert param_int({}, "i", 5, minimum=1, maximum=10) == 5
        with pytest.raises(ProtocolError, match="must be finite"):
            param_float({"f": float("nan")}, "f", minimum=0.0)
        with pytest.raises(ProtocolError, match="must be finite"):
            param_float({"f": float("inf")}, "f")
