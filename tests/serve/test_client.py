"""Client timeout discipline: half-open sockets, dead ports, retries.

A serving client must never block forever on a server that accepted
the connection and then went silent (half-open socket, wedged event
loop), and must be able to ride out a races-server-startup window with
bounded reconnect backoff — both regression-tested here against real
sockets, no mocks.
"""

import socket
import threading
import time

import pytest

from repro.serve.client import Client, ServerHandle


def silent_listener():
    """A listener that accepts connections and never says anything —
    the shape of a half-open socket from the client's side."""
    sock = socket.create_server(("127.0.0.1", 0))
    accepted = []

    def accept_loop():
        while True:
            try:
                conn, _ = sock.accept()
            except OSError:
                return
            accepted.append(conn)  # hold it open, never reply

    thread = threading.Thread(target=accept_loop, daemon=True)
    thread.start()
    return sock, accepted


class TestHalfOpenSocket:
    def test_silent_server_surfaces_timeout_not_hang(self):
        sock, accepted = silent_listener()
        try:
            port = sock.getsockname()[1]
            client = Client("127.0.0.1", port, timeout=0.3)
            try:
                rid = client.send("ping")
                started = time.monotonic()
                with pytest.raises(TimeoutError) as excinfo:
                    client.recv(rid)
                elapsed = time.monotonic() - started
                assert elapsed < 5.0  # bounded, not a hang
                message = str(excinfo.value)
                assert "0.3" in message
                assert "half-open" in message
            finally:
                client.close()
        finally:
            sock.close()
            for conn in accepted:
                conn.close()

    def test_connect_timeout_is_separate_from_read_timeout(self):
        sock, accepted = silent_listener()
        try:
            port = sock.getsockname()[1]
            # A generous dial budget with a tight read budget: the
            # connection succeeds, the read times out on its own clock.
            client = Client(
                "127.0.0.1", port, timeout=0.2, connect_timeout=10.0
            )
            try:
                rid = client.send("ping")
                with pytest.raises(TimeoutError):
                    client.recv(rid)
            finally:
                client.close()
        finally:
            sock.close()
            for conn in accepted:
                conn.close()


class TestConnectRetries:
    @staticmethod
    def _dead_port():
        """A port that was bound a moment ago and is now closed."""
        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        return port

    def test_dead_port_fails_fast_without_retries(self):
        port = self._dead_port()
        with pytest.raises(ConnectionError, match="after 1 attempt"):
            Client("127.0.0.1", port, timeout=1.0)

    def test_retries_are_bounded_and_reported(self):
        port = self._dead_port()
        started = time.monotonic()
        with pytest.raises(ConnectionError, match="after 3 attempts"):
            Client(
                "127.0.0.1", port,
                timeout=1.0, connect_retries=2, retry_backoff_s=0.05,
            )
        # Two backoffs (0.05 + 0.1) plus dial time: well-bounded.
        assert time.monotonic() - started < 5.0

    def test_retries_ride_out_late_server_start(self):
        """A client started before the server wins once the server is
        up, instead of failing on the first refused dial."""
        with ServerHandle() as handle:
            client = Client(
                handle.config.host, handle.port,
                timeout=30.0, connect_retries=3, retry_backoff_s=0.05,
            )
            try:
                result = client.result("ping")
                assert result.get("ok", True) is not False
            finally:
                client.close()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Client("127.0.0.1", 1, timeout=0.0)
        with pytest.raises(ValueError):
            Client("127.0.0.1", 1, connect_retries=-1)
        with pytest.raises(ValueError):
            Client("127.0.0.1", 1, retry_backoff_s=-0.1)


class TestDialCleanup:
    def test_setup_failure_closes_the_dialed_socket(self, monkeypatch):
        """A failure between a successful dial and a fully built client
        (``makefile`` here) must close the socket, not leak it out of
        the half-constructed ``__init__``."""
        dialed = []
        real_create = socket.create_connection

        def recording_create(*args, **kwargs):
            sock = real_create(*args, **kwargs)
            dialed.append(sock)
            return sock

        def exploding_makefile(self, *args, **kwargs):
            raise RuntimeError("makefile exploded")

        monkeypatch.setattr(
            socket, "create_connection", recording_create
        )
        monkeypatch.setattr(
            socket.socket, "makefile", exploding_makefile
        )
        listener, accepted = silent_listener()
        try:
            port = listener.getsockname()[1]
            with pytest.raises(RuntimeError, match="makefile exploded"):
                Client("127.0.0.1", port, timeout=1.0)
            assert len(dialed) == 1
            assert dialed[0].fileno() == -1  # closed, not leaked
        finally:
            listener.close()
            for conn in accepted:
                conn.close()
