"""End-to-end server tests over real sockets.

The two acceptance-critical properties live here:

* concurrent conflicting ECOs on one design serialize to
  commit-or-rollback whose final state is **byte-identical** to
  replaying the server's executed order sequentially;
* a fault-injected request rolls back without poisoning its session,
  and a quarantined session never takes its neighbors down.
"""

import threading

import pytest

from repro.bench import GeneratorConfig, generate_design
from repro.core import LegalizerConfig
from repro.serve import (
    Client,
    DesignSession,
    RequestFailed,
    ServeConfig,
    ServerHandle,
)

CELLS = 80
SEED = 11

# Mirrors the `generate` op defaults (replay must rebuild identically).
GENERATE_DENSITY = 0.45
GENERATE_DOUBLE_FRACTION = 0.1


@pytest.fixture
def server(tmp_path):
    handle = ServerHandle(
        ServeConfig(
            snapshot_dir=str(tmp_path / "snap"),
            allow_fault_injection=True,
            max_sessions=4,
        )
    ).start()
    yield handle
    handle.stop()


def open_session(client: Client, name: str, seed: int = SEED) -> None:
    client.result("generate", name, {"cells": CELLS, "seed": seed})
    client.result("legalize", name, {})


def replay_digest(
    name: str, executed: list[tuple[int, dict]], seed: int = SEED
) -> str:
    """Fresh identical design + the server's seq order, sequentially."""
    design = generate_design(
        GeneratorConfig(
            num_cells=CELLS,
            target_density=GENERATE_DENSITY,
            double_row_fraction=GENERATE_DOUBLE_FRACTION,
            seed=seed,
            name=name,
        )
    )
    session = DesignSession(name, design, LegalizerConfig(seed=seed))
    session.execute("legalize", {})
    for _, params in sorted(executed, key=lambda pair: pair[0]):
        session.execute("eco", params)
    return session.digest()


class TestBasics:
    def test_ping_and_lifecycle(self, server):
        with server.client() as client:
            ping = client.result("ping")
            assert ping["protocol"] == 1
            assert ping["sessions"] == 0
            open_session(client, "chipA")
            listing = client.result("sessions")["sessions"]
            assert [s["name"] for s in listing] == ["chipA"]
            assert listing[0]["placed"] == CELLS
            closed = client.result("close", "chipA", {"snapshot": True})
            assert closed["closed"] == "chipA"
            assert closed["snapshot"].endswith("chipA.aux")
            assert client.result("ping")["sessions"] == 0

    def test_error_codes_on_the_wire(self, server):
        with server.client() as client:
            with pytest.raises(RequestFailed) as err:
                client.result("digest", "ghost")
            assert err.value.code == "unknown_session"
            open_session(client, "chipA")
            with pytest.raises(RequestFailed) as err:
                client.result("generate", "chipA", {"cells": 10})
            assert err.value.code == "session_exists"
            with pytest.raises(RequestFailed) as err:
                client.result("eco", "chipA", {"kind": "teleport"})
            assert err.value.code == "eco"

    def test_progress_events_stream(self, server):
        with server.client() as client:
            client.result("generate", "chipA", {"cells": CELLS})
            rid = client.send("legalize", "chipA", {})
            response = client.recv(rid)
            assert response.ok
            stages = [e.data.get("stage") for e in client.events(rid)]
            assert "started" in stages
            assert "audited" in stages


class TestConcurrentIsolation:
    def test_conflicting_ecos_serialize_to_replayable_order(self, server):
        """8 clients hammer the same cells of one design concurrently;
        the committed state must equal the sequential replay."""
        with server.client() as setup:
            open_session(setup, "chipA")

        executed: list[tuple[int, dict]] = []
        errors: list[str] = []
        lock = threading.Lock()

        def hammer(worker: int) -> None:
            with server.client() as client:
                for k in range(4):
                    # Every worker fights over the same three cells.
                    cell = f"c{(worker + k) % 3}"
                    params = {
                        "kind": "move",
                        "cell": cell,
                        "x": 2.0 * worker + k,
                        "y": float(k % 4),
                    }
                    response = client.request("eco", "chipA", params)
                    with lock:
                        if response.ok:
                            executed.append(
                                (response.result["seq"], params)
                            )
                        else:
                            errors.append(
                                response.error_code or "internal"
                            )

        workers = [
            threading.Thread(target=hammer, args=(i,)) for i in range(8)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()

        assert not errors
        assert len(executed) == 32
        # seq values are the server's total execution order: unique,
        # gapless, starting right after the legalize request (seq 1).
        seqs = sorted(seq for seq, _ in executed)
        assert seqs == list(range(2, 34))

        with server.client() as check:
            server_digest = check.result("digest", "chipA")["digest"]
        assert replay_digest("chipA", executed) == server_digest

    def test_two_designs_take_traffic_independently(self, server):
        with server.client() as client:
            open_session(client, "chipA", seed=SEED)
            open_session(client, "chipB", seed=SEED + 1)

        results: dict[str, int] = {}
        lock = threading.Lock()

        def drive(name: str) -> None:
            with server.client() as client:
                done = 0
                for k in range(6):
                    response = client.request(
                        "eco",
                        name,
                        {"kind": "improve", "passes": 1, "max_moves": 5},
                    )
                    if response.ok:
                        done += 1
                with lock:
                    results[name] = done

        threads = [
            threading.Thread(target=drive, args=(n,))
            for n in ("chipA", "chipB")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == {"chipA": 6, "chipB": 6}


class TestFaultDomains:
    def test_injected_fault_rolls_back_session_survives(self, server):
        with server.client() as client:
            open_session(client, "chipA")
            before = client.result("digest", "chipA")["digest"]
            with pytest.raises(RequestFailed) as err:
                client.result(
                    "eco",
                    "chipA",
                    {"kind": "move", "cell": "c1", "x": 3.0, "y": 1.0,
                     "fault_at": 1},
                )
            assert err.value.code == "fault"
            after = client.result("digest", "chipA")
            assert after["digest"] == before
            # The session still takes work afterwards.
            result = client.result(
                "eco",
                "chipA",
                {"kind": "improve", "passes": 1, "max_moves": 5},
            )
            assert result["committed"] is True

    def test_quarantine_is_per_tenant(self, tmp_path):
        handle = ServerHandle(
            ServeConfig(
                snapshot_dir=str(tmp_path / "snap"),
                allow_fault_injection=True,
                fault_budget=1,
            )
        ).start()
        try:
            with handle.client() as client:
                open_session(client, "chipA")
                open_session(client, "chipB", seed=SEED + 1)
                with pytest.raises(RequestFailed) as err:
                    client.result(
                        "eco",
                        "chipA",
                        {"kind": "move", "cell": "c1", "x": 3.0,
                         "y": 1.0, "fault_at": 1},
                    )
                assert err.value.code == "fault"
                # chipA is quarantined now (budget 1)...
                with pytest.raises(RequestFailed) as err:
                    client.result(
                        "eco",
                        "chipA",
                        {"kind": "improve", "passes": 1},
                    )
                assert err.value.code == "quarantined"
                # ...but chipB never noticed, and chipA can still be
                # snapshotted and closed (salvage, not eviction).
                ok = client.result(
                    "eco", "chipB", {"kind": "improve", "passes": 1}
                )
                assert ok["committed"] is True
                names = [
                    s["name"]
                    for s in client.result("sessions")["sessions"]
                ]
                assert names == ["chipA", "chipB"]
                closed = client.result(
                    "close", "chipA", {"snapshot": True}
                )
                assert closed["snapshot"].endswith("chipA.aux")
        finally:
            handle.stop()


class TestAdmissionAndShutdown:
    def test_queue_full_rejects_with_busy(self, tmp_path):
        handle = ServerHandle(
            ServeConfig(max_inflight=1, queue_depth=1)
        ).start()
        try:
            with handle.client() as client:
                open_session(client, "chipA")
                # Pipeline several slow requests without reading
                # responses: 1 executes, 1 queues, the rest must be
                # rejected at the door.
                rids = [
                    client.send(
                        "eco",
                        "chipA",
                        {"kind": "improve", "passes": 2},
                    )
                    for _ in range(5)
                ]
                responses = [client.recv(rid) for rid in rids]
                busy = [
                    r
                    for r in responses
                    if not r.ok and r.error_code == "busy"
                ]
                served = [r for r in responses if r.ok]
                assert busy, "admission control never rejected"
                assert served, "no request was served at all"
        finally:
            handle.stop()

    def test_shutdown_flushes_all_sessions(self, tmp_path):
        snap = tmp_path / "snap"
        handle = ServerHandle(
            ServeConfig(snapshot_dir=str(snap))
        ).start()
        with handle.client() as client:
            open_session(client, "chipA")
            open_session(client, "chipB", seed=SEED + 1)
        flushed = handle.stop()
        assert sorted(p.rsplit("/", 1)[-1] for p in flushed) == [
            "chipA.aux",
            "chipB.aux",
        ]
        from repro.checker import verify_placement
        from repro.io import read_bookshelf

        for path in flushed:
            design = read_bookshelf(path)
            assert (
                verify_placement(design, require_all_placed=False) == []
            )

    def test_shutdown_op_stops_server(self, tmp_path):
        handle = ServerHandle(ServeConfig()).start()
        with handle.client() as client:
            assert client.result("shutdown")["shutting_down"] is True
        handle._thread.join(timeout=30)
        assert not handle._thread.is_alive()
