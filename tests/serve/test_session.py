"""DesignSession unit tests: commit-or-rollback, faults, quarantine."""

import pytest

from repro.bench import GeneratorConfig, generate_design
from repro.core import LegalizerConfig
from repro.serve import DesignSession, EcoError, SessionQuarantinedError
from repro.serve.errors import ProtocolError
from repro.testing.faults import InjectedFault


def make_session(
    name: str = "t", cells: int = 60, seed: int = 3, **kwargs
) -> DesignSession:
    design = generate_design(
        GeneratorConfig(num_cells=cells, seed=seed, name=name)
    )
    return DesignSession(
        name, design, LegalizerConfig(seed=seed), **kwargs
    )


def legalized_session(**kwargs) -> DesignSession:
    session = make_session(**kwargs)
    session.execute("legalize", {})
    return session


class TestLifecycle:
    def test_legalize_commits_and_audits(self):
        session = make_session()
        result = session.execute("legalize", {})
        assert result["committed"] is True
        assert result["violations"] == 0
        assert result["placed"] == len(session.design.cells)
        assert result["seq"] == 1
        assert result["digest"] == session.digest()

    def test_stats_and_digest_do_not_advance_seq(self):
        session = legalized_session()
        seq = session.seq
        stats = session.execute("stats", {})
        digest = session.execute("digest", {})
        assert session.seq == seq
        assert stats["seq"] == seq
        assert digest["digest"] == session.digest()
        assert len(stats["die_um"]) == 2

    def test_snapshot_roundtrips_a_legal_design(self, tmp_path):
        from repro.checker import verify_placement
        from repro.io import read_bookshelf

        session = legalized_session()
        aux = session.snapshot(str(tmp_path))
        reread = read_bookshelf(aux)
        assert verify_placement(reread, require_all_placed=False) == []
        assert sum(1 for c in reread.cells if c.is_placed) == len(
            session.design.cells
        )

    def test_snapshot_without_directory_fails(self):
        session = make_session()
        with pytest.raises(EcoError):
            session.snapshot()

    def test_snapshot_op_confines_dir_to_snapshot_dir(self, tmp_path):
        snap = tmp_path / "snap"
        session = legalized_session(snapshot_dir=str(snap))
        result = session.execute("snapshot", {"dir": "sub"})
        assert result["path"].startswith(str(snap))
        for escape in ("../outside", str(tmp_path / "elsewhere")):
            with pytest.raises(EcoError):
                session.execute("snapshot", {"dir": escape})
        assert not (tmp_path / "outside").exists()
        assert not (tmp_path / "elsewhere").exists()

    def test_snapshot_op_dir_requires_configured_snapshot_dir(
        self, tmp_path
    ):
        session = legalized_session()
        with pytest.raises(EcoError):
            session.execute("snapshot", {"dir": str(tmp_path)})


class TestEcoCommitOrRollback:
    def test_committed_move_changes_digest(self):
        session = legalized_session()
        before = session.digest()
        cell = next(c for c in session.design.cells if not c.fixed)
        result = session.execute(
            "eco",
            {
                "kind": "move",
                "cell": cell.name,
                "x": cell.x + 2.0,
                "y": float(cell.y),
            },
        )
        assert result["committed"] is True
        assert result["digest"] != before
        assert result["seq"] == 2

    def test_infeasible_move_rolls_back(self):
        session = legalized_session()
        before = session.digest()
        cell = next(c for c in session.design.cells if not c.fixed)
        result = session.execute(
            "eco",
            {"kind": "move", "cell": cell.name, "x": 1e6, "y": 1e6},
        )
        assert result["committed"] is False
        assert result["rolled_back"] is True
        assert result["digest"] == before
        # A rolled-back request still advances seq: it executed.
        assert result["seq"] == 2

    def test_unknown_cell_is_client_error_not_fault(self):
        session = legalized_session()
        before = session.digest()
        with pytest.raises(EcoError):
            session.execute(
                "eco", {"kind": "move", "cell": "zzz", "x": 1, "y": 1}
            )
        assert session.digest() == before
        assert session.consecutive_faults == 0
        assert session.seq == 1

    def test_unknown_kind_rejected(self):
        session = legalized_session()
        with pytest.raises(EcoError):
            session.execute("eco", {"kind": "teleport"})

    def test_wire_bounds_rejected_before_any_work(self):
        session = make_session()
        with pytest.raises(ProtocolError, match="must be >= 1"):
            session.execute("legalize", {"workers": 0})
        with pytest.raises(ProtocolError, match="must be <= 64"):
            session.execute("legalize", {"workers": 65})
        with pytest.raises(ProtocolError, match="must be <= 256"):
            session.execute("legalize", {"shards": 1000})
        assert session.seq == 0  # nothing committed

    def test_generate_bounds_rejected(self):
        config = LegalizerConfig(seed=1)
        with pytest.raises(ProtocolError, match="must be >= 1"):
            DesignSession.generate("g", {"cells": 0}, config)
        with pytest.raises(ProtocolError, match="must be <= 0.95"):
            DesignSession.generate("g", {"density": 0.99}, config)
        with pytest.raises(ProtocolError, match="must be >= 0"):
            DesignSession.generate("g", {"seed": -1}, config)

    def test_unknown_op_rejected(self):
        session = legalized_session()
        with pytest.raises(ProtocolError):
            session.execute("frobnicate", {})

    def test_improve_and_swap_pass_commit(self):
        session = legalized_session()
        improved = session.execute(
            "eco", {"kind": "improve", "passes": 1, "max_moves": 10}
        )
        assert improved["committed"] is True
        swapped = session.execute(
            "eco", {"kind": "swap_pass", "max_pairs": 8}
        )
        assert swapped["committed"] is True
        assert swapped["seq"] == 3


class TestResetRollback:
    @pytest.mark.parametrize("trip_at", [1, 30, 70])
    def test_failed_reset_legalize_restores_prior_placement(
        self, trip_at
    ):
        """A fault mid reset+legalize must roll back to the exact
        pre-request placement — the reset is journaled, so a failure
        cannot leave the design unplaced (trip_at 1/30 land inside the
        reset itself, 70 inside the re-legalization)."""
        from repro.testing.faults import FaultInjector

        session = legalized_session()
        before = session.digest()
        with FaultInjector(session.design, trip_at=trip_at):
            with pytest.raises(InjectedFault):
                session.execute("legalize", {"reset": True})
        assert session.digest() == before
        assert not session.quarantined
        assert session.consecutive_faults == 1
        assert session.seq == 1

    def test_reset_legalize_commits_a_full_replacement(self):
        session = legalized_session()
        result = session.execute("legalize", {"reset": True})
        assert result["committed"] is True
        assert result["violations"] == 0
        assert result["placed"] == len(session.design.cells)
        assert result["seq"] == 2


class TestSerializedReplay:
    def test_same_eco_order_gives_identical_digest(self):
        trace = [
            {"kind": "improve", "passes": 1, "max_moves": 12},
            {"kind": "swap_pass", "max_pairs": 10},
            {"kind": "move", "cell": "c3", "x": 10.0, "y": 4.0},
            {"kind": "move", "cell": "c7", "x": 1e6, "y": 1e6},
            {"kind": "resize", "cell": "c5", "width": 2},
        ]
        digests = []
        for _ in range(2):
            session = legalized_session()
            for params in trace:
                session.execute("eco", dict(params))
            digests.append(session.digest())
        assert digests[0] == digests[1]


class TestFaultDomain:
    def test_injected_fault_rolls_back_without_poisoning(self):
        session = legalized_session(allow_fault_injection=True)
        before = session.digest()
        cell = next(c for c in session.design.cells if not c.fixed)
        with pytest.raises(InjectedFault):
            session.execute(
                "eco",
                {
                    "kind": "move",
                    "cell": cell.name,
                    "x": cell.x + 2.0,
                    "y": float(cell.y),
                    "fault_at": 1,
                },
            )
        # Rolled back to the byte, charged to the budget, not fatal.
        assert session.digest() == before
        assert session.consecutive_faults == 1
        assert not session.quarantined
        # A clean request resets the consecutive-fault counter.
        result = session.execute(
            "eco",
            {
                "kind": "move",
                "cell": cell.name,
                "x": cell.x + 2.0,
                "y": float(cell.y),
            },
        )
        assert result["seq"] == 2
        assert session.consecutive_faults == 0

    def test_fault_injection_disabled_by_default(self):
        session = legalized_session()
        with pytest.raises(EcoError):
            session.execute(
                "eco",
                {"kind": "move", "cell": "c1", "x": 1.0, "y": 1.0,
                 "fault_at": 1},
            )

    def test_budget_exhaustion_quarantines(self):
        session = legalized_session(
            allow_fault_injection=True, fault_budget=2
        )
        cell = next(c for c in session.design.cells if not c.fixed)
        params = {
            "kind": "move",
            "cell": cell.name,
            "x": cell.x + 2.0,
            "y": float(cell.y),
            "fault_at": 1,
        }
        for _ in range(2):
            with pytest.raises(InjectedFault):
                session.execute("eco", dict(params))
        assert session.quarantined
        assert "budget" in (session.quarantine_reason or "")
        with pytest.raises(SessionQuarantinedError):
            session.execute(
                "eco",
                {"kind": "move", "cell": cell.name, "x": 1.0, "y": 1.0},
            )
        # Salvage paths stay open.
        assert session.execute("digest", {})["digest"] == session.digest()
        assert session.execute("stats", {})["seq"] == session.seq
