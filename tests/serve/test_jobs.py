"""JobQueue unit tests: retirement, stats hygiene, rejected submits."""

import asyncio
import threading

import pytest

from repro.serve import ServeConfig
from repro.serve.errors import ShuttingDownError
from repro.serve.jobs import JobQueue
from repro.serve.protocol import Request
from repro.serve.server import LegalizationServer


async def _settle(queue: JobQueue, rounds: int = 20) -> None:
    """Yield the loop until every idle worker has retired."""
    for _ in range(rounds):
        if not queue._workers and not queue._queues:
            return
        await asyncio.sleep(0)


class TestWorkerRetirement:
    def test_drained_queues_are_pruned(self):
        """A long-lived server must not keep an idle worker task and a
        stale ``stats().queued`` row for every session name ever used."""

        async def scenario() -> None:
            queue = JobQueue(max_inflight=2, queue_depth=4)
            for name in ("a", "b", "c"):
                result = await queue.submit(name, lambda: {"ok": True})
                assert result == {"ok": True}
            await _settle(queue)
            assert queue.stats().queued == {}
            assert queue._workers == {}
            assert queue.completed == 3

        asyncio.run(scenario())

    def test_key_is_reusable_after_retirement(self):
        async def scenario() -> None:
            queue = JobQueue(max_inflight=1, queue_depth=4)
            assert await queue.submit("a", lambda: {"n": 1}) == {"n": 1}
            await _settle(queue)
            # Same key again: a fresh queue/worker pair, FIFO intact.
            first = queue.submit("a", lambda: {"n": 2})
            second = queue.submit("a", lambda: {"n": 3})
            assert await first == {"n": 2}
            assert await second == {"n": 3}
            await _settle(queue)
            assert queue.stats().queued == {}

        asyncio.run(scenario())

    def test_retirement_survives_a_failing_job(self):
        async def scenario() -> None:
            queue = JobQueue(max_inflight=1, queue_depth=4)

            def boom() -> dict[str, object]:
                raise RuntimeError("job exploded")

            with pytest.raises(RuntimeError):
                await queue.submit("a", boom)
            await _settle(queue)
            assert queue.stats().queued == {}
            assert queue.failed == 1

        asyncio.run(scenario())


class TestRetirementSubmitRace:
    """The worker-retirement vs. submit interleavings (PR-9 audit).

    Retirement is safe because the post-job cleanup runs in one atomic
    event-loop slice; these tests pin both windows so a refactor that
    introduces an await into the retirement path fails loudly instead
    of stranding jobs."""

    def test_submit_while_last_job_is_running_is_not_stranded(self):
        """A job submitted while the worker is inside the *last*
        queued job's ``to_thread`` call must be drained by that same
        worker, not stranded on a deleted queue."""

        async def scenario() -> None:
            queue = JobQueue(max_inflight=2, queue_depth=8)
            release = threading.Event()
            entered = asyncio.Event()
            loop = asyncio.get_running_loop()

            def slow() -> dict[str, object]:
                loop.call_soon_threadsafe(entered.set)
                assert release.wait(timeout=10.0)
                return {"job": "slow"}

            first = queue.submit("a", slow)
            # The worker is now inside slow() for its last queued job.
            await entered.wait()
            second = queue.submit("a", lambda: {"job": "late"})
            release.set()
            assert await first == {"job": "slow"}
            assert await second == {"job": "late"}
            await _settle(queue)
            assert queue.stats().queued == {}
            assert queue.completed == 2

        asyncio.run(scenario())

    def test_retire_recreate_churn_keeps_fifo_and_loses_nothing(self):
        """Many bursts against one key across repeated retirement
        cycles: every future resolves and per-key FIFO order holds."""

        async def scenario() -> None:
            queue = JobQueue(max_inflight=4, queue_depth=64)
            order: list[int] = []

            def job(n: int):
                def run() -> dict[str, object]:
                    order.append(n)
                    return {"n": n}

                return run

            n = 0
            futures = []
            for _burst in range(25):
                for _ in range(4):
                    futures.append(queue.submit("a", job(n)))
                    n += 1
                # Let the worker drain fully so it retires between
                # bursts (the churn being exercised).
                await _settle(queue, rounds=200)
            results = await asyncio.gather(*futures)
            assert [r["n"] for r in results] == list(range(n))
            assert order == list(range(n))
            assert queue.stats().queued == {}
            assert queue._workers == {}
            assert queue.completed == n

        asyncio.run(scenario())


class TestReservationRelease:
    def test_rejected_open_releases_the_name(self):
        """If jobs.submit rejects an open/generate after the name was
        reserved, the placeholder must be released — otherwise the name
        reads as resident forever and eats a max_sessions slot."""

        async def scenario() -> None:
            server = LegalizationServer(ServeConfig(max_sessions=1))
            out: asyncio.Queue = asyncio.Queue()
            request = Request(
                id="r1",
                op="generate",
                session="chipA",
                params={"cells": 10},
            )
            server.jobs._closing = True
            with pytest.raises(ShuttingDownError):
                server._dispatch(request, out)
            assert "chipA" not in server.manager
            assert len(server.manager) == 0
            # The slot is genuinely free: a later reserve succeeds.
            server.manager.reserve("chipA")
            server.manager.release("chipA")

        asyncio.run(scenario())
