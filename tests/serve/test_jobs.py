"""JobQueue unit tests: retirement, stats hygiene, rejected submits."""

import asyncio

import pytest

from repro.serve import ServeConfig
from repro.serve.errors import ShuttingDownError
from repro.serve.jobs import JobQueue
from repro.serve.protocol import Request
from repro.serve.server import LegalizationServer


async def _settle(queue: JobQueue, rounds: int = 20) -> None:
    """Yield the loop until every idle worker has retired."""
    for _ in range(rounds):
        if not queue._workers and not queue._queues:
            return
        await asyncio.sleep(0)


class TestWorkerRetirement:
    def test_drained_queues_are_pruned(self):
        """A long-lived server must not keep an idle worker task and a
        stale ``stats().queued`` row for every session name ever used."""

        async def scenario() -> None:
            queue = JobQueue(max_inflight=2, queue_depth=4)
            for name in ("a", "b", "c"):
                result = await queue.submit(name, lambda: {"ok": True})
                assert result == {"ok": True}
            await _settle(queue)
            assert queue.stats().queued == {}
            assert queue._workers == {}
            assert queue.completed == 3

        asyncio.run(scenario())

    def test_key_is_reusable_after_retirement(self):
        async def scenario() -> None:
            queue = JobQueue(max_inflight=1, queue_depth=4)
            assert await queue.submit("a", lambda: {"n": 1}) == {"n": 1}
            await _settle(queue)
            # Same key again: a fresh queue/worker pair, FIFO intact.
            first = queue.submit("a", lambda: {"n": 2})
            second = queue.submit("a", lambda: {"n": 3})
            assert await first == {"n": 2}
            assert await second == {"n": 3}
            await _settle(queue)
            assert queue.stats().queued == {}

        asyncio.run(scenario())

    def test_retirement_survives_a_failing_job(self):
        async def scenario() -> None:
            queue = JobQueue(max_inflight=1, queue_depth=4)

            def boom() -> dict[str, object]:
                raise RuntimeError("job exploded")

            with pytest.raises(RuntimeError):
                await queue.submit("a", boom)
            await _settle(queue)
            assert queue.stats().queued == {}
            assert queue.failed == 1

        asyncio.run(scenario())


class TestReservationRelease:
    def test_rejected_open_releases_the_name(self):
        """If jobs.submit rejects an open/generate after the name was
        reserved, the placeholder must be released — otherwise the name
        reads as resident forever and eats a max_sessions slot."""

        async def scenario() -> None:
            server = LegalizationServer(ServeConfig(max_sessions=1))
            out: asyncio.Queue = asyncio.Queue()
            request = Request(
                id="r1",
                op="generate",
                session="chipA",
                params={"cells": 10},
            )
            server.jobs._closing = True
            with pytest.raises(ShuttingDownError):
                server._dispatch(request, out)
            assert "chipA" not in server.manager
            assert len(server.manager) == 0
            # The slot is genuinely free: a later reserve succeeds.
            server.manager.reserve("chipA")
            server.manager.release("chipA")

        asyncio.run(scenario())
