"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.io import read_bookshelf


@pytest.fixture
def generated(tmp_path):
    out = tmp_path / "gen"
    rc = main(
        [
            "generate",
            "--cells", "120",
            "--density", "0.4",
            "--seed", "7",
            "--name", "clitest",
            "--out", str(out),
        ]
    )
    assert rc == 0
    return out / "clitest.aux"


class TestGenerate:
    def test_generates_bundle(self, generated):
        design = read_bookshelf(str(generated))
        assert len(design.cells) == 120
        assert all(not c.is_placed for c in design.cells)


class TestLegalize:
    def test_mll_legalize_roundtrip(self, generated, tmp_path, capsys):
        out = tmp_path / "legal"
        rc = main(["legalize", str(generated), "--out", str(out)])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "violations 0" in captured
        design = read_bookshelf(str(out / "clitest.aux"))
        assert all(c.is_placed for c in design.cells)

    @pytest.mark.parametrize("algo", ["optimal", "abacus", "tetris"])
    def test_other_algorithms(self, generated, algo):
        assert main(["legalize", str(generated), "--algorithm", algo]) == 0

    def test_relaxed_flag(self, generated):
        assert main(["legalize", str(generated), "--relaxed"]) == 0

    def test_workers_flag_small_design_falls_back(self, generated, capsys):
        """120 cells sit below the serial threshold: the engine must
        report the sequential fallback and still legalize."""
        rc = main(["legalize", str(generated), "--workers", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sequential fallback" in out
        assert "violations 0" in out

    def test_workers_and_shards_flags_parallel_path(
        self, generated, tmp_path, capsys
    ):
        out = tmp_path / "par"
        rc = main(
            [
                "legalize", str(generated),
                "--workers", "2",
                "--shards", "2",
                "--serial-threshold", "0",
                "--out", str(out),
            ]
        )
        assert rc == 0
        captured = capsys.readouterr().out
        assert "engine: shards=2 workers=2" in captured
        assert "violations 0" in captured
        assert main(["check", str(out / "clitest.aux")]) == 0
        capsys.readouterr()


class TestLegalizeFailureReporting:
    def test_partial_result_reported_on_failure(self, tmp_path, capsys):
        """A run that exhausts its retry budget exits 1 and prints the
        partial result carried by LegalizationError instead of dying
        with a traceback."""
        from repro.io import write_bookshelf
        from tests.conftest import add_unplaced, make_design

        d = make_design(num_rows=1, row_width=10, name="jam")
        add_unplaced(d, 3, 1, 0.0, 0.0, name="ok")
        add_unplaced(d, 20, 1, 0.0, 0.0, name="giant")  # wider than die
        aux = write_bookshelf(d, str(tmp_path / "jam"))
        rc = main(["legalize", aux, "--rx", "4", "--ry", "0"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "legalization FAILED" in out
        assert "giant" in out  # names the stuck cell
        assert "1 placed" in out  # the partial count survived
        assert "unplaced 1" in out  # stats line still printed

    def test_audit_flag_accepted(self, generated):
        assert main(["legalize", str(generated), "--audit"]) == 0


class TestCheck:
    def test_illegal_input_reported(self, generated, capsys):
        rc = main(["check", str(generated)])
        assert rc == 1  # unplaced cells are violations
        assert "violations" in capsys.readouterr().out

    def test_legal_after_legalization(self, generated, tmp_path, capsys):
        out = tmp_path / "legal"
        main(["legalize", str(generated), "--out", str(out)])
        rc = main(["check", str(out / "clitest.aux")])
        assert rc == 0
        assert "legal" in capsys.readouterr().out


class TestGp:
    def test_gp_then_legalize(self, generated, tmp_path, capsys):
        placed = tmp_path / "gp"
        rc = main(["gp", str(generated), "--out", str(placed),
                   "--iterations", "6"])
        assert rc == 0
        assert "HPWL" in capsys.readouterr().out
        rc = main(["legalize", str(placed / "clitest.aux")])
        assert rc == 0


class TestShowAndStats:
    def test_ascii_show(self, generated, tmp_path, capsys):
        out = tmp_path / "legal"
        main(["legalize", str(generated), "--out", str(out)])
        rc = main(["show", str(out / "clitest.aux"), "--window", "0", "0", "20", "4"])
        assert rc == 0
        art = capsys.readouterr().out
        assert "|" in art

    def test_svg_show(self, generated, tmp_path):
        svg = tmp_path / "p.svg"
        rc = main(["show", str(generated), "--gp", "--svg", str(svg)])
        assert rc == 0
        assert svg.read_text().startswith("<svg")

    def test_stats(self, generated, capsys):
        rc = main(["stats", str(generated)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cells:     120" in out
        assert "density" in out
