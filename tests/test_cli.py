"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.io import read_bookshelf


@pytest.fixture
def generated(tmp_path):
    out = tmp_path / "gen"
    rc = main(
        [
            "generate",
            "--cells", "120",
            "--density", "0.4",
            "--seed", "7",
            "--name", "clitest",
            "--out", str(out),
        ]
    )
    assert rc == 0
    return out / "clitest.aux"


class TestGenerate:
    def test_generates_bundle(self, generated):
        design = read_bookshelf(str(generated))
        assert len(design.cells) == 120
        assert all(not c.is_placed for c in design.cells)


class TestLegalize:
    def test_mll_legalize_roundtrip(self, generated, tmp_path, capsys):
        out = tmp_path / "legal"
        rc = main(["legalize", str(generated), "--out", str(out)])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "violations 0" in captured
        design = read_bookshelf(str(out / "clitest.aux"))
        assert all(c.is_placed for c in design.cells)

    @pytest.mark.parametrize("algo", ["optimal", "abacus", "tetris"])
    def test_other_algorithms(self, generated, algo):
        assert main(["legalize", str(generated), "--algorithm", algo]) == 0

    def test_relaxed_flag(self, generated):
        assert main(["legalize", str(generated), "--relaxed"]) == 0

    def test_workers_flag_small_design_falls_back(self, generated, capsys):
        """120 cells sit below the serial threshold: the engine must
        report the sequential fallback and still legalize."""
        rc = main(["legalize", str(generated), "--workers", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sequential fallback" in out
        assert "violations 0" in out

    def test_workers_and_shards_flags_parallel_path(
        self, generated, tmp_path, capsys
    ):
        out = tmp_path / "par"
        rc = main(
            [
                "legalize", str(generated),
                "--workers", "2",
                "--shards", "2",
                "--serial-threshold", "0",
                "--out", str(out),
            ]
        )
        assert rc == 0
        captured = capsys.readouterr().out
        assert "engine: transport=local shards=2 workers=2" in captured
        assert "violations 0" in captured
        assert main(["check", str(out / "clitest.aux")]) == 0
        capsys.readouterr()


class TestLegalizeFailureReporting:
    def test_partial_result_reported_on_failure(self, tmp_path, capsys):
        """A run that exhausts its retry budget exits 1 and prints the
        partial result carried by LegalizationError instead of dying
        with a traceback."""
        from repro.io import write_bookshelf
        from tests.conftest import add_unplaced, make_design

        d = make_design(num_rows=1, row_width=10, name="jam")
        add_unplaced(d, 3, 1, 0.0, 0.0, name="ok")
        add_unplaced(d, 20, 1, 0.0, 0.0, name="giant")  # wider than die
        aux = write_bookshelf(d, str(tmp_path / "jam"))
        rc = main(["legalize", aux, "--rx", "4", "--ry", "0"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "legalization FAILED" in out
        assert "giant" in out  # names the stuck cell
        assert "1 placed" in out  # the partial count survived
        assert "unplaced 1" in out  # stats line still printed

    def test_audit_flag_accepted(self, generated):
        assert main(["legalize", str(generated), "--audit"]) == 0


class TestCheck:
    def test_illegal_input_reported(self, generated, capsys):
        rc = main(["check", str(generated)])
        assert rc == 1  # unplaced cells are violations
        assert "violations" in capsys.readouterr().out

    def test_legal_after_legalization(self, generated, tmp_path, capsys):
        out = tmp_path / "legal"
        main(["legalize", str(generated), "--out", str(out)])
        rc = main(["check", str(out / "clitest.aux")])
        assert rc == 0
        assert "legal" in capsys.readouterr().out


class TestGp:
    def test_gp_then_legalize(self, generated, tmp_path, capsys):
        placed = tmp_path / "gp"
        rc = main(["gp", str(generated), "--out", str(placed),
                   "--iterations", "6"])
        assert rc == 0
        assert "HPWL" in capsys.readouterr().out
        rc = main(["legalize", str(placed / "clitest.aux")])
        assert rc == 0


class TestShowAndStats:
    def test_ascii_show(self, generated, tmp_path, capsys):
        out = tmp_path / "legal"
        main(["legalize", str(generated), "--out", str(out)])
        rc = main(["show", str(out / "clitest.aux"), "--window", "0", "0", "20", "4"])
        assert rc == 0
        art = capsys.readouterr().out
        assert "|" in art

    def test_svg_show(self, generated, tmp_path):
        svg = tmp_path / "p.svg"
        rc = main(["show", str(generated), "--gp", "--svg", str(svg)])
        assert rc == 0
        assert svg.read_text().startswith("<svg")

    def test_stats(self, generated, capsys):
        rc = main(["stats", str(generated)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cells:     120" in out
        assert "density" in out

class TestFaultToleranceFlags:
    PAR = ["--workers", "2", "--shards", "2", "--serial-threshold", "0"]

    def test_supervision_knobs_accepted(self, generated, capsys):
        rc = main(
            ["legalize", str(generated), *self.PAR,
             "--shard-timeout", "30", "--shard-retries", "1"]
        )
        assert rc == 0
        assert "violations 0" in capsys.readouterr().out

    def test_no_supervise_bare_pool(self, generated, capsys):
        rc = main(["legalize", str(generated), *self.PAR, "--no-supervise"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "engine: transport=local shards=2 workers=2" in out
        assert "violations 0" in out

    def test_quarantine_flag_reports_empty(self, generated, capsys):
        rc = main(["legalize", str(generated), "--quarantine"])
        assert rc == 0
        assert "quarantined 0 cells" in capsys.readouterr().out

    def test_env_fault_chaos_run_recovers(
        self, generated, capsys, monkeypatch
    ):
        """The documented chaos drill: crash shard 0's first worker via
        the environment hook; the supervised run must self-heal."""
        monkeypatch.setenv("REPRO_WORKER_FAULT", "crash,shard=0,attempts=1")
        rc = main(["legalize", str(generated), *self.PAR])
        assert rc == 0
        out = capsys.readouterr().out
        assert "crashes=1" in out
        assert "retries=1" in out
        assert "violations 0" in out
        assert "unplaced 0" in out

    def test_checkpoint_then_resume(self, generated, tmp_path, capsys):
        ckpt = tmp_path / "run.ckpt"
        rc = main(
            ["legalize", str(generated), *self.PAR,
             "--checkpoint", str(ckpt)]
        )
        assert rc == 0
        assert ckpt.exists()
        first = capsys.readouterr().out
        assert "violations 0" in first

        rc = main(
            ["legalize", str(generated), *self.PAR, "--resume", str(ckpt)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "resumed=2" in out  # both shards came from the snapshot
        assert "violations 0" in out

    def test_resume_requires_matching_checkpoint_path(
        self, generated, tmp_path
    ):
        with pytest.raises(SystemExit, match="same file"):
            main(
                ["legalize", str(generated), *self.PAR,
                 "--checkpoint", str(tmp_path / "a.ckpt"),
                 "--resume", str(tmp_path / "b.ckpt")]
            )

    def test_checkpoint_every_flag(self, generated, tmp_path, capsys):
        ckpt = tmp_path / "run.ckpt"
        rc = main(
            ["legalize", str(generated), *self.PAR,
             "--checkpoint", str(ckpt), "--checkpoint-every", "2"]
        )
        assert rc == 0
        assert ckpt.exists()
        capsys.readouterr()


class TestGracefulShutdown:
    """Unit coverage of the signal path (the handler itself is
    exercised end-to-end by the CI chaos job via ``kill``)."""

    def test_report_without_checkpoint(self, capsys):
        import signal

        from repro.cli import GracefulShutdown, _report_shutdown

        rc = _report_shutdown(GracefulShutdown(signal.SIGINT), None)
        assert rc == 128 + signal.SIGINT
        out = capsys.readouterr().out
        assert "interrupted by SIGINT" in out
        assert "--checkpoint" in out  # the how-to-make-resumable hint

    def test_report_before_shard_phase(self, tmp_path, capsys):
        import signal

        from repro.cli import GracefulShutdown, _report_shutdown
        from repro.engine import CheckpointManager

        manager = CheckpointManager(str(tmp_path / "x.ckpt"))
        rc = _report_shutdown(GracefulShutdown(signal.SIGTERM), manager)
        assert rc == 128 + signal.SIGTERM
        out = capsys.readouterr().out
        assert "before the shard phase" in out

    def test_report_flushes_bound_checkpoint(self, tmp_path, capsys):
        import signal

        from repro.bench import GeneratorConfig, generate_design
        from repro.cli import GracefulShutdown, _report_shutdown
        from repro.core import LegalizerConfig
        from repro.engine import (
            CheckpointManager,
            EngineConfig,
            load_checkpoint,
            partition_design,
        )

        design = generate_design(
            GeneratorConfig(num_cells=400, target_density=0.4, seed=2)
        )
        cfg = LegalizerConfig(seed=1)
        part = partition_design(
            design, cfg, EngineConfig(workers=2, shards=2, serial_threshold=0)
        )
        path = tmp_path / "x.ckpt"
        manager = CheckpointManager(str(path)).open(design, cfg, part)

        rc = _report_shutdown(GracefulShutdown(signal.SIGTERM), manager)
        assert rc == 128 + signal.SIGTERM
        out = capsys.readouterr().out
        assert "interrupted by SIGTERM: 0/2 shards checkpointed" in out
        assert f"--resume {path}" in out
        assert load_checkpoint(str(path)).completed == {}
