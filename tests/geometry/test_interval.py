"""Unit tests for repro.geometry.interval."""

import pytest

from repro.geometry import Interval


class TestLength:
    def test_positive_length(self):
        assert Interval(2, 7).length == 5

    def test_zero_length_single_point(self):
        iv = Interval(4, 4)
        assert iv.length == 0
        assert not iv.is_empty
        assert iv.contains(4)

    def test_negative_length_is_empty(self):
        iv = Interval(5, 3)
        assert iv.length == -2
        assert iv.is_empty


class TestContains:
    def test_endpoints_included(self):
        iv = Interval(1, 9)
        assert iv.contains(1)
        assert iv.contains(9)

    def test_outside(self):
        iv = Interval(1, 9)
        assert not iv.contains(0.999)
        assert not iv.contains(9.001)

    def test_empty_contains_nothing(self):
        assert not Interval(5, 3).contains(4)


class TestOverlapIntersect:
    def test_touching_intervals_overlap(self):
        # Closed intervals sharing one point share a cutline (paper 5.1.2).
        assert Interval(0, 5).overlaps(Interval(5, 9))

    def test_disjoint(self):
        assert not Interval(0, 4).overlaps(Interval(5, 9))

    def test_nested(self):
        assert Interval(0, 10).overlaps(Interval(3, 4))

    def test_intersect_produces_common_range(self):
        got = Interval(0, 6).intersect(Interval(4, 9))
        assert (got.lo, got.hi) == (4, 6)

    def test_intersect_of_disjoint_is_empty(self):
        assert Interval(0, 2).intersect(Interval(5, 8)).is_empty


class TestClamp:
    def test_clamp_inside_is_identity(self):
        assert Interval(2, 8).clamp(5) == 5

    def test_clamp_below(self):
        assert Interval(2, 8).clamp(-3) == 2

    def test_clamp_above(self):
        assert Interval(2, 8).clamp(99) == 8

    def test_clamp_empty_raises(self):
        with pytest.raises(ValueError):
            Interval(8, 2).clamp(5)
