"""Unit tests for repro.geometry.point."""

from repro.geometry import Point


def test_manhattan_distance():
    assert Point(0, 0).manhattan_to(Point(3, 4)) == 7


def test_manhattan_is_symmetric():
    a, b = Point(1.5, -2.0), Point(-3.0, 4.25)
    assert a.manhattan_to(b) == b.manhattan_to(a)


def test_translated():
    assert Point(1, 2).translated(0.5, -1) == Point(1.5, 1)


def test_as_int_rounds():
    assert Point(1.4, 2.6).as_int() == Point(1, 3)
