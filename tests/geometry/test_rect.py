"""Unit tests for repro.geometry.rect."""

from repro.geometry import Point, Rect


class TestEdgesAndArea:
    def test_edges(self):
        r = Rect(2, 3, 4, 5)
        assert r.x1 == 6
        assert r.y1 == 8

    def test_area(self):
        assert Rect(0, 0, 4, 5).area == 20

    def test_center(self):
        assert Rect(0, 0, 4, 2).center == Point(2, 1)


class TestOverlap:
    def test_abutting_rects_do_not_overlap(self):
        # Half-open boxes: edge-to-edge cells are legal (constraint 1).
        assert not Rect(0, 0, 3, 1).overlaps(Rect(3, 0, 3, 1))

    def test_vertically_abutting_do_not_overlap(self):
        assert not Rect(0, 0, 3, 1).overlaps(Rect(0, 1, 3, 1))

    def test_one_site_overlap(self):
        assert Rect(0, 0, 3, 1).overlaps(Rect(2, 0, 3, 1))

    def test_containment_overlaps(self):
        assert Rect(0, 0, 10, 10).overlaps(Rect(4, 4, 1, 1))

    def test_intersection_area(self):
        assert Rect(0, 0, 4, 4).intersection_area(Rect(2, 2, 4, 4)) == 4
        assert Rect(0, 0, 2, 2).intersection_area(Rect(5, 5, 1, 1)) == 0


class TestContainment:
    def test_contains_rect_inclusive_of_edges(self):
        outer = Rect(0, 0, 10, 4)
        assert outer.contains_rect(Rect(0, 0, 10, 4))
        assert outer.contains_rect(Rect(7, 3, 3, 1))
        assert not outer.contains_rect(Rect(8, 3, 3, 1))

    def test_contains_point_half_open(self):
        r = Rect(0, 0, 5, 5)
        assert r.contains_point(Point(0, 0))
        assert not r.contains_point(Point(5, 5))

    def test_translated(self):
        assert Rect(1, 2, 3, 4).translated(2, -1) == Rect(3, 1, 3, 4)
