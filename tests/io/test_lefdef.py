"""Unit tests for the LEF/DEF-lite reader/writer."""

import os

import pytest

from repro.bench import GeneratorConfig, generate_design
from repro.checker import assert_legal, verify_placement
from repro.core import LegalizerConfig, legalize
from repro.db import Rail
from repro.io import read_lefdef, write_lefdef
from tests.conftest import add_placed, add_unplaced, make_design


def roundtrip(design, tmp_path):
    lef, def_ = write_lefdef(design, str(tmp_path))
    return read_lefdef(lef, def_)


class TestRoundTrip:
    def test_positions_and_sizes(self, tmp_path):
        d = generate_design(GeneratorConfig(num_cells=100, seed=1, name="x"))
        legalize(d, LegalizerConfig(seed=1))
        d2 = roundtrip(d, tmp_path)
        assert d2.name == "x"
        by = {c.name: c for c in d2.cells}
        for c in d.cells:
            c2 = by[c.name]
            assert (c2.x, c2.y) == (c.x, c.y)
            assert (c2.width, c2.height) == (c.width, c.height)
            assert c2.master.name == c.master.name
        assert_legal(d2)

    def test_hpwl_preserved(self, tmp_path):
        d = generate_design(GeneratorConfig(num_cells=80, seed=2))
        legalize(d, LegalizerConfig(seed=2))
        d2 = roundtrip(d, tmp_path)
        assert d2.hpwl_um() == pytest.approx(d.hpwl_um(), abs=1e-5)

    def test_gp_positions_survive(self, tmp_path):
        d = make_design()
        add_unplaced(d, 3, 1, 4.27, 2.93, name="float")
        d2 = roundtrip(d, tmp_path)
        c = d2.cells[0]
        assert not c.is_placed
        assert c.gp_x == pytest.approx(4.27)
        assert c.gp_y == pytest.approx(2.93)

    def test_rail_property_survives(self, tmp_path):
        d = make_design()
        add_placed(d, 2, 2, 0, 0, rail=Rail.GND, name="dff")
        d2 = roundtrip(d, tmp_path)
        assert d2.cells[0].master.bottom_rail is Rail.GND
        assert verify_placement(d2) == []

    def test_rows_and_rails(self, tmp_path):
        d = make_design(num_rows=6, first_rail=Rail.VDD)
        d2 = roundtrip(d, tmp_path)
        assert d2.floorplan.num_rows == 6
        for r, r2 in zip(d.floorplan.rows, d2.floorplan.rows):
            assert r2.bottom_rail is r.bottom_rail

    def test_blockages_and_fences(self, tmp_path):
        d = generate_design(
            GeneratorConfig(
                num_cells=150,
                seed=3,
                blockage_fraction=0.08,
                fence_count=2,
                fence_area_fraction=0.2,
            )
        )
        legalize(d, LegalizerConfig(seed=3))
        d2 = roundtrip(d, tmp_path)
        assert d2.floorplan.blockages == d.floorplan.blockages
        assert len(d2.floorplan.fences) == len(d.floorplan.fences)
        assert [c.region for c in d2.cells] == [c.region for c in d.cells]
        assert_legal(d2)

    def test_fixed_cells(self, tmp_path):
        d = make_design()
        add_placed(d, 3, 1, 5, 2, fixed=True, name="pad")
        d2 = roundtrip(d, tmp_path)
        assert d2.cells[0].fixed
        assert (d2.cells[0].x, d2.cells[0].y) == (5, 2)

    def test_orientation_written(self, tmp_path):
        d = make_design(first_rail=Rail.GND)
        m = d.library.get_or_create(2, 1)
        c = d.add_cell(m, name="flip")
        d.place(c, 0, 1)  # VDD row -> FS
        write_lefdef(d, str(tmp_path), "o")
        def_text = (tmp_path / "o.def").read_text()
        assert ") FS" in def_text

    def test_pin_names_in_nets(self, tmp_path):
        d = generate_design(GeneratorConfig(num_cells=60, seed=4))
        d2 = roundtrip(d, tmp_path)
        for net, net2 in zip(d.netlist, d2.netlist):
            assert [p.name for p in net.pins] == [p.name for p in net2.pins]


class TestFiles:
    def test_both_files_written(self, tmp_path):
        d = make_design(name="pair")
        lef, def_ = write_lefdef(d, str(tmp_path))
        assert os.path.exists(lef) and lef.endswith("pair.lef")
        assert os.path.exists(def_) and def_.endswith("pair.def")

    def test_lef_declares_site_and_macros(self, tmp_path):
        d = make_design()
        add_placed(d, 3, 2, 0, 0)
        lef, _ = write_lefdef(d, str(tmp_path))
        text = open(lef).read()
        assert "SITE core" in text
        assert "MACRO" in text
        assert "SIZE 0.2 BY 1.71" in text

    def test_def_units_exact(self, tmp_path):
        # 1000 DBU/um with 0.2x1.71 sites: site = 200 x 1710 DBU exactly.
        d = make_design()
        add_placed(d, 2, 1, 3, 2)
        _, def_ = write_lefdef(d, str(tmp_path))
        text = open(def_).read()
        assert "( 600 3420 )" in text  # x=3 sites, y=2 rows
