"""Unit tests for Bookshelf I/O."""

import os

import pytest

from repro.bench import GeneratorConfig, generate_design
from repro.checker import assert_legal, verify_placement
from repro.core import LegalizerConfig, legalize
from repro.db import Rail
from repro.io import read_bookshelf, write_bookshelf
from repro.geometry import Rect
from tests.conftest import add_placed, add_unplaced, make_design


class TestRoundTrip:
    def test_placed_design_roundtrips(self, tmp_path):
        d = generate_design(GeneratorConfig(num_cells=80, seed=1, name="rt"))
        legalize(d, LegalizerConfig(seed=1))
        aux = write_bookshelf(d, str(tmp_path))
        d2 = read_bookshelf(aux)
        assert d2.name == "rt"
        assert len(d2.cells) == len(d.cells)
        by_name = {c.name: c for c in d2.cells}
        for c in d.cells:
            c2 = by_name[c.name]
            assert (c2.x, c2.y) == (c.x, c.y)
            assert (c2.width, c2.height) == (c.width, c.height)
            assert c2.gp_x == pytest.approx(c.gp_x)
            assert c2.gp_y == pytest.approx(c.gp_y)
        assert_legal(d2)

    def test_hpwl_survives_roundtrip(self, tmp_path):
        d = generate_design(GeneratorConfig(num_cells=60, seed=2))
        legalize(d, LegalizerConfig(seed=2))
        aux = write_bookshelf(d, str(tmp_path))
        d2 = read_bookshelf(aux)
        assert d2.hpwl_um() == pytest.approx(d.hpwl_um())
        assert d2.hpwl_um(use_gp=True) == pytest.approx(d.hpwl_um(use_gp=True))

    def test_rail_parity_survives(self, tmp_path):
        d = make_design()
        add_placed(d, 2, 2, 0, 0, rail=Rail.GND, name="dff0")
        aux = write_bookshelf(d, str(tmp_path))
        d2 = read_bookshelf(aux)
        c = d2.cells[0]
        assert c.master.bottom_rail is Rail.GND
        assert verify_placement(d2) == []

    def test_rows_and_rails_survive(self, tmp_path):
        d = make_design(num_rows=6, first_rail=Rail.VDD)
        aux = write_bookshelf(d, str(tmp_path))
        d2 = read_bookshelf(aux)
        fp, fp2 = d.floorplan, d2.floorplan
        assert fp2.num_rows == fp.num_rows
        assert fp2.row_width == fp.row_width
        for r, r2 in zip(fp.rows, fp2.rows):
            assert r2.bottom_rail is r.bottom_rail

    def test_blockages_survive(self, tmp_path):
        d = make_design(blockages=[Rect(5, 2, 4, 3)])
        aux = write_bookshelf(d, str(tmp_path))
        d2 = read_bookshelf(aux)
        assert d2.floorplan.blockages == [Rect(5, 2, 4, 3)]
        assert len(d2.floorplan.segments) == len(d.floorplan.segments)

    def test_unplaced_cells_keep_gp(self, tmp_path):
        d = make_design()
        add_unplaced(d, 3, 1, 4.25, 2.75, name="float")
        aux = write_bookshelf(d, str(tmp_path))
        d2 = read_bookshelf(aux)
        c = d2.cells[0]
        assert c.gp_x == pytest.approx(4.25)
        assert c.gp_y == pytest.approx(2.75)
        assert not c.is_placed

    def test_fixed_cells_marked_terminal(self, tmp_path):
        d = make_design()
        add_placed(d, 2, 1, 3, 1, fixed=True, name="pad")
        aux = write_bookshelf(d, str(tmp_path))
        d2 = read_bookshelf(aux)
        assert d2.cells[0].fixed


class TestFiles:
    def test_all_files_written(self, tmp_path):
        d = make_design(name="files")
        write_bookshelf(d, str(tmp_path))
        for ext in ("aux", "nodes", "nets", "pl", "scl"):
            assert os.path.exists(tmp_path / f"files.{ext}")

    def test_aux_references_all(self, tmp_path):
        d = make_design(name="x")
        aux = write_bookshelf(d, str(tmp_path))
        content = open(aux).read()
        for ext in ("nodes", "nets", "pl", "scl"):
            assert f"x.{ext}" in content
