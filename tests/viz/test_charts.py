"""Unit tests for the SVG chart module."""

import math

import pytest

from repro.viz import Series, bar_chart, histogram_chart, line_chart
from repro.viz.charts import _nice_ticks


class TestTicks:
    def test_ticks_cover_range(self):
        ticks = _nice_ticks(0, 9.3)
        assert ticks[0] <= 0
        assert ticks[-1] >= 9.3

    def test_ticks_are_round(self):
        for t in _nice_ticks(0, 87):
            assert t == round(t, 6)

    def test_degenerate_range(self):
        ticks = _nice_ticks(5, 5)
        assert len(ticks) >= 2


class TestBarChart:
    def test_valid_svg(self):
        svg = bar_chart(
            "t", ["a", "b"], [Series("s1", [1.0, 2.0]), Series("s2", [2.0, 1.0])]
        )
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert svg.count("<rect") >= 5  # background + grid + 4 bars

    def test_categories_labelled(self):
        svg = bar_chart("t", ["fft_a", "fft_b"], [Series("s", [1.0, 2.0])])
        assert "fft_a" in svg
        assert "fft_b" in svg

    def test_title_escaped(self):
        svg = bar_chart("a<b", ["c"], [Series("s", [1.0])])
        assert "a&lt;b" in svg

    def test_file_output(self, tmp_path):
        path = tmp_path / "c.svg"
        bar_chart("t", ["a"], [Series("s", [1.0])], path=str(path))
        assert path.read_text().startswith("<svg")


class TestLineChart:
    def test_valid_svg_with_points(self):
        svg = line_chart(
            "t", [1.0, 2.0, 4.0], [Series("s", [0.5, 1.0, 2.0])]
        )
        assert "<polyline" in svg
        assert svg.count("<circle") == 3

    def test_log_axes(self):
        svg = line_chart(
            "t",
            [10.0, 100.0, 1000.0],
            [Series("s", [0.01, 0.1, 1.0])],
            log_x=True,
            log_y=True,
        )
        assert "<polyline" in svg

    def test_two_series_two_colors(self):
        svg = line_chart(
            "t",
            [1.0, 2.0],
            [Series("a", [1.0, 2.0]), Series("b", [2.0, 3.0])],
        )
        assert "#4e79a7" in svg
        assert "#f28e2b" in svg


class TestHistogram:
    def test_from_bins(self):
        svg = histogram_chart("h", [(0.0, 3), (1.0, 5), (2.0, 1)])
        assert svg.startswith("<svg")
        assert "count" in svg

    def test_empty_series_guard(self):
        # bar_chart with all-empty values must not crash.
        svg = bar_chart("t", [], [Series("s", [])])
        assert svg.startswith("<svg")
