"""Unit tests for the ASCII placement renderer."""

from repro.geometry import Rect
from repro.viz import render_ascii
from tests.conftest import add_placed, add_unplaced, make_design


class TestRendering:
    def test_empty_design_is_dots(self):
        d = make_design(num_rows=2, row_width=6)
        art = render_ascii(d, legend=False)
        lines = art.splitlines()
        assert len(lines) == 2
        assert lines[0].endswith("|......|")
        assert lines[1].endswith("|......|")

    def test_rows_drawn_top_first(self):
        d = make_design(num_rows=3, row_width=4)
        lines = render_ascii(d, legend=False).splitlines()
        assert lines[0].startswith("  2")
        assert lines[2].startswith("  0")

    def test_rail_labels_alternate(self):
        d = make_design(num_rows=2, row_width=4)
        lines = render_ascii(d, legend=False).splitlines()
        assert lines[1][3] == "G"  # row 0 bottom rail
        assert lines[0][3] == "V"  # row 1

    def test_cell_glyph_spans_footprint(self):
        d = make_design(num_rows=2, row_width=8)
        add_placed(d, 3, 2, 2, 0, name="m")
        lines = render_ascii(d, legend=False).splitlines()
        for line in lines:
            assert line[8:11] == "aaa"  # x=2 after the "  1V |" prefix

    def test_blockage_hash(self):
        from repro.geometry import Rect as R

        d = make_design(num_rows=1, row_width=8, blockages=[R(2, 0, 3, 1)])
        line = render_ascii(d, legend=False).splitlines()[0]
        assert "###" in line

    def test_overlap_marked(self):
        d = make_design(num_rows=1, row_width=8)
        a = add_placed(d, 3, 1, 0, 0)
        b = add_placed(d, 3, 1, 4, 0)
        b.x = 2  # corrupt: overlap at sites 2-4
        art = render_ascii(d, legend=False)
        assert "?" in art

    def test_window_clips(self):
        d = make_design(num_rows=4, row_width=20)
        add_placed(d, 2, 1, 15, 3)
        art = render_ascii(d, window=Rect(0, 0, 10, 2), legend=False)
        lines = art.splitlines()
        assert len(lines) == 2
        assert all("a" not in line for line in lines)

    def test_gp_mode_shows_unplaced(self):
        d = make_design(num_rows=1, row_width=8)
        add_unplaced(d, 2, 1, 3.2, 0.0)
        placed_view = render_ascii(d, legend=False)
        gp_view = render_ascii(d, show_gp=True, legend=False)
        assert "a" not in placed_view
        assert "a" in gp_view

    def test_legend_names_cells(self):
        d = make_design(num_rows=1, row_width=8)
        add_placed(d, 2, 1, 0, 0, name="hello")
        art = render_ascii(d)
        assert "a=hello" in art
