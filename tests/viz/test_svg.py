"""Unit tests for the SVG placement renderer."""

from repro.viz import render_svg
from tests.conftest import add_placed, make_design


class TestSvg:
    def test_valid_svg_skeleton(self):
        d = make_design(num_rows=2, row_width=10)
        svg = render_svg(d)
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert 'xmlns="http://www.w3.org/2000/svg"' in svg

    def test_cells_rendered_with_height_colors(self):
        d = make_design(num_rows=3, row_width=12)
        add_placed(d, 3, 1, 0, 0)
        add_placed(d, 2, 2, 4, 0)
        add_placed(d, 2, 3, 7, 0)
        svg = render_svg(d)
        assert "#4e79a7" in svg  # single-row blue
        assert "#f28e2b" in svg  # double-row orange
        assert "#e15759" in svg  # triple-row red

    def test_gp_ghosts_and_whiskers(self):
        d = make_design(num_rows=1, row_width=12)
        c = add_placed(d, 3, 1, 6, 0)
        c.gp_x = 2.0
        with_gp = render_svg(d, show_gp=True)
        without = render_svg(d, show_gp=False)
        assert with_gp.count("stroke-dasharray") > without.count(
            "stroke-dasharray"
        )
        assert "<line" in with_gp

    def test_blockage_hatched(self):
        from repro.geometry import Rect

        d = make_design(num_rows=2, row_width=10, blockages=[Rect(3, 0, 2, 1)])
        svg = render_svg(d)
        assert "url(#hatch)" in svg

    def test_file_written(self, tmp_path):
        d = make_design(num_rows=1, row_width=6)
        path = tmp_path / "out.svg"
        render_svg(d, path=str(path))
        assert path.read_text().startswith("<svg")

    def test_label_escaping(self):
        d = make_design(num_rows=1, row_width=30)
        add_placed(d, 10, 1, 0, 0, name="a<b&c")
        svg = render_svg(d, show_labels=True)
        assert "a<b&c" not in svg
        assert "a&lt;b&amp;c" in svg
