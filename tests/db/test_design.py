"""Unit tests for repro.db.design (placement database operations)."""

import pytest

from repro.db import PlacementError, Rail
from repro.geometry import Rect
from tests.conftest import add_placed, add_unplaced, make_design


class TestPlaceUnplace:
    def test_place_registers_in_all_spanned_segments(self):
        d = make_design()
        c = add_placed(d, 2, 3, 5, 2)
        segs = d.segments_of(c)
        assert [s.row_index for s in segs] == [2, 3, 4]
        for s in segs:
            assert c in s.cells

    def test_unplace_deregisters(self):
        d = make_design()
        c = add_placed(d, 2, 2, 5, 2)
        d.unplace(c)
        assert not c.is_placed
        for seg in d.floorplan.segments:
            assert c not in seg.cells

    def test_double_place_rejected(self):
        d = make_design()
        c = add_placed(d, 2, 1, 0, 0)
        with pytest.raises(PlacementError):
            d.place(c, 5, 5)

    def test_unplace_unplaced_rejected(self):
        d = make_design()
        c = add_unplaced(d, 2, 1, 0, 0)
        with pytest.raises(PlacementError):
            d.unplace(c)

    def test_place_overlap_rejected(self):
        d = make_design()
        add_placed(d, 4, 1, 0, 0)
        c = add_unplaced(d, 2, 1, 0, 0)
        with pytest.raises(PlacementError):
            d.place(c, 2, 0)
        assert not c.is_placed


class TestCanPlace:
    def test_bounds(self):
        d = make_design(num_rows=4, row_width=10)
        c = add_unplaced(d, 3, 2, 0, 0, rail=Rail.GND)
        assert not d.can_place(c, -1, 0)
        assert not d.can_place(c, 8, 0)  # right edge spills
        assert not d.can_place(c, 0, 3)  # top spills
        assert not d.can_place(c, 0, -1)

    def test_power_rail_parity(self):
        d = make_design(first_rail=Rail.GND)
        vdd_cell = add_unplaced(d, 2, 2, 0, 0, rail=Rail.VDD)
        gnd_cell = add_unplaced(d, 2, 2, 0, 0, rail=Rail.GND)
        # Rows 0,2,4.. are GND-bottom, rows 1,3,5.. are VDD-bottom.
        assert d.can_place(gnd_cell, 0, 0)
        assert not d.can_place(vdd_cell, 0, 0)
        assert d.can_place(vdd_cell, 0, 1)
        assert not d.can_place(gnd_cell, 0, 1)

    def test_relaxed_mode_ignores_parity(self):
        d = make_design()
        vdd_cell = add_unplaced(d, 2, 2, 0, 0, rail=Rail.VDD)
        assert d.can_place(vdd_cell, 0, 0, power_aligned=False)

    def test_odd_height_any_row(self):
        d = make_design()
        c = add_unplaced(d, 2, 3, 0, 0)
        assert d.can_place(c, 0, 0)
        assert d.can_place(c, 0, 1)

    def test_overlap_detection_cross_row(self):
        d = make_design()
        add_placed(d, 3, 2, 4, 2)
        single = add_unplaced(d, 2, 1, 0, 0)
        assert not d.can_place(single, 3, 3)  # overlaps upper row of tall
        assert d.can_place(single, 1, 3)

    def test_ignore_set(self):
        d = make_design()
        a = add_placed(d, 3, 1, 4, 0)
        b = add_unplaced(d, 2, 1, 0, 0)
        assert not d.can_place(b, 5, 0)
        assert d.can_place(b, 5, 0, ignore=frozenset({a.id}))

    def test_blockage_blocks(self):
        d = make_design(blockages=[Rect(5, 0, 3, 2)])
        c = add_unplaced(d, 2, 1, 0, 0)
        assert not d.can_place(c, 5, 0)
        assert not d.can_place(c, 4, 1)  # straddles blockage edge
        assert d.can_place(c, 8, 0)


class TestShiftX:
    def test_shift_updates_position(self):
        d = make_design()
        c = add_placed(d, 2, 1, 5, 0)
        d.shift_x(c, 7)
        assert c.x == 7

    def test_shift_unplaced_rejected(self):
        d = make_design()
        c = add_unplaced(d, 2, 1, 0, 0)
        with pytest.raises(PlacementError):
            d.shift_x(c, 3)


class TestNearestPosition:
    def test_snaps_to_round(self):
        d = make_design()
        c = add_unplaced(d, 2, 1, 0, 0)
        assert d.nearest_position(c, 4.4, 2.6) == (4, 3)

    def test_parity_respected_for_even_height(self):
        d = make_design(first_rail=Rail.GND)
        c = add_unplaced(d, 2, 2, 0, 0, rail=Rail.VDD)
        x, y = d.nearest_position(c, 3.0, 2.0)
        assert y in (1, 3)  # nearest VDD-bottom rows around 2.0

    def test_clamps_into_die(self):
        d = make_design(num_rows=4, row_width=10)
        c = add_unplaced(d, 3, 1, 0, 0)
        assert d.nearest_position(c, 50.0, 50.0) == (7, 3)
        assert d.nearest_position(c, -5.0, -5.0) == (0, 0)

    def test_avoids_blockage(self):
        d = make_design(num_rows=2, row_width=20, blockages=[Rect(6, 0, 8, 1)])
        c = add_unplaced(d, 4, 1, 0, 0)
        x, y = d.nearest_position(c, 8.0, 0.0)
        assert (y == 0 and (x + 4 <= 6 or x >= 14)) or y == 1

    def test_none_when_nothing_fits(self):
        d = make_design(num_rows=1, row_width=4)
        c = add_unplaced(d, 6, 1, 0, 0)
        assert d.nearest_position(c, 0, 0) is None


class TestQueriesAndSnapshots:
    def test_cells_overlapping_rect(self):
        d = make_design()
        a = add_placed(d, 2, 1, 0, 0)
        b = add_placed(d, 2, 2, 6, 2)
        got = d.cells_overlapping_rect(Rect(0, 0, 8, 3))
        assert {c.id for c in got} == {a.id, b.id}
        got = d.cells_overlapping_rect(Rect(0, 1, 8, 1))
        assert got == []

    def test_multi_row_reported_once(self):
        d = make_design()
        b = add_placed(d, 2, 3, 3, 1)
        got = d.cells_overlapping_rect(Rect(0, 0, 10, 8))
        assert len(got) == 1 and got[0] is b

    def test_snapshot_restore_roundtrip(self):
        d = make_design()
        a = add_placed(d, 2, 1, 0, 0)
        b = add_placed(d, 2, 2, 6, 2)
        snap = d.snapshot_positions()
        d.unplace(a)
        d.shift_x(b, 8)
        d.restore_positions(snap)
        assert (a.x, a.y) == (0, 0)
        assert (b.x, b.y) == (6, 2)
        assert len(d.segments_of(b)) == 2

    def test_reset_placement(self):
        d = make_design()
        add_placed(d, 2, 1, 0, 0)
        d.reset_placement()
        assert all(not c.is_placed for c in d.cells)
        assert all(not s.cells for s in d.floorplan.segments)

    def test_density(self):
        d = make_design(num_rows=2, row_width=10)
        add_placed(d, 5, 1, 0, 0)
        assert d.density() == pytest.approx(0.25)
