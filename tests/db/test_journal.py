"""Unit tests for the undo log and transaction scopes (repro.db.journal)."""

import pytest

from repro.db import Journal, JournalError, PlacementError, Transaction
from repro.testing.faults import design_state
from tests.conftest import add_placed, add_unplaced, make_design


class TestJournalPrimitives:
    def test_place_rollback(self):
        d = make_design()
        t = add_unplaced(d, 3, 1, 0, 0)
        before = design_state(d)
        with pytest.raises(RuntimeError):
            with Transaction(d):
                d.place(t, 5, 2)
                assert t.is_placed
                raise RuntimeError("boom")
        assert not t.is_placed
        assert design_state(d) == before

    def test_unplace_rollback_restores_exact_slots(self):
        d = make_design(num_rows=1, row_width=40)
        a = add_placed(d, 3, 1, 0, 0)
        b = add_placed(d, 3, 1, 10, 0)
        c = add_placed(d, 3, 1, 20, 0)
        seg = d.floorplan.segments_in_row(0)[0]
        assert [x.name for x in seg.cells] == [a.name, b.name, c.name]
        before = design_state(d)
        with pytest.raises(RuntimeError):
            with Transaction(d):
                d.unplace(b)
                assert [x.name for x in seg.cells] == [a.name, c.name]
                raise RuntimeError("boom")
        assert (b.x, b.y) == (10, 0)
        assert [x.name for x in seg.cells] == [a.name, b.name, c.name]
        assert design_state(d) == before

    def test_shift_rollback(self):
        d = make_design(num_rows=1, row_width=40)
        a = add_placed(d, 3, 1, 4, 0)
        with pytest.raises(RuntimeError):
            with Transaction(d):
                d.shift_x(a, 9)
                assert a.x == 9
                raise RuntimeError("boom")
        assert a.x == 4

    def test_add_cell_rollback(self):
        d = make_design()
        before = design_state(d)
        master = d.library.get_or_create(2, 1, None)
        with pytest.raises(RuntimeError):
            with Transaction(d):
                d.add_cell(master, name="tmp")
                raise RuntimeError("boom")
        assert design_state(d) == before
        # The id counter was restored too: the next cell reuses the id.
        fresh = d.add_cell(master)
        assert fresh.id == 0

    def test_multi_row_place_rollback(self):
        d = make_design(num_rows=4, row_width=20)
        t = add_unplaced(d, 3, 2, 0, 0)
        before = design_state(d)
        with pytest.raises(RuntimeError):
            with Transaction(d):
                d.place(t, 4, 1)  # row 1 bottom rail matches VDD
                # registered once per spanned row
                assert sum(
                    1
                    for seg in d.floorplan.segments
                    for c in seg.cells
                    if c is t
                ) == 2
                raise RuntimeError("boom")
        assert design_state(d) == before


class TestTransactionSemantics:
    def test_commit_keeps_mutations(self):
        d = make_design()
        t = add_unplaced(d, 3, 1, 0, 0)
        with Transaction(d):
            d.place(t, 5, 2)
        assert (t.x, t.y) == (5, 2)
        assert d.journal is None  # outermost transaction detached the log

    def test_explicit_rollback_inside_scope(self):
        d = make_design()
        t = add_unplaced(d, 3, 1, 0, 0)
        before = design_state(d)
        with Transaction(d) as txn:
            d.place(t, 5, 2)
            txn.rollback()
        assert design_state(d) == before
        assert d.journal is None

    def test_nested_inner_commit_outer_rollback(self):
        d = make_design()
        t = add_unplaced(d, 3, 1, 0, 0)
        u = add_unplaced(d, 3, 1, 0, 0)
        before = design_state(d)
        with pytest.raises(RuntimeError):
            with Transaction(d):
                with Transaction(d):  # inner: commits normally
                    d.place(t, 0, 0)
                d.place(u, 10, 0)
                raise RuntimeError("boom")  # outer rollback undoes both
        assert design_state(d) == before

    def test_nested_inner_rollback_keeps_outer(self):
        d = make_design()
        t = add_unplaced(d, 3, 1, 0, 0)
        u = add_unplaced(d, 3, 1, 0, 0)
        with Transaction(d):
            d.place(t, 0, 0)
            with Transaction(d) as inner:
                d.place(u, 10, 0)
                inner.rollback()
        assert t.is_placed
        assert not u.is_placed

    def test_design_transaction_convenience(self):
        d = make_design()
        t = add_unplaced(d, 3, 1, 0, 0)
        with d.transaction():
            d.place(t, 2, 1)
        assert t.is_placed

    def test_no_journal_outside_transactions(self):
        d = make_design()
        t = add_unplaced(d, 3, 1, 0, 0)
        d.place(t, 1, 0)  # unjournaled fast path
        assert d.journal is None
        d.unplace(t)
        assert not t.is_placed

    def test_rollback_error_on_corrupted_log(self):
        d = make_design(num_rows=1, row_width=20)
        a = add_placed(d, 3, 1, 0, 0)
        seg = d.floorplan.segments_in_row(0)[0]
        journal = Journal(d)
        # A list-insert entry whose slot no longer holds the cell.
        seg.cells.insert(1, a)
        journal.note_list_insert(seg.cells, 1, a, site="test")
        del seg.cells[1]
        with pytest.raises(JournalError):
            journal.rollback()

    def test_unplace_unplaced_still_raises(self):
        d = make_design()
        t = add_unplaced(d, 3, 1, 0, 0)
        with Transaction(d):
            with pytest.raises(PlacementError):
                d.unplace(t)
