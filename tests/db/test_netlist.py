"""Unit tests for repro.db.netlist."""

import pytest

from repro.db import Library, Net, Netlist, Pin
from tests.conftest import add_placed, make_design


def _two_cell_net(design, pos_a=(0, 0), pos_b=(10, 3)):
    a = add_placed(design, 2, 1, *pos_a)
    b = add_placed(design, 2, 1, *pos_b)
    net = Net("n", (Pin(a, 0.5, 0.5), Pin(b, 1.0, 0.5)))
    design.netlist.add(net)
    return a, b, net


class TestHpwl:
    def test_two_pin_net(self):
        d = make_design()
        a, b, net = _two_cell_net(d)
        dx, dy = net.hpwl_sites()
        assert dx == pytest.approx((10 + 1.0) - (0 + 0.5))
        assert dy == pytest.approx(3.0)

    def test_single_pin_net_is_zero(self):
        d = make_design()
        a = add_placed(d, 2, 1, 0, 0)
        net = Net("n1", (Pin(a),))
        assert net.hpwl_sites() == (0.0, 0.0)

    def test_use_gp_positions(self):
        d = make_design()
        a, b, net = _two_cell_net(d)
        a.gp_x, a.gp_y = 5.0, 0.0
        b.gp_x, b.gp_y = 5.0, 0.0
        dx, dy = net.hpwl_sites(use_gp=True)
        assert dx == pytest.approx(0.5)  # only pin offsets differ
        assert dy == pytest.approx(0.0)

    def test_unplaced_cell_falls_back_to_gp(self):
        d = make_design()
        lib = d.library
        c = d.add_cell(lib.get_or_create(2, 1), gp_x=4.0, gp_y=1.0)
        pin = Pin(c, 0.0, 0.0)
        assert pin.position() == (4.0, 1.0)

    def test_total_hpwl_um_scales_by_site(self):
        d = make_design()
        _two_cell_net(d)
        nl = d.netlist
        total = nl.hpwl_um(site_width_um=2.0, site_height_um=10.0)
        dx, dy = nl.nets[0].hpwl_sites()
        assert total == pytest.approx(dx * 2.0 + dy * 10.0)


class TestNetlistContainer:
    def test_add_iter_len(self):
        nl = Netlist()
        assert len(nl) == 0
        lib = Library()
        c = Net("n", ())
        nl.add(c)
        assert len(nl) == 1
        assert list(nl) == [c]
