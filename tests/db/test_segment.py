"""Unit tests for repro.db.segment."""

import pytest

from repro.db import Segment
from tests.conftest import add_placed, make_design


class TestGeometry:
    def test_span_containment(self):
        seg = Segment(id=0, row_index=2, x0=5, width=10)
        assert seg.contains_span(5, 10)
        assert seg.contains_span(7, 3)
        assert not seg.contains_span(4, 3)
        assert not seg.contains_span(13, 3)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            Segment(id=0, row_index=0, x0=0, width=0)


class TestCellList:
    def test_insert_keeps_x_order(self):
        d = make_design()
        seg = d.floorplan.segments_in_row(0)[0]
        add_placed(d, 2, 1, 10, 0)
        add_placed(d, 2, 1, 2, 0)
        add_placed(d, 2, 1, 6, 0)
        assert [c.x for c in seg.cells] == [2, 6, 10]

    def test_multi_row_cell_in_each_spanned_list(self):
        # Paper 2.1.2: a placed height-h cell appears in h segment lists.
        d = make_design()
        cell = add_placed(d, 2, 3, 4, 1)
        for row in (1, 2, 3):
            seg = d.floorplan.segments_in_row(row)[0]
            assert cell in seg.cells
        assert cell not in d.floorplan.segments_in_row(0)[0].cells
        assert cell not in d.floorplan.segments_in_row(4)[0].cells

    def test_remove(self):
        d = make_design()
        seg = d.floorplan.segments_in_row(0)[0]
        a = add_placed(d, 2, 1, 0, 0)
        b = add_placed(d, 2, 1, 5, 0)
        seg.remove_cell(a)
        assert seg.cells == [b]

    def test_remove_missing_raises(self):
        d = make_design()
        seg = d.floorplan.segments_in_row(0)[0]
        orphan = add_placed(d, 2, 1, 0, 1)
        with pytest.raises(ValueError):
            seg.remove_cell(orphan)

    def test_index_of(self):
        d = make_design()
        seg = d.floorplan.segments_in_row(0)[0]
        a = add_placed(d, 2, 1, 0, 0)
        b = add_placed(d, 2, 1, 5, 0)
        assert seg.index_of(a) == 0
        assert seg.index_of(b) == 1


class TestOverlapQuery:
    def test_finds_straddling_cell(self):
        d = make_design()
        seg = d.floorplan.segments_in_row(0)[0]
        a = add_placed(d, 4, 1, 3, 0)  # occupies [3, 7)
        assert list(seg.cells_overlapping(5, 6)) == [a]
        assert list(seg.cells_overlapping(6.5, 20)) == [a]
        assert list(seg.cells_overlapping(7, 20)) == []
        assert list(seg.cells_overlapping(0, 3)) == []

    def test_range_query_multiple(self):
        d = make_design()
        seg = d.floorplan.segments_in_row(0)[0]
        a = add_placed(d, 2, 1, 0, 0)
        b = add_placed(d, 2, 1, 4, 0)
        c = add_placed(d, 2, 1, 8, 0)
        assert list(seg.cells_overlapping(1, 9)) == [a, b, c]
        assert list(seg.cells_overlapping(2, 8)) == [b]

    def test_free_width(self):
        d = make_design(row_width=20)
        seg = d.floorplan.segments_in_row(0)[0]
        assert seg.free_width() == 20
        add_placed(d, 6, 1, 0, 0)
        assert seg.free_width() == 14
