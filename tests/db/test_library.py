"""Unit tests for repro.db.library."""

import pytest

from repro.db import CellMaster, Library, Rail


class TestRail:
    def test_other(self):
        assert Rail.VDD.other() is Rail.GND
        assert Rail.GND.other() is Rail.VDD


class TestCellMaster:
    def test_single_row_needs_no_rail(self):
        m = CellMaster("INV", width=2, height=1)
        assert not m.needs_rail_alignment
        assert not m.is_multi_row

    def test_even_height_needs_rail(self):
        m = CellMaster("DFF", width=3, height=2, bottom_rail=Rail.VDD)
        assert m.needs_rail_alignment
        assert m.is_multi_row

    def test_even_height_without_rail_rejected(self):
        # Paper Fig. 1(a): even-height cells expose the same rail on both
        # edges, so the library must say which.
        with pytest.raises(ValueError):
            CellMaster("BAD", width=2, height=2)

    def test_odd_multi_row_flippable(self):
        m = CellMaster("TALL", width=2, height=3)
        assert m.is_multi_row
        assert not m.needs_rail_alignment

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            CellMaster("Z", width=0, height=1)
        with pytest.raises(ValueError):
            CellMaster("Z", width=1, height=0)


class TestLibrary:
    def test_add_and_lookup(self):
        lib = Library([CellMaster("A", 2)])
        assert "A" in lib
        assert lib["A"].width == 2
        assert len(lib) == 1

    def test_duplicate_rejected(self):
        lib = Library([CellMaster("A", 2)])
        with pytest.raises(ValueError):
            lib.add(CellMaster("A", 3))

    def test_get_or_create_is_idempotent(self):
        lib = Library()
        a = lib.get_or_create(3, 1)
        b = lib.get_or_create(3, 1)
        assert a is b
        assert len(lib) == 1

    def test_get_or_create_distinguishes_rails(self):
        lib = Library()
        a = lib.get_or_create(2, 2, Rail.VDD)
        b = lib.get_or_create(2, 2, Rail.GND)
        assert a is not b

    def test_get_or_create_defaults_even_height_rail(self):
        lib = Library()
        m = lib.get_or_create(2, 2)
        assert m.bottom_rail is Rail.VDD

    def test_iteration(self):
        lib = Library([CellMaster("A", 1), CellMaster("B", 2)])
        assert sorted(m.name for m in lib) == ["A", "B"]
