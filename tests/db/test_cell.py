"""Unit tests for repro.db.cell."""

import pytest

from repro.db import Library, Rail
from repro.db.cell import Cell
from repro.geometry import Rect


def _cell(w=3, h=2, rail=Rail.GND):
    lib = Library()
    return Cell(id=0, name="c", master=lib.get_or_create(w, h, rail))


class TestState:
    def test_unplaced_by_default(self):
        c = _cell()
        assert not c.is_placed
        with pytest.raises(ValueError):
            _ = c.rect
        with pytest.raises(ValueError):
            c.rows_spanned()
        with pytest.raises(ValueError):
            c.displacement_sites()

    def test_placed_rect(self):
        c = _cell(w=3, h=2)
        c.x, c.y = 4, 2
        assert c.rect == Rect(4, 2, 3, 2)
        assert list(c.rows_spanned()) == [2, 3]

    def test_gp_rect_uses_gp(self):
        c = _cell(w=2, h=1, rail=None)
        c.gp_x, c.gp_y = 1.5, 3.25
        assert c.gp_rect == Rect(1.5, 3.25, 2, 1)


class TestDisplacement:
    def test_displacement_components(self):
        c = _cell(w=2, h=1, rail=None)
        c.gp_x, c.gp_y = 3.5, 1.25
        c.x, c.y = 5, 1
        dx, dy = c.displacement_sites()
        assert dx == pytest.approx(1.5)
        assert dy == pytest.approx(0.25)

    def test_multi_row_flag(self):
        assert _cell(h=2).is_multi_row
        assert not _cell(h=1, rail=None).is_multi_row
