"""Unit tests for fence regions (DEF FENCE semantics)."""

import pytest

from repro.db import Design, FenceRegion, Floorplan, Library
from repro.db.fence import validate_fences
from repro.geometry import Rect
from tests.conftest import add_unplaced


def fenced_design(num_rows=8, row_width=40, fence=Rect(10, 2, 12, 4)):
    fp = Floorplan(
        num_rows=num_rows,
        row_width=row_width,
        fences=[FenceRegion(id=0, name="f0", rects=(fence,))],
    )
    return Design(fp, Library())


class TestFenceValidation:
    def test_empty_fence_rejected(self):
        with pytest.raises(ValueError):
            FenceRegion(id=0, name="f", rects=())

    def test_non_integer_rect_rejected(self):
        with pytest.raises(ValueError):
            FenceRegion(id=0, name="f", rects=(Rect(0.5, 0, 3, 2),))

    def test_overlapping_fences_rejected(self):
        a = FenceRegion(id=0, name="a", rects=(Rect(0, 0, 5, 2),))
        b = FenceRegion(id=1, name="b", rects=(Rect(4, 0, 5, 2),))
        with pytest.raises(ValueError):
            validate_fences([a, b])

    def test_duplicate_ids_rejected(self):
        a = FenceRegion(id=0, name="a", rects=(Rect(0, 0, 2, 1),))
        b = FenceRegion(id=0, name="b", rects=(Rect(5, 0, 2, 1),))
        with pytest.raises(ValueError):
            validate_fences([a, b])

    def test_contains_point(self):
        f = FenceRegion(id=0, name="f", rects=(Rect(2, 1, 4, 2),))
        assert f.contains_point(2, 1)
        assert f.contains_point(5.5, 2.5)
        assert not f.contains_point(6, 1)
        assert f.area() == 8


class TestSegmentTagging:
    def test_fence_splits_row_into_tagged_segments(self):
        d = fenced_design()
        segs = d.floorplan.segments_in_row(3)  # row inside the fence span
        spans = [(s.x0, s.x1, s.region) for s in segs]
        assert spans == [(0, 10, None), (10, 22, 0), (22, 40, None)]

    def test_rows_outside_fence_untouched(self):
        d = fenced_design()
        segs = d.floorplan.segments_in_row(0)
        assert [(s.x0, s.x1, s.region) for s in segs] == [(0, 40, None)]

    def test_fence_and_blockage_compose(self):
        fp = Floorplan(
            num_rows=4,
            row_width=30,
            blockages=[Rect(12, 0, 4, 4)],
            fences=[FenceRegion(id=0, name="f", rects=(Rect(4, 0, 6, 4),))],
        )
        segs = fp.segments_in_row(1)
        assert [(s.x0, s.x1, s.region) for s in segs] == [
            (0, 4, None),
            (4, 10, 0),
            (10, 12, None),
            (16, 30, None),
        ]


class TestRegionPlacementRules:
    def test_default_cell_cannot_enter_fence(self):
        d = fenced_design()
        c = add_unplaced(d, 3, 1, 0, 0)  # region None
        assert d.can_place(c, 2, 3)
        assert not d.can_place(c, 12, 3)  # inside the fence
        assert not d.can_place(c, 8, 3)  # straddles the boundary

    def test_fenced_cell_cannot_leave(self):
        d = fenced_design()
        m = d.library.get_or_create(3, 1)
        c = d.add_cell(m, region=0)
        assert d.can_place(c, 12, 3)
        assert not d.can_place(c, 2, 3)
        assert not d.can_place(c, 0, 0)

    def test_nearest_position_respects_region(self):
        d = fenced_design()
        m = d.library.get_or_create(3, 1)
        inside = d.add_cell(m, region=0)
        outside = d.add_cell(m)
        # Fenced cell asking for an outside spot is pulled into the fence.
        x, y = d.nearest_position(inside, 0.0, 3.0)
        assert d.floorplan.segment_at(y, x).region == 0
        # Default cell asking for an inside spot is pushed out.
        x, y = d.nearest_position(outside, 15.0, 3.0)
        seg = d.floorplan.segment_at(y, x)
        assert seg.region is None

    def test_multi_row_fenced_cell(self):
        d = fenced_design()
        m = d.library.get_or_create(3, 2, None) if False else d.library.get_or_create(2, 2)
        c = d.add_cell(m, region=0)
        placed_somewhere = False
        for y in (2, 3, 4):
            if d.can_place(c, 12, y):
                d.place(c, 12, y)
                placed_somewhere = True
                break
        assert placed_somewhere


class TestCheckerRegionRule:
    def test_wrong_region_flagged(self):
        from repro.checker import ViolationKind, verify_placement

        d = fenced_design()
        m = d.library.get_or_create(3, 1)
        c = d.add_cell(m, region=0)
        d.place(c, 12, 3)
        c.x = 2  # corrupt: moved outside its fence
        kinds = {
            v.kind
            for v in verify_placement(d, check_registration=False)
        }
        assert ViolationKind.WRONG_REGION in kinds
