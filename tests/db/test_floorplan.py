"""Unit tests for repro.db.floorplan."""

import pytest

from repro.db import Floorplan, Rail
from repro.geometry import Rect


class TestRows:
    def test_rails_alternate(self):
        fp = Floorplan(num_rows=4, row_width=10, first_rail=Rail.GND)
        rails = [r.bottom_rail for r in fp.rows]
        assert rails == [Rail.GND, Rail.VDD, Rail.GND, Rail.VDD]

    def test_adjacent_rows_share_a_rail(self):
        # Physical invariant behind constraint 4: row i's top rail is
        # row i+1's bottom rail.
        fp = Floorplan(num_rows=6, row_width=10)
        for a, b in zip(fp.rows, fp.rows[1:]):
            top_of_a = a.bottom_rail.other()
            assert top_of_a is b.bottom_rail

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Floorplan(num_rows=0, row_width=10)
        with pytest.raises(ValueError):
            Floorplan(num_rows=3, row_width=0)


class TestSegments:
    def test_unblocked_row_is_one_segment(self):
        fp = Floorplan(num_rows=3, row_width=25)
        for row in range(3):
            segs = fp.segments_in_row(row)
            assert len(segs) == 1
            assert (segs[0].x0, segs[0].x1) == (0, 25)

    def test_blockage_splits_row(self):
        fp = Floorplan(
            num_rows=3, row_width=20, blockages=[Rect(8, 1, 4, 1)]
        )
        assert len(fp.segments_in_row(0)) == 1
        mid = fp.segments_in_row(1)
        assert [(s.x0, s.x1) for s in mid] == [(0, 8), (12, 20)]
        assert len(fp.segments_in_row(2)) == 1

    def test_blockage_covering_row_start(self):
        fp = Floorplan(num_rows=2, row_width=10, blockages=[Rect(0, 0, 4, 1)])
        segs = fp.segments_in_row(0)
        assert [(s.x0, s.x1) for s in segs] == [(4, 10)]

    def test_full_row_blockage_removes_segments(self):
        fp = Floorplan(num_rows=2, row_width=10, blockages=[Rect(0, 0, 10, 1)])
        assert fp.segments_in_row(0) == []
        assert len(fp.segments_in_row(1)) == 1

    def test_overlapping_blockages_merge(self):
        fp = Floorplan(
            num_rows=1,
            row_width=20,
            blockages=[Rect(2, 0, 5, 1), Rect(5, 0, 5, 1)],
        )
        segs = fp.segments_in_row(0)
        assert [(s.x0, s.x1) for s in segs] == [(0, 2), (10, 20)]

    def test_segment_ids_unique(self):
        fp = Floorplan(
            num_rows=4, row_width=20, blockages=[Rect(5, 0, 3, 4)]
        )
        ids = [s.id for s in fp.segments]
        assert len(ids) == len(set(ids))


class TestLookups:
    def test_segment_at(self):
        fp = Floorplan(num_rows=2, row_width=20, blockages=[Rect(8, 0, 4, 1)])
        assert fp.segment_at(0, 0).x0 == 0
        assert fp.segment_at(0, 7.5).x0 == 0
        assert fp.segment_at(0, 9) is None  # inside blockage
        assert fp.segment_at(0, 12).x0 == 12
        assert fp.segment_at(0, 25) is None  # beyond the row
        assert fp.segment_at(5, 0) is None  # no such row

    def test_segment_containing_span(self):
        fp = Floorplan(num_rows=1, row_width=20, blockages=[Rect(8, 0, 4, 1)])
        assert fp.segment_containing_span(0, 0, 8) is not None
        assert fp.segment_containing_span(0, 6, 4) is None  # crosses blockage
        assert fp.segment_containing_span(0, 12, 8) is not None

    def test_placeable_area_excludes_blockages(self):
        fp = Floorplan(num_rows=2, row_width=10, blockages=[Rect(0, 0, 3, 1)])
        assert fp.placeable_area() == 20 - 3


class TestUnits:
    def test_micron_conversion(self):
        fp = Floorplan(
            num_rows=2, row_width=10, site_width_um=0.2, site_height_um=1.71
        )
        assert fp.to_microns(10, 2) == (2.0, 3.42)

    def test_displacement_um_is_manhattan(self):
        fp = Floorplan(
            num_rows=2, row_width=10, site_width_um=0.5, site_height_um=2.0
        )
        assert fp.displacement_um(3, -1) == 3 * 0.5 + 1 * 2.0
