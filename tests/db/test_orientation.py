"""Unit tests for cell orientation (vertical flipping, paper Fig. 1(b))."""

import pytest

from repro.db import PlacementError, Rail
from tests.conftest import add_placed, make_design


class TestOrientation:
    def test_odd_height_flips_on_mismatched_row(self):
        # Single-row master with a natural GND bottom: natural on GND
        # rows, flipped (FS) on VDD rows.
        d = make_design(first_rail=Rail.GND)
        master = d.library.get_or_create(2, 1)  # bottom_rail None -> GND
        a = d.add_cell(master, name="a")
        b = d.add_cell(master, name="b")
        d.place(a, 0, 0)  # GND row
        d.place(b, 0, 1)  # VDD row
        assert d.orientation_of(a) == "N"
        assert d.orientation_of(b) == "FS"

    def test_triple_row_also_flips(self):
        d = make_design(first_rail=Rail.GND)
        master = d.library.get_or_create(2, 3)
        a = d.add_cell(master, name="a")
        d.place(a, 0, 1)  # starts on a VDD row
        assert d.orientation_of(a) == "FS"

    def test_even_height_always_natural(self):
        # Even-height cells can only sit on matching rows -> never FS.
        d = make_design(first_rail=Rail.GND)
        c = add_placed(d, 2, 2, 0, 0, rail=Rail.GND)
        assert d.orientation_of(c) == "N"

    def test_unplaced_rejected(self):
        d = make_design()
        c = d.add_cell(d.library.get_or_create(2, 1))
        with pytest.raises(PlacementError):
            d.orientation_of(c)

    def test_orientation_written_to_bookshelf(self, tmp_path):
        from repro.io import write_bookshelf

        d = make_design(first_rail=Rail.GND)
        master = d.library.get_or_create(2, 1)
        b = d.add_cell(master, name="flipme")
        d.place(b, 0, 1)  # VDD row -> FS
        write_bookshelf(d, str(tmp_path), "o")
        pl = (tmp_path / "o.pl").read_text()
        assert ": FS" in pl
