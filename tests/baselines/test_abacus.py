"""Unit tests for the Abacus baseline."""

import random

from repro.baselines import abacus_legalize
from repro.baselines.abacus import _add_and_collapse, _Cluster
from repro.checker import verify_placement
from tests.conftest import add_unplaced, make_design


class TestClusterMath:
    def test_single_cell_at_desired(self):
        clusters = []
        x = _add_and_collapse(clusters, 5.0, 3, 0, 20)
        assert x == 5.0
        assert len(clusters) == 1

    def test_two_separate_cells_stay_apart(self):
        clusters = []
        _add_and_collapse(clusters, 2.0, 3, 0, 20)
        x = _add_and_collapse(clusters, 10.0, 3, 0, 20)
        assert x == 10.0
        assert len(clusters) == 2

    def test_overlapping_cells_merge_to_mean(self):
        clusters = []
        _add_and_collapse(clusters, 4.0, 3, 0, 20)
        x = _add_and_collapse(clusters, 5.0, 3, 0, 20)
        # Cluster of two: optimal left edge = mean(4, 5-3) = 3.
        assert len(clusters) == 1
        assert clusters[0].x == 3.0
        assert x == 6.0  # second cell sits at cluster.x + 3

    def test_boundary_clamping(self):
        clusters = []
        x = _add_and_collapse(clusters, -4.0, 3, 0, 20)
        assert x == 0.0
        clusters = []
        x = _add_and_collapse(clusters, 25.0, 3, 0, 20)
        assert x == 17.0

    def test_chain_collapse(self):
        clusters = []
        for gx in (0.0, 1.0, 2.0):
            _add_and_collapse(clusters, gx, 4, 0, 20)
        assert len(clusters) == 1
        assert clusters[0].x == 0.0  # clamped pile-up at the left edge
        assert clusters[0].w == 12


class TestFullRuns:
    def overlapping(self, seed, n=40, rows=8, width=40, doubles=True):
        rng = random.Random(seed)
        d = make_design(num_rows=rows, row_width=width)
        shapes = [(2, 1), (3, 1), (4, 1)]
        if doubles:
            shapes.append((2, 2))
        for _ in range(n):
            w, h = rng.choice(shapes)
            add_unplaced(d, w, h, rng.uniform(0, width - w), rng.uniform(0, rows - h))
        return d

    def test_single_row_design_fully_legal(self):
        d = self.overlapping(seed=1, doubles=False)
        result = abacus_legalize(d)
        assert result.failed_cells == []
        assert verify_placement(d) == []

    def test_mixed_height_design_fully_legal(self):
        d = self.overlapping(seed=2)
        result = abacus_legalize(d)
        assert result.failed_cells == []
        assert result.macro_placed > 0
        assert verify_placement(d) == []

    def test_relaxed_power_mode(self):
        d = self.overlapping(seed=3)
        abacus_legalize(d, power_aligned=False)
        assert verify_placement(d, power_aligned=False) == []

    def test_runtime_recorded(self):
        d = self.overlapping(seed=4, n=10)
        result = abacus_legalize(d)
        assert result.runtime_s > 0
