"""Unit tests for the optimal ("ILP-equivalent") legalizer."""

import random

from repro.checker import assert_legal, displacement_stats
from repro.core import EvaluationMode, LegalizerConfig, legalize
from repro.baselines import OptimalLegalizer, optimal_legalize
from tests.conftest import add_unplaced, make_design


def overlapping_design(seed=0, n=40, rows=10, width=40):
    rng = random.Random(seed)
    d = make_design(num_rows=rows, row_width=width)
    for _ in range(n):
        w, h = rng.choice(((2, 1), (3, 1), (4, 1), (2, 2)))
        add_unplaced(d, w, h, rng.uniform(0, width - w), rng.uniform(0, rows - h))
    return d


class TestOptimalLegalizer:
    def test_forces_exact_evaluation(self):
        d = overlapping_design()
        lg = OptimalLegalizer(d, LegalizerConfig(evaluation=EvaluationMode.APPROX))
        assert lg.config.evaluation is EvaluationMode.EXACT

    def test_produces_legal_placement(self):
        d = overlapping_design(seed=3)
        optimal_legalize(d, LegalizerConfig(seed=3))
        assert_legal(d)

    def test_usually_no_worse_than_approx(self):
        # The paper's Table 1: ILP displacement <= ours on 19/20 designs
        # (local optimality does not guarantee global optimality, so we
        # assert over several seeds in aggregate, not per instance).
        wins = ties = losses = 0
        for seed in range(6):
            a = overlapping_design(seed=seed, n=50, rows=10, width=30)
            b = overlapping_design(seed=seed, n=50, rows=10, width=30)
            legalize(a, LegalizerConfig(seed=seed))
            optimal_legalize(b, LegalizerConfig(seed=seed))
            da = displacement_stats(a).avg_sites
            db = displacement_stats(b).avg_sites
            if db < da - 1e-9:
                wins += 1
            elif db > da + 1e-9:
                losses += 1
            else:
                ties += 1
        assert wins + ties >= losses  # optimal wins the aggregate
