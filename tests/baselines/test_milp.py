"""Unit tests for the MILP local solver — the ILP cross-validation."""

import random

import pytest

from repro.baselines import milp_legalize, solve_local_milp
from repro.checker import assert_legal, verify_placement
from repro.core import (
    EvaluationMode,
    LegalizerConfig,
    MultiRowLocalLegalizer,
    extract_local_region,
)
from repro.db import Rail
from tests.conftest import add_placed, add_unplaced, make_design, random_legal_design


class TestSingleCalls:
    def test_empty_region_places_at_desired(self):
        d = make_design(num_rows=2, row_width=12)
        t = add_unplaced(d, 3, 1, 4.0, 1.0)
        region = extract_local_region(d, d.floorplan.die_rect)
        sol = solve_local_milp(d, region, t, 4.0, 1.0)
        assert sol is not None
        assert sol.target_x == 4
        assert sol.target_bottom_row == 1
        assert sol.cost_um == pytest.approx(0.0)

    def test_respects_power_alignment(self):
        d = make_design(first_rail=Rail.GND)
        t = add_unplaced(d, 2, 2, 0.0, 2.0, rail=Rail.VDD)
        region = extract_local_region(d, d.floorplan.die_rect)
        sol = solve_local_milp(d, region, t, 0.0, 2.0, power_aligned=True)
        assert sol is not None
        assert sol.target_bottom_row % 2 == 1

    def test_pushes_cells_minimally(self):
        d = make_design(num_rows=1, row_width=10)
        a = add_placed(d, 4, 1, 3, 0)
        t = add_unplaced(d, 4, 1, 3.0, 0.0)
        region = extract_local_region(d, d.floorplan.die_rect)
        sol = solve_local_milp(d, region, t, 3.0, 0.0)
        assert sol is not None
        # Slack is 2 sites and t wants a's exact spot: every arrangement
        # costs 4 sites (e.g. t at 3, a pushed to 7).
        sw = d.floorplan.site_width_um
        assert sol.cost_um == pytest.approx(4 * sw)

    def test_infeasible_region_returns_none(self):
        d = make_design(num_rows=1, row_width=10)
        add_placed(d, 5, 1, 0, 0)
        add_placed(d, 5, 1, 5, 0)
        t = add_unplaced(d, 3, 1, 2.0, 0.0)
        region = extract_local_region(d, d.floorplan.die_rect)
        assert solve_local_milp(d, region, t, 2.0, 0.0) is None


class TestEquivalenceWithExactMll:
    @pytest.mark.parametrize("trial", range(12))
    def test_milp_optimum_equals_exhaustive_optimum(self, trial):
        rng = random.Random(trial)
        d = random_legal_design(
            rng, num_rows=6, row_width=20, n_cells=rng.randint(5, 14)
        )
        shapes = ((2, 1), (3, 1), (2, 2), (3, 2), (2, 3))
        w, h = rng.choice(shapes)
        rail = Rail.GND if h % 2 == 0 else None
        t = add_unplaced(d, w, h, rng.uniform(0, 18), rng.uniform(0, 4), rail=rail)
        cfg = LegalizerConfig(rx=8, ry=3, evaluation=EvaluationMode.EXACT)
        mll = MultiRowLocalLegalizer(d, cfg)
        candidates = mll.evaluate_candidates(t, t.gp_x, t.gp_y)
        region = extract_local_region(d, mll.window_for(t, t.gp_x, t.gp_y))
        sol = solve_local_milp(d, region, t, t.gp_x, t.gp_y)
        if not candidates:
            assert sol is None
        else:
            assert sol is not None
            best = min(c.cost for c in candidates)
            assert sol.cost_um == pytest.approx(best, abs=1e-6)


class TestMilpDriver:
    def test_full_legalization_small(self):
        rng = random.Random(5)
        d = make_design(num_rows=6, row_width=20)
        for _ in range(14):
            w, h = rng.choice(((2, 1), (3, 1), (2, 2)))
            add_unplaced(d, w, h, rng.uniform(0, 17), rng.uniform(0, 5))
        milp_legalize(d, LegalizerConfig(seed=5))
        assert_legal(d)
        assert verify_placement(d) == []
