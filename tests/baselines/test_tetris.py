"""Unit tests for the greedy (Tetris) baseline."""

import random

from repro.baselines import find_nearest_free, tetris_legalize
from repro.checker import verify_placement
from repro.db import Rail
from tests.conftest import add_placed, add_unplaced, make_design


class TestNearestFree:
    def test_empty_die_returns_rounded_target(self):
        d = make_design()
        c = add_unplaced(d, 3, 1, 5.4, 2.6)
        assert find_nearest_free(d, c, 5.4, 2.6) == (5, 3)

    def test_sidesteps_occupied_spot(self):
        d = make_design(num_rows=1, row_width=20)
        add_placed(d, 4, 1, 8, 0)
        c = add_unplaced(d, 2, 1, 9.0, 0.0)
        x, y = find_nearest_free(d, c, 9.0, 0.0)
        assert y == 0
        assert x in (6, 12)  # flush against the occupied span

    def test_respects_parity_for_even_cells(self):
        d = make_design(first_rail=Rail.GND)
        c = add_unplaced(d, 2, 2, 4.0, 2.0, rail=Rail.VDD)
        x, y = find_nearest_free(d, c, 4.0, 2.0)
        assert y % 2 == 1

    def test_none_when_die_full(self):
        d = make_design(num_rows=1, row_width=8)
        add_placed(d, 4, 1, 0, 0)
        add_placed(d, 4, 1, 4, 0)
        c = add_unplaced(d, 2, 1, 3.0, 0.0)
        assert find_nearest_free(d, c, 3.0, 0.0) is None


class TestFullRuns:
    def test_moderate_density_fully_legal(self):
        rng = random.Random(6)
        d = make_design(num_rows=8, row_width=40)
        for _ in range(40):
            w, h = rng.choice(((2, 1), (3, 1), (4, 1), (2, 2)))
            add_unplaced(d, w, h, rng.uniform(0, 40 - w), rng.uniform(0, 8 - h))
        result = tetris_legalize(d)
        assert result.failed_cells == []
        assert verify_placement(d) == []

    def test_never_moves_placed_cells(self):
        d = make_design(num_rows=2, row_width=20)
        pre = add_placed(d, 4, 1, 8, 0)
        add_unplaced(d, 4, 1, 8.0, 0.0)
        tetris_legalize(d)
        assert (pre.x, pre.y) == (8, 0)
        assert verify_placement(d) == []
