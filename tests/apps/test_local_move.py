"""Unit tests for instant-legalization cell moves and the HPWL pass."""

import pytest

from repro.apps import improve_hpwl, move_cell
from repro.bench import GeneratorConfig, generate_design
from repro.checker import assert_legal, verify_placement
from repro.core import LegalizerConfig, legalize
from tests.conftest import add_placed, add_unplaced, make_design


class TestMoveCell:
    def test_move_to_free_space(self):
        d = make_design()
        c = add_placed(d, 3, 1, 2, 1)
        assert move_cell(d, c, 10.0, 4.0)
        assert (c.x, c.y) == (10, 4)
        assert verify_placement(d) == []

    def test_move_into_crowd_pushes(self):
        d = make_design(num_rows=1, row_width=14)
        a = add_placed(d, 4, 1, 5, 0)
        c = add_placed(d, 4, 1, 10, 0)
        assert move_cell(d, c, 5.0, 0.0, LegalizerConfig(rx=8, ry=0))
        assert verify_placement(d) == []
        assert abs(c.x - 5) <= 4

    def test_failed_move_restores_exactly(self):
        d = make_design(num_rows=1, row_width=12)
        add_placed(d, 5, 1, 0, 0)
        add_placed(d, 5, 1, 5, 0)
        c = add_placed(d, 2, 1, 10, 0)
        snapshot = d.snapshot_positions()
        # Target area is packed and the window too small to find room.
        ok = move_cell(d, c, 2.0, 0.0, LegalizerConfig(rx=2, ry=0))
        assert not ok
        assert d.snapshot_positions() == snapshot
        assert verify_placement(d) == []

    def test_unplaced_cell_rejected(self):
        d = make_design()
        c = add_unplaced(d, 2, 1, 0, 0)
        with pytest.raises(ValueError):
            move_cell(d, c, 1.0, 1.0)

    def test_every_intermediate_state_legal(self):
        # The instant-legalization property (paper refs [11], [12]).
        d = generate_design(GeneratorConfig(num_cells=60, seed=3))
        legalize(d, LegalizerConfig(seed=3))
        cells = [c for c in d.movable_cells()][:10]
        for i, c in enumerate(cells):
            move_cell(d, c, c.x + (i % 5) - 2, c.y + (i % 3) - 1)
            assert verify_placement(d) == []


class TestImproveHpwl:
    def test_hpwl_never_increases(self):
        d = generate_design(GeneratorConfig(num_cells=120, seed=4))
        legalize(d, LegalizerConfig(seed=4))
        before = d.hpwl_um()
        stats = improve_hpwl(d, LegalizerConfig(seed=4), passes=1,
                             max_moves_per_pass=60)
        assert d.hpwl_um() <= before + 1e-6
        assert stats.hpwl_after_um <= stats.hpwl_before_um + 1e-6
        assert_legal(d)

    def test_improvement_reported(self):
        d = generate_design(GeneratorConfig(num_cells=120, seed=5))
        legalize(d, LegalizerConfig(seed=5))
        stats = improve_hpwl(d, LegalizerConfig(seed=5), passes=1,
                             max_moves_per_pass=40)
        assert stats.moves_tried >= stats.moves_kept
        assert stats.improvement_pct >= 0
