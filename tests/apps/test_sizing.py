"""Unit tests for gate sizing with local re-legalization."""

from repro.apps import resize_cell
from repro.apps.sizing import upsize_sweep
from repro.bench import GeneratorConfig, generate_design
from repro.checker import assert_legal, verify_placement
from repro.core import LegalizerConfig, legalize
from tests.conftest import add_placed, make_design


class TestResize:
    def test_upsize_in_free_space(self):
        d = make_design()
        c = add_placed(d, 2, 1, 5, 2)
        bigger = d.library.get_or_create(4, 1)
        assert resize_cell(d, c, bigger)
        assert c.width == 4
        assert verify_placement(d) == []

    def test_upsize_pushes_neighbors(self):
        d = make_design(num_rows=1, row_width=12)
        c = add_placed(d, 2, 1, 4, 0)
        right = add_placed(d, 2, 1, 6, 0)
        bigger = d.library.get_or_create(4, 1)
        assert resize_cell(d, c, bigger, LegalizerConfig(rx=6, ry=0))
        assert verify_placement(d) == []

    def test_downsize_always_fits(self):
        d = make_design(num_rows=1, row_width=10)
        add_placed(d, 3, 1, 0, 0)
        c = add_placed(d, 4, 1, 3, 0)
        add_placed(d, 3, 1, 7, 0)
        smaller = d.library.get_or_create(2, 1)
        assert resize_cell(d, c, smaller)
        assert c.width == 2
        assert verify_placement(d) == []

    def test_failed_resize_restores_master_and_position(self):
        d = make_design(num_rows=1, row_width=10)
        add_placed(d, 4, 1, 0, 0)
        c = add_placed(d, 2, 1, 4, 0)
        add_placed(d, 4, 1, 6, 0)
        huge = d.library.get_or_create(8, 1)
        old_master = c.master
        ok = resize_cell(d, c, huge, LegalizerConfig(rx=4, ry=0))
        assert not ok
        assert c.master is old_master
        assert (c.x, c.y) == (4, 0)
        assert verify_placement(d) == []

    def test_height_change_allowed(self):
        # Sizing to a double-height variant (the multi-row library trend
        # the paper's introduction describes).
        d = make_design()
        c = add_placed(d, 4, 1, 5, 2)
        tall = d.library.get_or_create(2, 2)
        assert resize_cell(d, c, tall)
        assert c.height == 2
        assert verify_placement(d) == []


class TestSweep:
    def test_sweep_counts_successes(self):
        d = generate_design(GeneratorConfig(num_cells=80, seed=6,
                                            target_density=0.4))
        legalize(d, LegalizerConfig(seed=6))
        singles = [c for c in d.movable_cells() if c.height == 1][:10]
        candidates = [
            (c, d.library.get_or_create(c.width + 1, 1)) for c in singles
        ]
        done = upsize_sweep(d, candidates, LegalizerConfig(seed=6))
        assert done >= 8  # low density: almost everything fits
        assert_legal(d)
