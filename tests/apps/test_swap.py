"""Unit tests for global swap with instant legalization."""

import pytest

from repro.apps import swap_cells, swap_pass
from repro.bench import GeneratorConfig, generate_design
from repro.checker import assert_legal, verify_placement
from repro.core import LegalizerConfig, legalize
from tests.conftest import add_placed, make_design


class TestSwapCells:
    def test_equal_size_swap(self):
        d = make_design()
        a = add_placed(d, 3, 1, 2, 1, name="a")
        b = add_placed(d, 3, 1, 20, 5, name="b")
        assert swap_cells(d, a, b)
        assert (a.x, a.y) == (20, 5)
        assert (b.x, b.y) == (2, 1)
        assert verify_placement(d) == []

    def test_different_size_swap(self):
        d = make_design()
        a = add_placed(d, 2, 1, 2, 1, name="small")
        b = add_placed(d, 5, 1, 20, 5, name="big")
        assert swap_cells(d, a, b)
        assert verify_placement(d) == []
        # Each landed near the other's old spot.
        assert abs(a.x - 20) <= 3 and abs(a.y - 5) <= 1
        assert abs(b.x - 2) <= 3 and abs(b.y - 1) <= 1

    def test_multi_row_with_single_row(self):
        d = make_design()
        a = add_placed(d, 2, 2, 2, 2, name="tall")
        b = add_placed(d, 4, 1, 20, 4, name="wide")
        assert swap_cells(d, a, b)
        assert verify_placement(d) == []

    def test_failed_swap_restores_everything(self):
        d = make_design(num_rows=1, row_width=14)
        # Packed row: a swap of mismatched widths cannot fit.
        add_placed(d, 4, 1, 0, 0, fixed=True)
        a = add_placed(d, 2, 1, 4, 0, name="a")
        add_placed(d, 4, 1, 6, 0, fixed=True)
        b = add_placed(d, 4, 1, 10, 0, name="b")
        snapshot = d.snapshot_positions()
        ok = swap_cells(d, a, b, LegalizerConfig(rx=3, ry=0))
        if not ok:
            assert d.snapshot_positions() == snapshot
        assert verify_placement(d) == []

    def test_unplaced_rejected(self):
        d = make_design()
        a = add_placed(d, 2, 1, 0, 0)
        b = d.add_cell(d.library.get_or_create(2, 1))
        with pytest.raises(ValueError):
            swap_cells(d, a, b)

    def test_self_swap_rejected(self):
        d = make_design()
        a = add_placed(d, 2, 1, 0, 0)
        with pytest.raises(ValueError):
            swap_cells(d, a, a)

    def test_cross_fence_swap_refused(self):
        from repro.db import Design, FenceRegion, Floorplan, Library
        from repro.geometry import Rect

        fp = Floorplan(
            num_rows=4,
            row_width=30,
            fences=[FenceRegion(id=0, name="f", rects=(Rect(16, 0, 10, 4),))],
        )
        d = Design(fp, Library())
        m = d.library.get_or_create(3, 1)
        a = d.add_cell(m)
        d.place(a, 2, 1)
        b = d.add_cell(m, region=0)
        d.place(b, 18, 1)
        assert not swap_cells(d, a, b)
        assert (a.x, b.x) == (2, 18)


class TestSwapPass:
    def test_pass_improves_or_preserves_hpwl(self):
        d = generate_design(
            GeneratorConfig(num_cells=150, target_density=0.45, seed=9)
        )
        legalize(d, LegalizerConfig(seed=9))
        before = d.hpwl_um()
        stats = swap_pass(d, LegalizerConfig(seed=9), max_pairs=40)
        assert d.hpwl_um() <= before + 1e-6
        assert stats.swaps_kept <= stats.pairs_tried
        assert_legal(d)

    def test_stats_consistent(self):
        d = generate_design(
            GeneratorConfig(num_cells=100, target_density=0.4, seed=10)
        )
        legalize(d, LegalizerConfig(seed=10))
        stats = swap_pass(d, LegalizerConfig(seed=10), max_pairs=20)
        assert stats.hpwl_after_um <= stats.hpwl_before_um + 1e-6
        assert stats.improvement_pct >= 0
