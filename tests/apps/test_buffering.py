"""Unit tests for buffer insertion with local legalization."""

import pytest

from repro.apps import insert_buffer
from repro.bench import GeneratorConfig, generate_design
from repro.checker import verify_placement
from repro.core import LegalizerConfig, legalize
from repro.db import Net, Pin
from tests.conftest import add_placed, make_design


def linked_design():
    d = make_design()
    a = add_placed(d, 2, 1, 0, 0, name="drv")
    b = add_placed(d, 2, 1, 30, 6, name="snk1")
    c = add_placed(d, 2, 1, 30, 2, name="snk2")
    net = Net("n0", (Pin(a, 1, 0.5), Pin(b, 0, 0.5), Pin(c, 0, 0.5)))
    d.netlist.add(net)
    return d, net


class TestInsertBuffer:
    def test_buffer_placed_and_net_split(self):
        d, net = linked_design()
        buf_master = d.library.get_or_create(1, 1)
        result = insert_buffer(d, net, buf_master)
        assert result.success
        assert result.buffer is not None and result.buffer.is_placed
        assert len(d.netlist) == 2
        assert net not in d.netlist.nets
        assert verify_placement(d) == []

    def test_buffer_lands_near_sink_centroid(self):
        d, net = linked_design()
        buf_master = d.library.get_or_create(1, 1)
        result = insert_buffer(d, net, buf_master)
        assert result.buffer is not None
        # Sinks are at x=30, rows 6 and 2: centroid is (30, 4)-ish.
        assert abs(result.buffer.x - 30) <= 3
        assert abs(result.buffer.y - 4) <= 2

    def test_explicit_position(self):
        d, net = linked_design()
        buf_master = d.library.get_or_create(1, 1)
        result = insert_buffer(d, net, buf_master, position=(12.0, 3.0))
        assert result.success
        assert abs(result.buffer.x - 12) <= 2

    def test_nets_share_buffer_pin(self):
        d, net = linked_design()
        buf_master = d.library.get_or_create(1, 1)
        result = insert_buffer(d, net, buf_master)
        drv_cells = {p.cell.name for p in result.driver_net.pins}
        snk_cells = {p.cell.name for p in result.sink_net.pins}
        assert result.buffer.name in drv_cells
        assert result.buffer.name in snk_cells
        assert "drv" in drv_cells
        assert {"snk1", "snk2"} <= snk_cells

    def test_split_point_validation(self):
        d, net = linked_design()
        buf_master = d.library.get_or_create(1, 1)
        with pytest.raises(ValueError):
            insert_buffer(d, net, buf_master, split_at=0)
        with pytest.raises(ValueError):
            insert_buffer(d, net, buf_master, split_at=3)

    def test_unknown_net_rejected(self):
        d, _ = linked_design()
        stray = Net("stray", ())
        with pytest.raises(ValueError):
            insert_buffer(d, stray, d.library.get_or_create(1, 1))

    def test_failure_rolls_back_netlist_and_cells(self):
        d, net = linked_design()
        # Choke the buffer's target area: a full single row die region.
        d2 = make_design(num_rows=1, row_width=10)
        a = add_placed(d2, 5, 1, 0, 0, name="a")
        b = add_placed(d2, 5, 1, 5, 0, name="b")
        n = Net("n", (Pin(a), Pin(b)))
        d2.netlist.add(n)
        buf = d2.library.get_or_create(2, 1)
        result = insert_buffer(d2, n, buf, config=LegalizerConfig(rx=4, ry=0))
        assert not result.success
        assert len(d2.netlist) == 1
        assert len(d2.cells) == 2  # buffer discarded
        assert verify_placement(d2) == []

    def test_buffering_reduces_long_net_hpwl(self):
        d = generate_design(GeneratorConfig(num_cells=150, seed=7))
        legalize(d, LegalizerConfig(seed=7))
        # Longest net by bbox.
        net = max(d.netlist, key=lambda n: sum(n.hpwl_sites()))
        buf_master = d.library.get_or_create(1, 1)
        result = insert_buffer(d, net, buf_master)
        assert result.success
        assert verify_placement(d) == []
