"""Smoke tests for the standalone harness scripts.

The Table 1 runner and the report generator are entry points users run
directly; these tests execute them end-to-end at miniature scale so the
scripts cannot silently rot.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))


class TestRunTable1:
    def test_quick_suite_miniature(self, capsys, monkeypatch):
        from benchmarks.run_table1 import main

        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.002")
        rc = main(["--scale", "0.002"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 1 reproduction" in out
        assert "fft_a" in out
        assert "AVG" in out
        assert "runtime ratio" in out

    def test_milp_column_miniature(self, capsys):
        from benchmarks.run_table1 import main

        # One tiny design through the literal MILP to keep it fast: use
        # the smallest scale and let the quick suite's first rows run.
        rc = main(["--scale", "0.001", "--milp"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ILP column = MILP" in out


class TestMakeReport:
    def test_report_generated(self, tmp_path, capsys):
        from benchmarks.make_report import main

        rc = main(["--out", str(tmp_path), "--scale", "0.002"])
        assert rc == 0
        index = tmp_path / "index.md"
        assert index.exists()
        content = index.read_text()
        for figure in (
            "table1_displacement.svg",
            "relaxation.svg",
            "scaling.svg",
            "window_ablation.svg",
            "placement.svg",
        ):
            assert figure in content
            assert (tmp_path / figure).exists()
            assert (tmp_path / figure).read_text().startswith("<svg")
