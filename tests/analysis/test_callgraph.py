"""Unit tests for the whole-program symbol table and call graph.

Two layers: precise assertions on a small synthetic program written to
``tmp_path`` (qualnames, edge resolution, transaction marking), and
smoke-level assertions on the real ``src/repro`` tree (the shared
``real_program`` fixture) that pin the cross-module resolution the
interprocedural rules depend on.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.callgraph import Program, module_name_of


def build(tmp_path: Path, files: dict[str, str]) -> Program:
    paths = []
    for name, source in files.items():
        path = tmp_path / name
        path.write_text(source)
        paths.append(str(path))
    return Program.from_paths(paths)


class TestModuleNames:
    def test_repro_package_path(self):
        assert module_name_of("src/repro/db/design.py") == "repro.db.design"

    def test_package_init_collapses(self):
        assert module_name_of("src/repro/engine/__init__.py") == "repro.engine"

    def test_foreign_file_keeps_stem(self):
        assert module_name_of("/tmp/fixture.py") == "fixture"


class TestSymbolTable:
    def test_nested_function_qualname(self, tmp_path):
        program = build(
            tmp_path,
            {
                "m.py": (
                    "def outer() -> int:\n"
                    "    def inner() -> int:\n"
                    "        return 1\n"
                    "    return inner()\n"
                )
            },
        )
        assert "m.outer" in program.table.functions
        inner = program.table.functions["m.outer.<locals>.inner"]
        assert inner.nested

    def test_method_qualname_and_class(self, tmp_path):
        program = build(
            tmp_path,
            {
                "m.py": (
                    "class Box:\n"
                    "    def get(self) -> int:\n"
                    "        return 1\n"
                )
            },
        )
        info = program.table.functions["m.Box.get"]
        assert info.class_qname == "m.Box"
        assert "get" in program.table.classes["m.Box"].methods


class TestCallResolution:
    def test_direct_call_edge(self, tmp_path):
        program = build(
            tmp_path,
            {
                "m.py": (
                    "def helper() -> int:\n"
                    "    return 1\n"
                    "def top() -> int:\n"
                    "    return helper()\n"
                )
            },
        )
        assert "m.helper" in program.graph.callees_of("m.top")

    def test_method_call_via_annotation(self, tmp_path):
        program = build(
            tmp_path,
            {
                "m.py": (
                    "class Box:\n"
                    "    def get(self) -> int:\n"
                    "        return 1\n"
                    "def use(box: Box) -> int:\n"
                    "    return box.get()\n"
                )
            },
        )
        assert "m.Box.get" in program.graph.callees_of("m.use")

    def test_transaction_scope_marks_sites(self, tmp_path):
        program = build(
            tmp_path,
            {
                "m.py": (
                    "def mutate() -> None:\n"
                    "    pass\n"
                    "def covered(design: object) -> None:\n"
                    "    with Transaction(design):\n"
                    "        mutate()\n"
                    "def bare() -> None:\n"
                    "    mutate()\n"
                )
            },
        )
        by_caller = {
            s.caller: s.in_transaction
            for s in program.graph.sites
            if s.callee == "m.mutate"
        }
        assert by_caller == {"m.covered": True, "m.bare": False}

    def test_reachability_and_roots(self, tmp_path):
        program = build(
            tmp_path,
            {
                "m.py": (
                    "def leaf() -> int:\n"
                    "    return 1\n"
                    "def mid() -> int:\n"
                    "    return leaf()\n"
                    "def root() -> int:\n"
                    "    return mid()\n"
                )
            },
        )
        reach = set(program.graph.reachable_from(["m.root"]))
        assert {"m.root", "m.mid", "m.leaf"} <= reach
        assert program.graph.is_root("m.root")
        assert not program.graph.is_root("m.leaf")

    def test_value_reference_disqualifies_root(self, tmp_path):
        program = build(
            tmp_path,
            {
                "m.py": (
                    "def payload() -> int:\n"
                    "    return 1\n"
                    "def launch(pool: object) -> None:\n"
                    "    pool.submit(payload)\n"
                )
            },
        )
        assert not program.graph.is_root("m.payload")


class TestExports:
    def test_json_export_shape(self, tmp_path):
        program = build(
            tmp_path,
            {"m.py": "def f() -> int:\n    return 1\n"},
        )
        doc = json.loads(program.to_json())
        assert "functions" in doc and "edges" in doc
        assert any(f["qname"] == "m.f" for f in doc["functions"])

    def test_dot_export_mentions_nodes(self, tmp_path):
        program = build(
            tmp_path,
            {
                "m.py": (
                    "def a() -> int:\n"
                    "    return b()\n"
                    "def b() -> int:\n"
                    "    return 1\n"
                )
            },
        )
        dot = program.to_dot()
        assert dot.startswith("digraph")
        assert "m.a" in dot and "m.b" in dot


class TestRealTree:
    def test_primitives_are_resolved(self, real_program):
        fns = real_program.table.functions
        assert "repro.db.design.Design.place" in fns
        assert "repro.engine.shard_worker.run_shard" in fns

    def test_place_has_callers(self, real_program):
        callers = real_program.graph.callers_of(
            "repro.db.design.Design.place"
        )
        assert callers  # the legalizer realization path at minimum

    def test_worker_reachability_crosses_modules(self, real_program):
        reach = set(
            real_program.graph.reachable_from(
                ["repro.engine.shard_worker.run_shard"]
            )
        )
        assert "repro.engine.shard_worker.build_shard_design" in reach
