"""Unit tests for the summary-based effect inference.

Synthetic programs pin each lattice element's local detector and the
transitive fixpoint; real-tree assertions pin the summaries the RL7
rule and the runtime sanitizer rely on.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.callgraph import Program
from repro.analysis.dataflow import (
    IO,
    JOURNALS,
    MUTATES,
    NONDET,
    TRANSACTION,
    infer_effects,
)


def summaries_of(tmp_path: Path, source: str):
    path = tmp_path / "m.py"
    path.write_text(source)
    return infer_effects(Program.from_paths([str(path)]))


class TestLocalEffects:
    def test_placement_attr_store_mutates(self, tmp_path):
        out = summaries_of(
            tmp_path,
            "def move(cell: object, x: int) -> None:\n"
            "    cell.x = x\n",
        )
        assert MUTATES in out["m.move"].local

    def test_journal_note_call(self, tmp_path):
        out = summaries_of(
            tmp_path,
            "def log(journal: object) -> None:\n"
            "    journal.note_place(1)\n",
        )
        assert JOURNALS in out["m.log"].local

    def test_transaction_with_block(self, tmp_path):
        out = summaries_of(
            tmp_path,
            "def scoped(design: object) -> None:\n"
            "    with Transaction(design):\n"
            "        pass\n",
        )
        assert TRANSACTION in out["m.scoped"].local

    def test_ambient_random_is_nondet(self, tmp_path):
        out = summaries_of(
            tmp_path,
            "import random\n"
            "def roll() -> float:\n"
            "    return random.random()\n",
        )
        assert NONDET in out["m.roll"].local

    def test_seeded_random_is_deterministic(self, tmp_path):
        out = summaries_of(
            tmp_path,
            "import random\n"
            "def rng(seed: int) -> object:\n"
            "    return random.Random(seed)\n",
        )
        assert NONDET not in out["m.rng"].local

    def test_open_is_io(self, tmp_path):
        out = summaries_of(
            tmp_path,
            "def read(path: str) -> str:\n"
            "    with open(path) as f:\n"
            "        return f.read()\n",
        )
        assert IO in out["m.read"].local

    def test_unresolved_primitive_name_fallback(self, tmp_path):
        out = summaries_of(
            tmp_path,
            "def nudge(design: object, cell: object) -> None:\n"
            "    design.place(cell, 0, 0)\n",
        )
        assert {MUTATES, JOURNALS} <= out["m.nudge"].local


class TestTransitiveFixpoint:
    def test_effects_propagate_up_the_chain(self, tmp_path):
        out = summaries_of(
            tmp_path,
            "def leaf(design: object, cell: object) -> None:\n"
            "    design.place(cell, 0, 0)\n"
            "def mid(design: object, cell: object) -> None:\n"
            "    leaf(design, cell)\n"
            "def top(design: object, cell: object) -> None:\n"
            "    mid(design, cell)\n",
        )
        assert MUTATES not in out["m.top"].local
        assert {MUTATES, JOURNALS} <= out["m.top"].transitive
        assert {MUTATES, JOURNALS} <= out["m.mid"].transitive

    def test_recursion_reaches_fixpoint(self, tmp_path):
        out = summaries_of(
            tmp_path,
            "import random\n"
            "def ping(n: int) -> int:\n"
            "    return pong(n - 1) if n else 0\n"
            "def pong(n: int) -> int:\n"
            "    random.random()\n"
            "    return ping(n)\n",
        )
        assert NONDET in out["m.ping"].transitive
        assert NONDET in out["m.pong"].transitive

    def test_transitive_is_superset_of_local(self, tmp_path):
        out = summaries_of(
            tmp_path,
            "def a(design: object, cell: object) -> None:\n"
            "    design.place(cell, 0, 0)\n"
            "def b() -> None:\n"
            "    a(None, None)\n",
        )
        for summary in out.values():
            assert summary.local <= summary.transitive


class TestRealTree:
    def test_seeded_primitives(self, real_program):
        out = infer_effects(real_program)
        place = out["repro.db.design.Design.place"]
        assert {MUTATES, JOURNALS} <= place.transitive
        enter = out["repro.db.journal.Transaction.__enter__"]
        assert TRANSACTION in enter.transitive

    def test_run_shard_reaches_mutation(self, real_program):
        out = infer_effects(real_program)
        shard = out["repro.engine.shard_worker.run_shard"]
        assert {MUTATES, JOURNALS} <= shard.transitive
