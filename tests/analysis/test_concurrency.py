"""ConcurrencyModel unit tests + runtime race-tracer tests.

The static half builds tiny single-file programs and checks spawn
classification, await points, lockset inference and the derived
regions; the runtime half arms :class:`RaceTracer` against a real
``Design``/``Transaction`` and asserts the detector observes what the
static model cannot predict for non-repro driver code.
"""

from __future__ import annotations

import asyncio
import threading
from pathlib import Path

from repro.analysis.callgraph import Program
from repro.analysis.concurrency import model_for
from repro.bench import GeneratorConfig, generate_design
from repro.db.journal import Transaction
from repro.testing.sanitizer import (
    RaceTracer,
    check_race_trace,
    race_predictions,
)


def program_of(tmp_path: Path, source: str) -> Program:
    path = tmp_path / "mod.py"
    path.write_text(source)
    return Program.from_paths([str(path)])


SPAWN_SRC = """\
import asyncio
import threading


class Coordinator:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.jobs = 0

    def work(self) -> None:
        with self._lock:
            self.jobs += 1

    def start(self) -> None:
        thread = threading.Thread(target=self.work)
        thread.start()


def helper() -> None:
    pass


async def tick() -> None:
    await asyncio.sleep(0)


async def main() -> None:
    task = asyncio.create_task(tick())
    await asyncio.to_thread(helper)
    await task
"""


class TestSpawnEdges:
    def test_kinds_and_payloads_resolve(self, tmp_path):
        model = model_for(program_of(tmp_path, SPAWN_SRC))
        by_kind = {e.kind: e.payload for e in model.spawns}
        assert by_kind["task"] == "mod.tick"
        assert by_kind["offload"] == "mod.helper"
        assert by_kind["thread"] == "mod.Coordinator.work"

    def test_roots_include_payloads_and_spawners(self, tmp_path):
        model = model_for(program_of(tmp_path, SPAWN_SRC))
        roots = model.concurrency_roots()
        assert {"mod.tick", "mod.helper", "mod.Coordinator.work"} <= roots
        assert {"mod.main", "mod.Coordinator.start"} <= roots

    def test_thread_context_excludes_async(self, tmp_path):
        model = model_for(program_of(tmp_path, SPAWN_SRC))
        ctx = model.thread_context()
        assert "mod.Coordinator.work" in ctx
        assert "mod.helper" in ctx
        assert "mod.tick" not in ctx
        assert "mod.main" not in ctx

    def test_async_functions_and_await_points(self, tmp_path):
        model = model_for(program_of(tmp_path, SPAWN_SRC))
        assert {"mod.tick", "mod.main"} <= model.async_functions
        kinds = [p.kind for p in model.await_points["mod.main"]]
        assert kinds == ["await", "await"]
        assert not any(
            p.in_transaction
            for points in model.await_points.values()
            for p in points
        )


LOCK_SRC = """\
import threading

LOCK = threading.Lock()
ITEMS: list[int] = []


def _locked_append(n: int) -> None:
    ITEMS.append(n)


def add(n: int) -> None:
    with LOCK:
        _locked_append(n)


def add_many(ns: list[int]) -> None:
    with LOCK:
        for n in ns:
            _locked_append(n)
"""


class TestLocksets:
    def test_entry_lockset_meet_over_callers(self, tmp_path):
        model = model_for(program_of(tmp_path, LOCK_SRC))
        assert model.module_locks == {"mod": frozenset({"LOCK"})}
        assert model.entry_locksets["mod._locked_append"] == frozenset(
            {"mod.LOCK"}
        )

    def test_one_bare_caller_breaks_the_meet(self, tmp_path):
        bare = LOCK_SRC + "\n\ndef sneak(n: int) -> None:\n    _locked_append(n)\n"
        model = model_for(program_of(tmp_path, bare))
        assert "mod._locked_append" not in model.entry_locksets

    def test_lock_scope_region_covers_helper(self, tmp_path):
        model = model_for(program_of(tmp_path, LOCK_SRC))
        region = model.lock_scope_region()
        assert {"mod.add", "mod.add_many", "mod._locked_append"} <= region

    def test_lock_attr_harvest(self, tmp_path):
        model = model_for(program_of(tmp_path, SPAWN_SRC))
        assert model.lock_attrs == {
            "mod.Coordinator": frozenset({"_lock"})
        }


TXN_SRC = """\
import asyncio

from repro.db.design import Design
from repro.db.journal import Transaction


async def inner() -> None:
    await asyncio.sleep(0)


async def outer(design: Design) -> None:
    with Transaction(design):
        await inner()
"""


class TestTransactionRegion:
    def test_region_closes_over_async_callees(self, tmp_path):
        model = model_for(program_of(tmp_path, TXN_SRC))
        region = model.await_in_transaction_region()
        assert "mod.outer" in region  # direct in-transaction await
        assert "mod.inner" in region  # awaited from inside the scope

    def test_clean_async_frame_is_outside_the_region(self, tmp_path):
        model = model_for(program_of(tmp_path, SPAWN_SRC))
        assert model.await_in_transaction_region() == frozenset()


# ----------------------------------------------------------------------
# Runtime race tracer
# ----------------------------------------------------------------------
def small_design():
    return generate_design(
        GeneratorConfig(num_cells=12, target_density=0.4, seed=3)
    )


class TestRaceTracer:
    def test_sync_transaction_records_no_await_event(self):
        design = small_design()
        with RaceTracer() as trace:
            with Transaction(design):
                pass
        assert trace.by_kind("await-in-transaction") == []

    def test_probe_detects_await_inside_transaction(self):
        design = small_design()

        async def bad() -> None:
            with Transaction(design):
                await asyncio.sleep(0)

        with RaceTracer() as trace:
            asyncio.run(bad())
        events = trace.by_kind("await-in-transaction")
        assert len(events) == 1
        # Driven from non-repro test code: no repro frame can satisfy
        # the static containment, so the checker must flag it.
        gaps = check_race_trace(trace)
        assert any("suspended" in g.reason for g in gaps)

    def test_awaitless_async_transaction_is_quiet(self):
        design = small_design()

        async def ok() -> None:
            with Transaction(design):
                design.place(design.cells[0], 0, 0, validate=False)

        with RaceTracer() as trace:
            asyncio.run(ok())
        assert trace.by_kind("await-in-transaction") == []
        mutations = trace.by_kind("mutation")
        assert [m.primitive for m in mutations] == ["Design.place"]
        assert mutations[0].txn_depth == 1

    def test_mutation_under_traced_lock_is_counted_and_flagged(self):
        design = small_design()
        with RaceTracer() as trace:
            lock = threading.Lock()  # created while armed -> traced
            with lock:
                with Transaction(design):
                    design.place(design.cells[0], 0, 0, validate=False)
        (event,) = trace.by_kind("mutation")
        assert event.locks == 1
        assert event.txn_depth == 1
        reasons = " ".join(g.reason for g in check_race_trace(trace))
        assert "held threading lock" in reasons
        assert "transaction-opening frame" in reasons

    def test_lock_count_is_balanced_after_release(self):
        with RaceTracer():
            lock = threading.Lock()
            with lock:
                pass
            design = small_design()
            with RaceTracer() as inner:
                with Transaction(design):
                    design.place(design.cells[0], 0, 0, validate=False)
        (event,) = inner.by_kind("mutation")
        assert event.locks == 0

    def test_predictions_cover_the_serve_transaction_frames(self):
        predictions = race_predictions()
        # The serve stack opens its transactions inside the session
        # executor; the static model must know those frames, or every
        # serve-load mutation event would be a false gap.
        assert any(
            "serve" in q for q in predictions.txn_opener_frames
        )
        assert predictions.await_txn_frames == frozenset()
