"""RL8 positive: worker-reachable writes to shared-looking state — a
module-level dict cache, a module-level list, a ``global`` rebind, and
a class-attribute tally — all of which silently diverge per process."""

from concurrent.futures import ProcessPoolExecutor

CACHE: dict[int, int] = {}
SEEN: list[int] = []
COUNT = 0


class Tally:
    totals: dict[str, int] = {}

    def record(self, key: str) -> None:
        Tally.totals[key] = Tally.totals.get(key, 0) + 1


def bump() -> None:
    global COUNT
    COUNT += 1


def worker(task: int) -> int:
    CACHE[task] = task * 2
    SEEN.append(task)
    bump()
    tally = Tally()
    tally.record("calls")
    return CACHE[task]


def launch(tasks: list[int]) -> list[int]:
    with ProcessPoolExecutor() as pool:
        return list(pool.map(worker, tasks))
