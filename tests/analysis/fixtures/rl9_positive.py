"""RL9 positive: suspension points inside an open ``Transaction``.

Three shapes, one per diagnostic branch: a direct ``await`` inside the
scope, a coroutine built inside the scope without an immediate await,
and a task spawned while the undo scope is open.
"""

import asyncio

from repro.db.design import Design
from repro.db.journal import Transaction


async def refresh(design: Design) -> None:
    with Transaction(design):
        await asyncio.sleep(0)


async def publish(design: Design) -> dict[str, int]:
    with Transaction(design):
        pending = refresh(design)
        asyncio.ensure_future(pending)
    return {"cells": len(design.cells)}
