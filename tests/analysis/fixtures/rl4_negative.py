"""RL4 negative: failures expressed through the taxonomy."""

from repro.engine.errors import EngineError


class SeamTear(EngineError):
    """Taxonomy subclass: fine in any module."""


def fail_typed(shard_id: int) -> None:
    raise SeamTear("seam torn", shard_id)
