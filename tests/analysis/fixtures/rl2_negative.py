"""RL2 negative: deterministic equivalents of every hazard."""

import hashlib
import random
import time


def drain(pending: set[str]) -> list[str]:
    return sorted(pending)


def jitter(seed: int, n: int) -> float:
    rng = random.Random(seed)
    return rng.random() * n


def measure() -> float:
    t0 = time.perf_counter()  # telemetry assignment: fine
    return time.perf_counter() - t0


def fingerprint(name: str) -> str:
    return hashlib.sha256(name.encode()).hexdigest()


def count_matching(pending: set[str], prefix: str) -> int:
    return sum(1 for name in pending if name.startswith(prefix))


def sorted_rebind(ids: set[int]) -> list[int]:
    """Dataflow-lite regression: the rebind establishes an order."""
    pending = set(ids)
    pending = sorted(pending)
    out: list[int] = []
    for item in pending:  # list now, not a set
        out.append(item)
    return out


def multiline_alias(seen: set[str], extra: set[str]) -> list[str]:
    """Aliased + multiline ``sorted(...)`` over a set expression."""
    merged = seen | extra
    merged = sorted(
        merged
    )
    return [name for name in merged]


def producer() -> set[int]:
    nodes = {1, 2, 3}
    return nodes


def cross_scope(nodes: list[int]) -> list[int]:
    """``nodes`` is a list here; the sibling scope must not leak."""
    out: list[int] = []
    for node in nodes:
        out.append(node)
    return out
