"""RL2 negative: deterministic equivalents of every hazard."""

import hashlib
import random
import time


def drain(pending: set[str]) -> list[str]:
    return sorted(pending)


def jitter(seed: int, n: int) -> float:
    rng = random.Random(seed)
    return rng.random() * n


def measure() -> float:
    t0 = time.perf_counter()  # telemetry assignment: fine
    return time.perf_counter() - t0


def fingerprint(name: str) -> str:
    return hashlib.sha256(name.encode()).hexdigest()


def count_matching(pending: set[str], prefix: str) -> int:
    return sum(1 for name in pending if name.startswith(prefix))
