"""RL3 negative: transaction-scoped mutations, specific handlers."""

from repro.db.journal import Transaction


def apply_all(design: object, cells: list[object]) -> None:
    with Transaction(design):
        for cell in cells:
            design.place(cell, 0, 0)


def reap(task: object) -> None:
    try:
        task.run()
    except ValueError:
        pass  # specific exception: fine


def forward(task: object) -> None:
    try:
        task.run()
    except Exception:
        raise  # re-raised: fine
