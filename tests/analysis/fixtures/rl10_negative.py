"""RL10 negative: the same work shapes, off-loaded.  ``to_thread``
passes the helper as a value reference — no synchronous call edge from
the async frame — so the loop stays responsive while the blocking work
runs in a job thread."""

import asyncio
from pathlib import Path

from repro.db.design import Design
from repro.db.journal import Transaction


def save(path: Path, payload: str) -> None:
    path.write_text(payload)


def nudge(design: Design, x: int, y: int) -> None:
    with Transaction(design):
        design.place(design.cells[0], x, y)


async def snapshot(path: Path, payload: str) -> None:
    await asyncio.to_thread(save, path, payload)


async def apply(design: Design, x: int, y: int) -> None:
    await asyncio.to_thread(nudge, design, x, y)
