"""RL5 positive: incomplete signatures and bare generics."""


def scale(values, factor):
    return [v * factor for v in values]


def tally(counts: dict) -> dict:
    return counts
