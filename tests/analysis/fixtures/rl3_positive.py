"""RL3 positive: swallowed exceptions around placement mutations."""


def apply_all(design: object, cells: list[object]) -> None:
    for cell in cells:
        try:
            design.place(cell, 0, 0)  # also: outside a Transaction
        except Exception:
            pass  # keeps a half-applied mutation


def reap(task: object) -> None:
    try:
        task.run()
    except:  # noqa: E722 - deliberately bare for the fixture
        pass
