"""RL14 positive: interpreter-bound anti-patterns in kernel code.

Three shapes, one per diagnostic family: an object-dtype array, a
per-element ndarray walk nested inside another loop, and a scalar
subscript load repeated three times in one loop body.
"""

import numpy as np


def boxed(count: int) -> np.ndarray:
    return np.empty(count, dtype=object)


def nested_walk(rows: np.ndarray, repeats: int) -> float:
    total = 0.0
    for _pass in range(repeats):
        for value in rows:
            total = total + float(value)
    return total


def repeated_loads(widths: np.ndarray) -> float:
    total = 0.0
    for i in range(len(widths)):
        total = total + widths[i] * widths[i] + widths[i]
    return total
