"""RL12 negative: every wire value passes a registered sanitizer.

The blessed idioms: bounded typed extractors (``minimum=``/
``maximum=``), a dir-confinement helper guarding filesystem paths, and
an explicit range guard whose failure path raises before the value
configures the engine.
"""

from pathlib import Path

from repro.core.config import LegalizerConfig
from repro.serve.protocol import param_int, param_str

MAX_SEED = 2**32 - 1


def _confine_output(path: str) -> str:
    resolved = Path(path).resolve()
    return str(resolved.name)


def handle(params: dict[str, object]) -> dict[str, object]:
    workers = param_int(params, "workers", 1, minimum=1, maximum=64)
    out_path = _confine_output(param_str(params, "out", "result.json"))
    with open(out_path, "w", encoding="utf-8") as fh:
        fh.write("{}")
    seed = param_int(params, "seed", 0)
    if seed < 0 or seed > MAX_SEED:
        raise ValueError("seed out of range")
    config = LegalizerConfig(seed=seed)
    return {"workers": workers, "seed": config.seed}
