"""RL5 negative: complete annotations, parameterized generics."""


def scale(values: list[float], factor: float) -> list[float]:
    return [v * factor for v in values]


class Box:
    def __init__(self, items: tuple[int, ...]) -> None:
        self.items = items

    def first(self) -> int:
        return self.items[0]
