"""RL1 positive: placement-state mutation outside the journaled layer."""


def slide(cell: object, x: int) -> None:
    cell.x = x  # no journal record within the window
    cell.y = 0


def evict(segment: object, index: int) -> None:
    segment.cells.pop(index)
