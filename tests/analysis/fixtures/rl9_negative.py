"""RL9 negative: the blessed layering — the transaction lives inside a
synchronous job function, the async frame awaits the *off-loaded* job,
so the undo scope never spans a suspension point."""

import asyncio

from repro.db.design import Design
from repro.db.journal import Transaction


def apply_move(design: Design, x: int, y: int) -> None:
    with Transaction(design):
        cell = design.cells[0]
        design.place(cell, x, y)


async def handle(design: Design, x: int, y: int) -> None:
    await asyncio.to_thread(apply_move, design, x, y)
