"""RL6 positive: payloads and arguments that cannot cross a process
boundary — lambda, closure, bound method, live Design argument, an
open file handle constructed at the spawn site, and a live Design
pickled onto the TCP wire via ``pack_payload``."""

from concurrent.futures import ProcessPoolExecutor
from multiprocessing import Process

from repro.db.design import Design
from repro.engine.wire import pack_payload


def compute(task: int) -> int:
    return task * 2


def compute_on(design: Design) -> int:
    return len(design.name)


def ship_lambda(tasks: list[int]) -> list[int]:
    with ProcessPoolExecutor() as pool:
        return list(pool.map(lambda t: t * 2, tasks))


def ship_closure(tasks: list[int]) -> list[int]:
    def helper(t: int) -> int:
        return t * 2

    with ProcessPoolExecutor() as pool:
        return list(pool.map(helper, tasks))


def ship_design(design: Design) -> None:
    with ProcessPoolExecutor() as pool:
        pool.submit(compute_on, design)


def ship_handle(path: str) -> None:
    with ProcessPoolExecutor() as pool:
        pool.submit(compute, open(path))


def ship_process_lambda() -> None:
    proc = Process(target=lambda: compute(1))
    proc.start()


class Supervisor:
    def step(self, task: int) -> int:
        return task

    def launch(self, tasks: list[int]) -> list[int]:
        with ProcessPoolExecutor() as pool:
            return list(pool.map(self.step, tasks))


def ship_design_on_wire(design: Design) -> str:
    return pack_payload(design)


def ship_handle_on_wire(path: str) -> str:
    return pack_payload(open(path))
