"""RL10 positive: async frames reaching blocking work synchronously.

``snapshot`` reaches file IO through a resolved sync helper,
``apply`` reaches a design mutation (transitively ``mutates-design``),
and ``nap`` calls ``time.sleep`` inline — the syntactic fallback for
unresolved sites.
"""

import time
from pathlib import Path

from repro.db.design import Design
from repro.db.journal import Transaction


def save(path: Path, payload: str) -> None:
    path.write_text(payload)


def nudge(design: Design, x: int, y: int) -> None:
    with Transaction(design):
        design.place(design.cells[0], x, y)


async def snapshot(path: Path, payload: str) -> None:
    save(path, payload)


async def apply(design: Design, x: int, y: int) -> None:
    nudge(design, x, y)


async def nap() -> None:
    time.sleep(0.1)
