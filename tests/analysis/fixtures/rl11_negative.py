"""RL11 negative: the blessed discipline.  Every write to the shared
counter holds the same lock from both concurrency roots, and the only
event-loop interaction from thread context goes through the
``call_soon_threadsafe`` hop (the queue method travels as a value
reference; the loop invokes it on its own thread)."""

import asyncio
import threading


class Tally:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0

    def bump(self) -> None:
        with self._lock:
            self.count += 1


def worker(
    tally: Tally,
    outbox: asyncio.Queue,
    loop: asyncio.AbstractEventLoop,
) -> None:
    tally.bump()
    loop.call_soon_threadsafe(outbox.put_nowait, 1)


def main(
    tally: Tally,
    outbox: asyncio.Queue,
    loop: asyncio.AbstractEventLoop,
) -> None:
    thread = threading.Thread(target=worker, args=(tally, outbox, loop))
    thread.start()
    tally.bump()
    thread.join()
