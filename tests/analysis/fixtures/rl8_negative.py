"""RL8 negative: the blessed protocol — worker state is function-local,
inputs travel in the task, results come back in the return value and
are merged by the parent (which is *not* worker-reachable)."""

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

SCALE = 3  # immutable module constant: reads are always fine


@dataclass(frozen=True)
class Item:
    key: int


def worker(item: Item) -> dict[int, int]:
    local_cache: dict[int, int] = {}
    local_cache[item.key] = item.key * SCALE
    return local_cache


def launch(items: list[Item]) -> dict[int, int]:
    with ProcessPoolExecutor() as pool:
        results = list(pool.map(worker, items))
    merged: dict[int, int] = {}
    for result in results:
        merged.update(result)
    return merged
