"""RL6 negative: the blessed protocol — a module-level worker function
fed frozen value-object tasks, results merged from the outcomes; the
same value objects are fine on the TCP wire via ``pack_payload``."""

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.engine.wire import pack_payload


@dataclass(frozen=True)
class WorkTask:
    task_id: int
    width: int


@dataclass(frozen=True)
class WorkOutcome:
    task_id: int
    area: int


def compute(task: WorkTask) -> WorkOutcome:
    return WorkOutcome(task_id=task.task_id, area=task.width * task.width)


def launch(tasks: list[WorkTask]) -> list[WorkOutcome]:
    with ProcessPoolExecutor() as pool:
        return list(pool.map(compute, tasks))


def submit_one(task: WorkTask) -> WorkOutcome:
    with ProcessPoolExecutor() as pool:
        future = pool.submit(compute, task)
        return future.result()


def ship_task_on_wire(task: WorkTask) -> str:
    return pack_payload(task)


def ship_outcome_on_wire(outcome: WorkOutcome) -> str:
    return pack_payload(outcome)
