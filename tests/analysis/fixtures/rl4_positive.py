"""RL4 positive: generic exceptions escaping the engine taxonomy."""


class ShardPuncture(Exception):
    """Exception class defined outside errors.py with a generic base."""


def fail_generic(shard_id: int) -> None:
    raise RuntimeError(f"shard {shard_id} failed")
