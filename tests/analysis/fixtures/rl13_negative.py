"""RL13 negative: every acquisition discharged on every path.

The blessed idioms: ``with`` scopes, ``try``/``finally`` release,
close-in-``except``-then-reraise around the post-dial window, explicit
ownership transfer by returning the handle, and ``is None`` narrowing
on the retry-dial pattern.
"""

import socket
import threading


def read_all(path: str) -> str:
    with open(path, "r", encoding="utf-8") as fh:
        return fh.read()


def peek(host: str, port: int) -> bytes:
    sock = socket.create_connection((host, port))
    try:
        sock.settimeout(5.0)
        return sock.recv(16)
    finally:
        sock.close()


def dial(host: str, port: int) -> socket.socket:
    sock = socket.create_connection((host, port))
    try:
        sock.settimeout(5.0)
    except Exception:
        sock.close()
        raise
    return sock


def dial_with_retry(host: str, port: int, attempts: int) -> socket.socket:
    sock: socket.socket | None = None
    for _attempt in range(attempts):
        try:
            sock = socket.create_connection((host, port))
            break
        except OSError:
            continue
    if sock is None:
        raise ConnectionError("all dial attempts failed")
    return sock


class Tally:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0

    def bump(self, amount: int) -> int:
        self._lock.acquire()
        try:
            self.count = self.count + amount
        finally:
            self._lock.release()
        return self.count
