"""RL12 positive: wire-decoded values reaching sensitive sinks.

Four shapes, one per diagnostic family: a wire string opening a file
(path sink), an unbounded wire integer configuring the engine (config
sink), a raw wire payload unpickled (pickle sink), and a wire string
entering a filesystem helper (interprocedural hit reported at the call
site).
"""

import pickle

from repro.core.config import LegalizerConfig
from repro.serve.protocol import param_int, param_str


def _emit(path: str) -> None:
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("x\n")


def handle(params: dict[str, object]) -> dict[str, object]:
    out_path = param_str(params, "out", "result.json")
    with open(out_path, "w", encoding="utf-8") as fh:
        fh.write("{}")
    workers = param_int(params, "workers", 1)
    config = LegalizerConfig(max_displacement=workers)
    task = pickle.loads(params["payload"])
    _emit(param_str(params, "log", "requests.log"))
    return {"task": str(task), "rows": config.max_displacement}
