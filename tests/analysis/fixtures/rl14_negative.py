"""RL14 negative: the vectorized idioms the kernels should use.

Numeric dtypes, whole-array operations, index-array gathers (an array
index is a vectorized load, not a scalar one), a single flat pass over
an ndarray, and a hoisted scalar load inside the loop body.
"""

import numpy as np


def widths_of(count: int) -> np.ndarray:
    return np.zeros(count, dtype=np.float64)


def scale(values: np.ndarray, factor: float) -> np.ndarray:
    return values * factor


def gather(bounds: np.ndarray, order: np.ndarray) -> np.ndarray:
    picked = bounds[order]
    return picked + bounds[order]


def flat_sum(rows: np.ndarray) -> float:
    total = 0.0
    for value in rows:
        total = total + float(value)
    return total


def hoisted(widths: np.ndarray) -> float:
    total = 0.0
    for i in range(len(widths)):
        w = widths[i]
        total = total + w * w + w
    return total
