"""RL7 positive: a call-graph root reaches ``design.place`` through a
helper with no ``Transaction`` scope anywhere on the path.

The helper's bare primitive call is the RL3-visible half; the *chain*
``optimize -> nudge -> design.place`` with no transaction at either
level is what only the interprocedural rule can see.
"""

from repro.db.design import Design


def nudge(design: Design, x: int, y: int) -> None:
    cell = design.cells[0]
    design.place(cell, x, y)  # repro-lint: disable=RL3 -- the caller is expected to own the transaction (it does not: RL7's job)


def optimize(design: Design) -> None:
    nudge(design, 0, 0)
