"""RL2 positive: order/entropy/clock hazards."""

import os
import random
import time


def drain(pending: set[str]) -> list[str]:
    out: list[str] = []
    for name in pending:  # unordered iteration
        out.append(name)
    return out


def jitter(n: int) -> float:
    return random.random() * n  # ambient module-level RNG


def too_slow(t0: float) -> bool:
    return time.perf_counter() - t0 > 1.0  # clock steering control flow


def nonce() -> bytes:
    return os.urandom(8)  # entropy


def fingerprint(name: str) -> int:
    return hash(name)  # PYTHONHASHSEED-randomized
