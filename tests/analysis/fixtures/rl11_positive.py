"""RL11 positive: inconsistent lockset + cross-thread loop touches.

``Tally.count`` is written from two concurrency roots (the spawned
``worker`` thread and the ``main`` spawner frame); the locked write in
``locked_bump`` documents the discipline, the bare write in
``bare_bump`` breaks it.  ``worker`` also touches event-loop objects
directly from thread context — a typed ``asyncio.Queue.put_nowait``
and a by-name ``loop.call_soon`` — instead of hopping through
``call_soon_threadsafe``.
"""

import asyncio
import threading


class Tally:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0

    def locked_bump(self) -> None:
        with self._lock:
            self.count += 1

    def bare_bump(self) -> None:
        self.count += 1


def worker(
    tally: Tally,
    outbox: asyncio.Queue,
    loop: asyncio.AbstractEventLoop,
) -> None:
    tally.bare_bump()
    outbox.put_nowait(1)
    loop.call_soon(tally.locked_bump)


def main(
    tally: Tally,
    outbox: asyncio.Queue,
    loop: asyncio.AbstractEventLoop,
) -> None:
    thread = threading.Thread(target=worker, args=(tally, outbox, loop))
    thread.start()
    tally.locked_bump()
    thread.join()
