"""RL1 negative: the mutate-first, record-second convention."""


def slide(cell: object, journal: object, x: int) -> None:
    old_x = cell.x
    cell.x = x
    journal.note_set_pos(cell, old_x, cell.y, "fixture.slide")


class Report:
    """A class mutating its *own* list attribute is exempt."""

    def __init__(self) -> None:
        self.cells: list[object] = []

    def merge(self, other: "Report") -> None:
        self.cells.extend(other.cells)
