"""RL13 positive: owned handles escaping scope unreleased.

Three shapes, one per diagnostic flavor: a dialed socket leaked along
an exception edge (``settimeout`` can raise before ownership
transfers), a file handle dropped by rebinding its name, and a file
handle that is only closed on one branch of the function exit.
"""

import socket
import threading


def dial(host: str, port: int) -> socket.socket:
    sock = socket.create_connection((host, port))
    sock.settimeout(5.0)
    return sock


def rewrite(first: str, second: str) -> str:
    fh = open(first, "r", encoding="utf-8")
    fh = open(second, "r", encoding="utf-8")
    text = fh.read()
    fh.close()
    return text


def maybe_close(path: str, keep: bool) -> int:
    fh = open(path, "rb")
    size = len(fh.read())
    if not keep:
        fh.close()
    return size


class Tally:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0

    def _advance(self, amount: int) -> int:
        return self.count + amount

    def bump(self, amount: int) -> int:
        self._lock.acquire()
        self.count = self._advance(amount)
        self._lock.release()
        return self.count
