"""RL7 negative: the root owns the transaction, so the helper's bare
primitive call is covered interprocedurally — the blessed layering
(helpers stay lean, the commit-or-restore decision lives at the top)."""

from repro.db.design import Design
from repro.db.journal import Transaction


def nudge(design: Design, x: int, y: int) -> None:
    cell = design.cells[0]
    design.place(cell, x, y)  # repro-lint: disable=RL3 -- caller owns the transaction (see optimize)


def optimize(design: Design) -> None:
    with Transaction(design):
        nudge(design, 0, 0)
