"""Incremental lint cache: correctness, invalidation, and the warm-run
speedup contract (ISSUE acceptance: warm ≥ 5× faster than cold)."""

from __future__ import annotations

import json
import shutil
import time
from pathlib import Path

from repro.analysis.cache import (
    LintCache,
    content_hash,
    program_key,
    ruleset_fingerprint,
)
from repro.analysis.runner import lint_paths

SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"
FIXTURES = Path(__file__).parent / "fixtures"


def as_dicts(diags):
    return [d.to_dict() for d in diags]


class TestCacheCorrectness:
    def test_warm_run_reproduces_cold_diagnostics(self, tmp_path):
        work = tmp_path / "work"
        work.mkdir()
        for name in ("rl1_positive.py", "rl2_positive.py", "rl5_negative.py"):
            shutil.copy(FIXTURES / name, work / name)
        cache = str(tmp_path / "cache.json")
        cold, _ = lint_paths([str(work)], cache_path=cache)
        warm, _ = lint_paths([str(work)], cache_path=cache)
        assert as_dicts(warm) == as_dicts(cold)
        assert cold  # the positives actually produce findings

    def test_interprocedural_warm_run_reproduces(self, tmp_path):
        work = tmp_path / "work"
        work.mkdir()
        shutil.copy(FIXTURES / "rl8_positive.py", work / "rl8_positive.py")
        cache = str(tmp_path / "cache.json")
        cold, _ = lint_paths(
            [str(work)], interprocedural=True, cache_path=cache
        )
        warm, _ = lint_paths(
            [str(work)], interprocedural=True, cache_path=cache
        )
        assert as_dicts(warm) == as_dicts(cold)
        assert any(d.code == "RL8" for d in cold)

    def test_edited_file_is_relinted(self, tmp_path):
        work = tmp_path / "work"
        work.mkdir()
        target = work / "m.py"
        target.write_text("def ok() -> int:\n    return 1\n")
        cache = str(tmp_path / "cache.json")
        clean, _ = lint_paths([str(work)], cache_path=cache)
        assert clean == []
        target.write_text(
            "import random\n"
            "def bad() -> float:\n"
            "    return random.random()\n"
        )
        dirty, _ = lint_paths([str(work)], cache_path=cache)
        assert any(d.code == "RL2" for d in dirty)


class TestInvalidation:
    def test_fingerprint_mismatch_discards_cache(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = LintCache(str(path), fingerprint="fp-one")
        cache.put_file("a.py", "hash", "RL1", [], [])
        cache.save()
        assert path.exists()
        stale = LintCache(str(path), fingerprint="fp-two")
        assert stale.get_file("a.py", "hash", "RL1") is None
        fresh = LintCache(str(path), fingerprint="fp-one")
        assert fresh.get_file("a.py", "hash", "RL1") == ([], [])

    def test_content_hash_mismatch_misses(self, tmp_path):
        cache = LintCache(str(tmp_path / "cache.json"), fingerprint="fp")
        cache.put_file("a.py", "hash-one", "RL1", [], [])
        assert cache.get_file("a.py", "hash-two", "RL1") is None

    def test_ruleset_fingerprint_is_stable(self):
        assert ruleset_fingerprint() == ruleset_fingerprint()

    def test_content_hash_tracks_bytes(self):
        assert content_hash(b"a") != content_hash(b"b")
        assert content_hash(b"a") == content_hash(b"a")

    def test_model_version_changes_the_program_key(self):
        codes = ("RL9", "RL10", "RL11")
        hashes = (("a.py", "h1"), ("b.py", "h2"))
        base = program_key(codes, hashes)
        v1 = program_key(codes, hashes, model_version="1")
        v2 = program_key(codes, hashes, model_version="2")
        assert len({base, v1, v2}) == 3
        # Same inputs, same version: deterministic.
        assert v1 == program_key(codes, hashes, model_version="1")

    def test_model_version_bump_forces_cold_program_pass(self, tmp_path):
        """Satellite contract: bumping CONCURRENCY_MODEL_VERSION must
        miss the cached program entry even when no source changed."""
        cache = LintCache(str(tmp_path / "cache.json"), fingerprint="fp")
        codes = ("RL9",)
        hashes = (("m.py", "hash"),)
        old = program_key(codes, hashes, model_version="1")
        cache.put_program(old, [])
        assert cache.get_program(old) == []
        bumped = program_key(codes, hashes, model_version="2")
        assert cache.get_program(bumped) is None

    def test_corrupt_cache_file_is_discarded(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json")
        cache = LintCache(str(path), fingerprint="fp")
        assert cache.get_file("a.py", "hash", "RL1") is None

    def test_cache_file_is_json(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = LintCache(str(path), fingerprint="fp")
        cache.put_file("a.py", "hash", "RL1", [], [])
        cache.save()
        doc = json.loads(path.read_text())
        assert doc["fingerprint"] == "fp"


class TestSpeedup:
    def test_warm_run_is_at_least_5x_faster(self, tmp_path):
        """The ISSUE acceptance bar, with the real tree as workload."""
        cache = str(tmp_path / "cache.json")
        t0 = time.perf_counter()
        cold, _ = lint_paths(
            [str(SRC_REPRO)], interprocedural=True, cache_path=cache
        )
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm, _ = lint_paths(
            [str(SRC_REPRO)], interprocedural=True, cache_path=cache
        )
        warm_s = time.perf_counter() - t0
        assert as_dicts(warm) == as_dicts(cold)
        assert cold_s >= 5 * warm_s, (
            f"warm cached lint not >=5x faster: cold {cold_s:.3f}s, "
            f"warm {warm_s:.3f}s"
        )
