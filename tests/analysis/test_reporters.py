"""Reporter output shapes (text footer, JSON schema)."""

import json
from pathlib import Path

from repro.analysis import lint_paths, render_json, render_text
from repro.analysis.reporters import ScanSummary, counts_by_code

FIXTURES = Path(__file__).parent / "fixtures"


class TestJsonReporter:
    def test_document_schema(self):
        diags, summary = lint_paths([str(FIXTURES / "rl5_positive.py")])
        doc = json.loads(render_json(diags, summary))
        assert doc["version"] == 1
        assert doc["tool"] == "repro-lint"
        assert doc["files_scanned"] == 1
        assert doc["files_failed"] == 0
        assert doc["summary"]["RL5"] >= 3
        for entry in doc["diagnostics"]:
            assert set(entry) == {
                "path", "line", "col", "code", "rule", "message"
            }

    def test_diagnostics_are_sorted(self):
        diags, summary = lint_paths([str(FIXTURES)])
        doc = json.loads(render_json(diags, summary))
        keys = [
            (e["path"], e["line"], e["col"], e["code"])
            for e in doc["diagnostics"]
        ]
        assert keys == sorted(keys)

    def test_clean_run_has_empty_summary(self):
        diags, summary = lint_paths([str(FIXTURES / "rl1_negative.py")])
        doc = json.loads(render_json(diags, summary))
        assert doc["summary"] == {}
        assert doc["diagnostics"] == []


class TestTextReporter:
    def test_footer_counts_by_code(self):
        diags, summary = lint_paths([str(FIXTURES / "rl5_positive.py")])
        text = render_text(diags, summary)
        assert "repro-lint:" in text
        assert "RL5:" in text

    def test_clean_footer(self):
        text = render_text([], ScanSummary(files_scanned=3, rules_run=["RL1"]))
        assert "clean" in text

    def test_counts_by_code_sorted(self):
        diags, _ = lint_paths([str(FIXTURES)])
        counts = counts_by_code(diags)
        assert list(counts) == sorted(counts)
        assert sum(counts.values()) == len(diags)
