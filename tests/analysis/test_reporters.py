"""Reporter output shapes (text footer, JSON schema, SARIF 2.1.0)."""

import json
from pathlib import Path

from repro.analysis import lint_paths, render_json, render_text
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.reporters import (
    ScanSummary,
    counts_by_code,
    render_github,
    render_sarif,
)

FIXTURES = Path(__file__).parent / "fixtures"

#: Structural subset of the SARIF 2.1.0 schema covering everything the
#: reporter emits — validated with ``jsonschema`` so shape drift fails
#: loudly without needing the (networked) full OASIS schema.
SARIF_SCHEMA = {
    "type": "object",
    "required": ["$schema", "version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name", "rules"],
                                "properties": {
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": [
                                                "id",
                                                "name",
                                                "shortDescription",
                                            ],
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": [
                                "ruleId",
                                "level",
                                "message",
                                "locations",
                            ],
                            "properties": {
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "minItems": 1,
                                    "items": {
                                        "type": "object",
                                        "required": ["physicalLocation"],
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "required": [
                                                    "artifactLocation",
                                                    "region",
                                                ],
                                                "properties": {
                                                    "region": {
                                                        "type": "object",
                                                        "required": [
                                                            "startLine",
                                                            "startColumn",
                                                        ],
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


class TestJsonReporter:
    def test_document_schema(self):
        diags, summary = lint_paths([str(FIXTURES / "rl5_positive.py")])
        doc = json.loads(render_json(diags, summary))
        assert doc["version"] == 1
        assert doc["tool"] == "repro-lint"
        assert doc["files_scanned"] == 1
        assert doc["files_failed"] == 0
        assert doc["summary"]["RL5"] >= 3
        for entry in doc["diagnostics"]:
            assert set(entry) == {
                "path", "line", "col", "code", "rule", "message"
            }

    def test_diagnostics_are_sorted(self):
        diags, summary = lint_paths([str(FIXTURES)])
        doc = json.loads(render_json(diags, summary))
        keys = [
            (e["path"], e["line"], e["col"], e["code"])
            for e in doc["diagnostics"]
        ]
        assert keys == sorted(keys)

    def test_clean_run_has_empty_summary(self):
        diags, summary = lint_paths([str(FIXTURES / "rl1_negative.py")])
        doc = json.loads(render_json(diags, summary))
        assert doc["summary"] == {}
        assert doc["diagnostics"] == []


class TestTextReporter:
    def test_footer_counts_by_code(self):
        diags, summary = lint_paths([str(FIXTURES / "rl5_positive.py")])
        text = render_text(diags, summary)
        assert "repro-lint:" in text
        assert "RL5:" in text

    def test_clean_footer(self):
        text = render_text([], ScanSummary(files_scanned=3, rules_run=["RL1"]))
        assert "clean" in text

    def test_counts_by_code_sorted(self):
        diags, _ = lint_paths([str(FIXTURES)])
        counts = counts_by_code(diags)
        assert list(counts) == sorted(counts)
        assert sum(counts.values()) == len(diags)


class TestSarifReporter:
    def test_document_validates_against_schema(self):
        import jsonschema

        diags, summary = lint_paths([str(FIXTURES / "rl5_positive.py")])
        doc = json.loads(render_sarif(diags, summary))
        jsonschema.validate(doc, SARIF_SCHEMA)

    def test_rule_catalog_covers_all_codes(self):
        diags, summary = lint_paths([str(FIXTURES)])
        doc = json.loads(render_sarif(diags, summary))
        rule_ids = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
        assert {
            "RL0", "RL1", "RL2", "RL3", "RL4", "RL5",
            "RL6", "RL7", "RL8", "E999",
        } <= rule_ids
        # every emitted result references a cataloged rule
        for result in doc["runs"][0]["results"]:
            assert result["ruleId"] in rule_ids

    def test_columns_are_one_based(self):
        diags, summary = lint_paths([str(FIXTURES / "rl5_positive.py")])
        doc = json.loads(render_sarif(diags, summary))
        regions = [
            loc["physicalLocation"]["region"]
            for result in doc["runs"][0]["results"]
            for loc in result["locations"]
        ]
        assert regions
        assert all(r["startColumn"] >= 1 for r in regions)

    def test_clean_run_has_empty_results(self):
        diags, summary = lint_paths([str(FIXTURES / "rl1_negative.py")])
        doc = json.loads(render_sarif(diags, summary))
        assert doc["runs"][0]["results"] == []


class TestGithubReporter:
    def test_annotation_shape_and_one_based_columns(self):
        diags, summary = lint_paths([str(FIXTURES / "rl1_positive.py")])
        lines = render_github(diags, summary).splitlines()
        errors = [ln for ln in lines if ln.startswith("::error ")]
        assert len(errors) == len(diags)
        for diag, line in zip(sorted(diags), errors):
            assert f"file={diag.path}" in line
            assert f"line={diag.line}" in line
            assert f"col={diag.col + 1}" in line
            assert f"title={diag.code} {diag.rule}" in line
        assert lines[-1].startswith("::notice title=repro-lint::")

    def test_message_and_property_escaping(self):
        diag = Diagnostic(
            path="a,b.py",
            line=3,
            col=0,
            code="RL1",
            rule="x:y",
            message="50% bad\nsecond line",
        )
        out = render_github([diag], ScanSummary(files_scanned=1))
        annotation = out.splitlines()[0]
        # Newlines and percents are escaped in the message; commas and
        # colons additionally in property values.
        assert "50%25 bad%0Asecond line" in annotation
        assert "file=a%2Cb.py" in annotation
        assert "title=RL1 x%3Ay" in annotation
        assert "\n" not in annotation

    def test_clean_run_is_a_single_notice(self):
        out = render_github(
            [], ScanSummary(files_scanned=4, rules_run=["RL1", "RL2"])
        )
        assert out.splitlines() == [
            "::notice title=repro-lint::clean (4 file(s), 2 rule(s))"
        ]
