"""Suppression semantics: justified comments suppress, everything else
is itself a finding (RL0 hygiene)."""

from repro.analysis import lint_file

RL5_BAD = "def f(x):\n    return x\n"


def codes(source: str, path: str = "fx.py"):
    return [d.code for d in lint_file(path, source=source)]


class TestSuppression:
    def test_trailing_justified_suppression_suppresses(self):
        src = (
            "def f(x):  # repro-lint: disable=RL5 -- fixture helper\n"
            "    return x\n"
        )
        assert codes(src) == []

    def test_standalone_justified_suppression_targets_next_code_line(self):
        src = (
            "# repro-lint: disable=RL5 -- fixture helper\n"
            "def f(x):\n"
            "    return x\n"
        )
        assert codes(src) == []

    def test_multiple_codes_in_one_comment(self):
        src = (
            "import random\n"
            "\n"
            "\n"
            "def f(x):  # repro-lint: disable=RL5,RL2 -- fixture\n"
            "    return random.random() * x\n"
        )
        # RL5 on the def line is suppressed; the RL2 call sits on the
        # *next* line, so it survives — suppressions are line-scoped.
        assert codes(src) == ["RL2"]

    def test_unjustified_suppression_is_inert_and_reported(self):
        src = "def f(x):  # repro-lint: disable=RL5\n    return x\n"
        found = codes(src)
        assert "RL5" in found  # still reported: suppression was inert
        assert "RL0" in found  # and the bad suppression is flagged

    def test_unknown_code_is_reported(self):
        src = "x: int = 1  # repro-lint: disable=RL99 -- because\n"
        diags = lint_file("fx.py", source=src)
        assert [d.code for d in diags] == ["RL0"]
        assert "unknown rule code" in diags[0].message

    def test_stale_suppression_is_reported(self):
        src = "x: int = 1  # repro-lint: disable=RL5 -- nothing here\n"
        diags = lint_file("fx.py", source=src)
        assert [d.code for d in diags] == ["RL0"]
        assert "stale suppression" in diags[0].message

    def test_used_suppression_is_not_stale(self):
        src = (
            "def f(x):  # repro-lint: disable=RL5 -- fixture helper\n"
            "    return x\n"
        )
        assert all(d.code != "RL0" for d in lint_file("fx.py", source=src))

    def test_marker_inside_string_literal_is_ignored(self):
        src = 's: str = "# repro-lint: disable=RL5 -- not a comment"\n'
        assert codes(src) == []
