"""Per-rule fixture sweep: each code fires on its positive fixture and
stays silent on its negative one (which is additionally fully clean, so
the negatives double as executable documentation of the blessed idiom).
"""

from pathlib import Path

import pytest

from repro.analysis import lint_file, lint_paths

FIXTURES = Path(__file__).parent / "fixtures"
CODES = ("RL1", "RL2", "RL3", "RL4", "RL5", "RL14")
PROGRAM_CODES = (
    "RL6",
    "RL7",
    "RL8",
    "RL9",
    "RL10",
    "RL11",
    "RL12",
    "RL13",
)


def codes_in(path: Path) -> set[str]:
    return {d.code for d in lint_file(str(path))}


def program_lint(path: Path):
    diags, _ = lint_paths([str(path)], interprocedural=True)
    return diags


@pytest.mark.parametrize("code", CODES)
def test_positive_fixture_fires(code):
    found = codes_in(FIXTURES / f"{code.lower()}_positive.py")
    assert code in found


@pytest.mark.parametrize("code", CODES)
def test_negative_fixture_is_clean(code):
    diags = lint_file(str(FIXTURES / f"{code.lower()}_negative.py"))
    assert diags == []


@pytest.mark.parametrize("code", PROGRAM_CODES)
def test_program_positive_fixture_fires(code):
    diags = program_lint(FIXTURES / f"{code.lower()}_positive.py")
    assert code in {d.code for d in diags}


@pytest.mark.parametrize("code", PROGRAM_CODES)
def test_program_negative_fixture_is_clean(code):
    diags = program_lint(FIXTURES / f"{code.lower()}_negative.py")
    assert diags == []


class TestRuleDetail:
    def test_rl1_flags_each_mutation_site(self):
        diags = [
            d for d in lint_file(str(FIXTURES / "rl1_positive.py"))
            if d.code == "RL1"
        ]
        # .x write, .y write, .cells.pop(...)
        assert len(diags) == 3

    def test_rl2_covers_all_hazard_families(self):
        messages = " ".join(
            d.message
            for d in lint_file(str(FIXTURES / "rl2_positive.py"))
            if d.code == "RL2"
        )
        assert "set iterated" in messages
        assert "ambient" in messages  # random.random
        assert "wall-clock" in messages  # time in control flow
        assert "entropy" in messages  # os.urandom
        assert "hash()" in messages  # builtin hash

    def test_rl3_flags_swallow_and_unscoped_mutation(self):
        messages = [
            d.message
            for d in lint_file(str(FIXTURES / "rl3_positive.py"))
            if d.code == "RL3"
        ]
        assert any("broad `except Exception:`" in m for m in messages)
        assert any("bare `except:`" in m for m in messages)
        assert any("outside a Transaction scope" in m for m in messages)

    def test_rl4_flags_raise_and_class(self):
        messages = [
            d.message
            for d in lint_file(str(FIXTURES / "rl4_positive.py"))
            if d.code == "RL4"
        ]
        assert any("raise RuntimeError" in m for m in messages)
        assert any("ShardPuncture" in m for m in messages)

    def test_rl5_flags_signature_and_bare_generic(self):
        messages = [
            d.message
            for d in lint_file(str(FIXTURES / "rl5_positive.py"))
            if d.code == "RL5"
        ]
        assert any("unannotated parameter" in m for m in messages)
        assert any("no return annotation" in m for m in messages)
        assert any("bare `dict`" in m for m in messages)

    def test_parse_error_is_a_diagnostic_not_a_crash(self):
        diags = lint_file("broken.py", source="def f(:\n")
        assert [d.code for d in diags] == ["E999"]

    # ------------------------------------------------------------------
    # RL2 dataflow-lite regressions (scope fences + ordering demotion)
    def test_rl2_sorted_rebind_is_not_flagged(self):
        diags = lint_file(
            "probe.py",
            source=(
                "def drain(ids: set[int]) -> list[int]:\n"
                "    pending = set(ids)\n"
                "    pending = sorted(pending)\n"
                "    out: list[int] = []\n"
                "    for item in pending:\n"
                "        out.append(item)\n"
                "    return out\n"
            ),
        )
        assert [d for d in diags if d.code == "RL2"] == []

    def test_rl2_multiline_sorted_alias_is_not_flagged(self):
        diags = lint_file(
            "probe.py",
            source=(
                "def merge(seen: set[str], extra: set[str]) -> list[str]:\n"
                "    merged = seen | extra\n"
                "    merged = sorted(\n"
                "        merged\n"
                "    )\n"
                "    return [name for name in merged]\n"
            ),
        )
        assert [d for d in diags if d.code == "RL2"] == []

    def test_rl2_set_names_do_not_leak_across_scopes(self):
        diags = lint_file(
            "probe.py",
            source=(
                "def produce() -> set[int]:\n"
                "    nodes = {1, 2}\n"
                "    return nodes\n"
                "def consume(nodes: list[int]) -> list[int]:\n"
                "    return [n for n in nodes]\n"
            ),
        )
        assert [d for d in diags if d.code == "RL2"] == []

    def test_rl2_true_positive_still_fires(self):
        diags = lint_file(
            "probe.py",
            source=(
                "def drain(pending: set[str]) -> list[str]:\n"
                "    out: list[str] = []\n"
                "    for item in pending:\n"
                "        out.append(item)\n"
                "    return out\n"
            ),
        )
        assert any(d.code == "RL2" for d in diags)

    # ------------------------------------------------------------------
    # Program-rule message detail
    def test_rl6_names_each_violation_kind(self):
        diags = program_lint(FIXTURES / "rl6_positive.py")
        messages = " ".join(d.message for d in diags if d.code == "RL6")
        assert "lambda" in messages
        assert "closure" in messages
        assert "bound method" in messages
        assert "live Design" in messages
        assert "open file handle" in messages

    def test_rl7_reports_the_chain_at_the_root(self):
        diags = [
            d for d in program_lint(FIXTURES / "rl7_positive.py")
            if d.code == "RL7"
        ]
        assert len(diags) == 1
        assert "optimize" in diags[0].message
        assert "->" in diags[0].message
        assert "Transaction" in diags[0].message

    def test_rl8_covers_global_and_class_state(self):
        messages = " ".join(
            d.message
            for d in program_lint(FIXTURES / "rl8_positive.py")
            if d.code == "RL8"
        )
        assert "subscript" in messages
        assert "`global COUNT`" in messages
        assert "class-level mutable attribute" in messages
        assert ".append()" in messages

    def test_rl9_covers_all_three_shapes(self):
        messages = [
            d.message
            for d in program_lint(FIXTURES / "rl9_positive.py")
            if d.code == "RL9"
        ]
        assert len(messages) == 3
        assert any("await inside a Transaction scope" in m for m in messages)
        assert any("without an immediate await" in m for m in messages)
        assert any("task spawned inside a Transaction" in m for m in messages)

    def test_rl10_names_each_blocking_reason(self):
        messages = [
            d.message
            for d in program_lint(FIXTURES / "rl10_positive.py")
            if d.code == "RL10"
        ]
        assert len(messages) == 3
        assert any("blocking file IO" in m for m in messages)
        assert any("transitively mutates the design" in m for m in messages)
        assert any("blocking call time.sleep" in m for m in messages)

    def test_rl11_covers_lockset_and_loop_touches(self):
        messages = [
            d.message
            for d in program_lint(FIXTURES / "rl11_positive.py")
            if d.code == "RL11"
        ]
        assert len(messages) == 3
        assert any("inconsistent lockset" in m for m in messages)
        assert any(
            "put_nowait on an event-loop object" in m for m in messages
        )
        assert any(
            "call_soon on an event-loop object" in m for m in messages
        )
        # The lockset message names the lock the other writers hold.
        lockset = next(m for m in messages if "inconsistent" in m)
        assert "Tally._lock" in lockset

    def test_rl12_covers_each_sink_family(self):
        messages = [
            d.message
            for d in program_lint(FIXTURES / "rl12_positive.py")
            if d.code == "RL12"
        ]
        assert len(messages) == 4
        assert any("path sink `open(...)`" in m for m in messages)
        assert any("config sink" in m for m in messages)
        assert any("pickle sink" in m for m in messages)
        # The interprocedural hit is reported at the call site and
        # names the callee carrying the sink.
        assert any("via `_emit`" in m for m in messages)

    def test_rl12_levels_are_tracked(self):
        messages = " ".join(
            d.message
            for d in program_lint(FIXTURES / "rl12_positive.py")
            if d.code == "RL12"
        )
        # param_str output is str-level; param_int output is num-level;
        # a raw params subscript stays raw.
        assert "untrusted wire input (str)" in messages
        assert "untrusted wire input (num)" in messages
        assert "untrusted wire input (raw)" in messages

    def test_rl13_covers_each_leak_flavor(self):
        messages = [
            d.message
            for d in program_lint(FIXTURES / "rl13_positive.py")
            if d.code == "RL13"
        ]
        assert any("exception path" in m for m in messages)
        assert any("dropped by reassigning" in m for m in messages)
        assert any("path to function exit" in m for m in messages)
        # Each flavor names what was acquired.
        joined = " ".join(messages)
        assert "socket `sock`" in joined
        assert "file handle `fh`" in joined
        assert "lock `self._lock`" in joined

    def test_rl13_reports_at_the_acquisition_site(self):
        diags = [
            d
            for d in program_lint(FIXTURES / "rl13_positive.py")
            if d.code == "RL13"
        ]
        source = (FIXTURES / "rl13_positive.py").read_text()
        lines = source.splitlines()
        for diag in diags:
            text = lines[diag.line - 1]
            assert (
                "create_connection" in text
                or "open(" in text
                or ".acquire(" in text
            )

    def test_rl14_names_each_antipattern(self):
        messages = [
            d.message
            for d in lint_file(str(FIXTURES / "rl14_positive.py"))
            if d.code == "RL14"
        ]
        assert len(messages) == 3
        assert any("object-dtype" in m for m in messages)
        assert any("inside another loop" in m for m in messages)
        assert any("repeated 3 times" in m for m in messages)
