"""Per-rule fixture sweep: each code fires on its positive fixture and
stays silent on its negative one (which is additionally fully clean, so
the negatives double as executable documentation of the blessed idiom).
"""

from pathlib import Path

import pytest

from repro.analysis import lint_file

FIXTURES = Path(__file__).parent / "fixtures"
CODES = ("RL1", "RL2", "RL3", "RL4", "RL5")


def codes_in(path: Path) -> set[str]:
    return {d.code for d in lint_file(str(path))}


@pytest.mark.parametrize("code", CODES)
def test_positive_fixture_fires(code):
    found = codes_in(FIXTURES / f"{code.lower()}_positive.py")
    assert code in found


@pytest.mark.parametrize("code", CODES)
def test_negative_fixture_is_clean(code):
    diags = lint_file(str(FIXTURES / f"{code.lower()}_negative.py"))
    assert diags == []


class TestRuleDetail:
    def test_rl1_flags_each_mutation_site(self):
        diags = [
            d for d in lint_file(str(FIXTURES / "rl1_positive.py"))
            if d.code == "RL1"
        ]
        # .x write, .y write, .cells.pop(...)
        assert len(diags) == 3

    def test_rl2_covers_all_hazard_families(self):
        messages = " ".join(
            d.message
            for d in lint_file(str(FIXTURES / "rl2_positive.py"))
            if d.code == "RL2"
        )
        assert "set iterated" in messages
        assert "ambient" in messages  # random.random
        assert "wall-clock" in messages  # time in control flow
        assert "entropy" in messages  # os.urandom
        assert "hash()" in messages  # builtin hash

    def test_rl3_flags_swallow_and_unscoped_mutation(self):
        messages = [
            d.message
            for d in lint_file(str(FIXTURES / "rl3_positive.py"))
            if d.code == "RL3"
        ]
        assert any("broad `except Exception:`" in m for m in messages)
        assert any("bare `except:`" in m for m in messages)
        assert any("outside a Transaction scope" in m for m in messages)

    def test_rl4_flags_raise_and_class(self):
        messages = [
            d.message
            for d in lint_file(str(FIXTURES / "rl4_positive.py"))
            if d.code == "RL4"
        ]
        assert any("raise RuntimeError" in m for m in messages)
        assert any("ShardPuncture" in m for m in messages)

    def test_rl5_flags_signature_and_bare_generic(self):
        messages = [
            d.message
            for d in lint_file(str(FIXTURES / "rl5_positive.py"))
            if d.code == "RL5"
        ]
        assert any("unannotated parameter" in m for m in messages)
        assert any("no return annotation" in m for m in messages)
        assert any("bare `dict`" in m for m in messages)

    def test_parse_error_is_a_diagnostic_not_a_crash(self):
        diags = lint_file("broken.py", source="def f(:\n")
        assert [d.code for d in diags] == ["E999"]
