"""Shared fixtures: the whole-program view of the real ``src/repro``
tree is expensive to build, so callgraph/dataflow tests share one."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.callgraph import Program
from repro.analysis.runner import discover_files

SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"


@pytest.fixture(scope="session")
def real_program() -> Program:
    """Linked whole-program view of the installed ``repro`` tree."""
    return Program.from_paths(discover_files([str(SRC_REPRO)]))
