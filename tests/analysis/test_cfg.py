"""Unit and property tests for the control-flow graph engine.

Deterministic cases pin the structural contracts the flow rules lean
on — block splitting around compound headers, exception and ``finally``
routing, dominators over loops with ``break``/``continue``/``else`` —
and a liveness toy exercises :func:`solve_backward`.  The hypothesis
sweep generates random (valid) function bodies and checks the global
invariants: every statement lands in exactly one block, and every edge
connects blocks that exist.
"""

from __future__ import annotations

import ast

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.cfg import (
    EXC,
    FALSE,
    TRUE,
    build_cfg,
    can_raise,
    header_walk,
    solve_backward,
)


def cfg_of(source: str):
    """Build the CFG of the first function in *source*."""
    func = ast.parse(source).body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return func, build_cfg(func)


def edges_of(cfg) -> set[tuple[int, int, str]]:
    out: set[tuple[int, int, str]] = set()
    for bid in cfg.blocks:
        for dst, kind in cfg.successors(bid):
            out.add((bid, dst, kind))
    return out


class TestBlockSplitting:
    SOURCE = (
        "def sample(c: bool) -> int:\n"
        "    a = 1\n"
        "    if c:\n"
        "        b = 2\n"
        "    else:\n"
        "        b = 3\n"
        "    return b\n"
    )

    def test_header_anchors_with_preceding_straightline_code(self):
        func, cfg = cfg_of(self.SOURCE)
        assign, branch = func.body[0], func.body[1]
        assert cfg.block_of_stmt(assign) == cfg.block_of_stmt(branch)

    def test_branch_bodies_get_their_own_blocks(self):
        func, cfg = cfg_of(self.SOURCE)
        branch = func.body[1]
        assert isinstance(branch, ast.If)
        then_bid = cfg.block_of_stmt(branch.body[0])
        else_bid = cfg.block_of_stmt(branch.orelse[0])
        cond_bid = cfg.block_of_stmt(branch)
        assert len({cond_bid, then_bid, else_bid}) == 3
        kinds = {
            (dst, kind) for dst, kind in cfg.successors(cond_bid)
        }
        assert (then_bid, TRUE) in kinds
        assert (else_bid, FALSE) in kinds

    def test_branches_rejoin_before_the_return(self):
        func, cfg = cfg_of(self.SOURCE)
        branch, ret = func.body[1], func.body[2]
        assert isinstance(branch, ast.If)
        join_bid = cfg.block_of_stmt(ret)
        assert join_bid != cfg.block_of_stmt(branch)
        pred_bids = {p for p, _ in cfg.predecessors(join_bid)}
        assert cfg.block_of_stmt(branch.body[0]) in pred_bids
        assert cfg.block_of_stmt(branch.orelse[0]) in pred_bids

    def test_every_statement_maps_to_one_block(self):
        func, cfg = cfg_of(self.SOURCE)
        ids = [id(s) for s in cfg.statements()]
        assert len(ids) == len(set(ids))
        for stmt in ast.walk(func):
            if isinstance(stmt, ast.stmt) and stmt is not func:
                assert cfg.block_of_stmt(stmt) is not None


class TestExceptionEdges:
    def test_call_statement_reaches_raise_exit(self):
        func, cfg = cfg_of(
            "def f() -> int:\n"
            "    x = g()\n"
            "    return x\n"
        )
        bid = cfg.block_of_stmt(func.body[0])
        assert (bid, cfg.raise_exit, EXC) in edges_of(cfg)

    def test_typed_handler_keeps_the_outward_edge(self):
        func, cfg = cfg_of(
            "def f() -> int:\n"
            "    try:\n"
            "        x = g()\n"
            "    except OSError:\n"
            "        x = 0\n"
            "    return x\n"
        )
        try_stmt = func.body[0]
        assert isinstance(try_stmt, ast.Try)
        body_bid = cfg.block_of_stmt(try_stmt.body[0])
        handler_bid = cfg.block_of_stmt(try_stmt.handlers[0].body[0])
        edges = edges_of(cfg)
        assert (body_bid, handler_bid, EXC) in edges
        # ``except OSError`` does not catch everything: the exception
        # edge continues to the function's exceptional exit.
        assert (body_bid, cfg.raise_exit, EXC) in edges

    def test_catch_all_handler_stops_propagation(self):
        func, cfg = cfg_of(
            "def f() -> int:\n"
            "    try:\n"
            "        x = g()\n"
            "    except Exception:\n"
            "        x = 0\n"
            "    return x\n"
        )
        try_stmt = func.body[0]
        assert isinstance(try_stmt, ast.Try)
        body_bid = cfg.block_of_stmt(try_stmt.body[0])
        assert (body_bid, cfg.raise_exit, EXC) not in edges_of(cfg)

    def test_finally_sits_on_both_continuations(self):
        func, cfg = cfg_of(
            "def f(fh) -> int:\n"
            "    try:\n"
            "        x = use(fh)\n"
            "    finally:\n"
            "        fh.close()\n"
            "    return x\n"
        )
        try_stmt, ret = func.body[0], func.body[1]
        assert isinstance(try_stmt, ast.Try)
        body_bid = cfg.block_of_stmt(try_stmt.body[0])
        fin_bid = cfg.block_of_stmt(try_stmt.finalbody[0])
        edges = edges_of(cfg)
        # The protected body raises *into* the finally, not past it.
        assert (body_bid, fin_bid, EXC) in edges
        assert (body_bid, cfg.raise_exit, EXC) not in edges
        # The finally block routes each pending continuation onward:
        # normal fall-through to the join, the exception outward.
        succ_bids = {dst for dst, _ in cfg.successors(fin_bid)}
        assert cfg.block_of_stmt(ret) in succ_bids
        assert cfg.raise_exit in succ_bids


class TestDominatorsOnLoops:
    SOURCE = (
        "def loop(xs: list[int]) -> int:\n"
        "    total = 0\n"
        "    for x in xs:\n"
        "        if x < 0:\n"
        "            break\n"
        "        if x == 0:\n"
        "            continue\n"
        "        total = total + x\n"
        "    else:\n"
        "        total = -1\n"
        "    return total\n"
    )

    def test_back_edges_all_target_the_loop_header(self):
        func, cfg = cfg_of(self.SOURCE)
        loop = func.body[1]
        header = cfg.block_of_stmt(loop)
        backs = cfg.back_edges()
        # Two latches: the ``continue`` and the body fall-through.
        assert len(backs) == 2
        assert {dst for _src, dst in backs} == {header}

    def test_header_dominates_the_body_but_not_the_else(self):
        func, cfg = cfg_of(self.SOURCE)
        loop = func.body[1]
        assert isinstance(loop, ast.For)
        header = cfg.block_of_stmt(loop)
        body_last = cfg.block_of_stmt(loop.body[2])
        orelse = cfg.block_of_stmt(loop.orelse[0])
        ret = cfg.block_of_stmt(func.body[2])
        assert cfg.dominates(header, body_last)
        assert cfg.dominates(header, orelse)
        assert cfg.dominates(header, ret)
        # The break path skips the else, so the else does not
        # dominate the return.
        assert not cfg.dominates(orelse, ret)
        # And no body block dominates the else (the zero-iteration
        # path bypasses the body entirely).
        assert not cfg.dominates(body_last, orelse)

    def test_natural_loop_bodies_exclude_else_and_return(self):
        func, cfg = cfg_of(self.SOURCE)
        loop = func.body[1]
        assert isinstance(loop, ast.For)
        members = frozenset().union(
            *(body for _h, body in cfg.natural_loops())
        )
        assert cfg.block_of_stmt(loop.body[2]) in members
        assert cfg.block_of_stmt(loop.orelse[0]) not in members
        assert cfg.block_of_stmt(func.body[2]) not in members

    def test_loop_depth_counts_nesting(self):
        func, cfg = cfg_of(
            "def nest(n: int) -> int:\n"
            "    total = 0\n"
            "    for i in range(n):\n"
            "        for j in range(n):\n"
            "            total = total + j\n"
            "    return total\n"
        )
        outer = func.body[1]
        assert isinstance(outer, ast.For)
        inner = outer.body[0]
        assert isinstance(inner, ast.For)
        assert cfg.loop_depth(cfg.block_of_stmt(outer)) == 1
        assert cfg.loop_depth(cfg.block_of_stmt(inner)) == 2
        assert cfg.loop_depth(cfg.block_of_stmt(func.body[2])) == 0


class TestSolveBackwardLiveness:
    """A tiny liveness analysis over ``solve_backward``."""

    @staticmethod
    def _live_in(source: str):
        func, cfg = cfg_of(source)

        def uses_defs(stmt: ast.stmt) -> tuple[set[str], set[str]]:
            uses: set[str] = set()
            defs: set[str] = set()
            for node in header_walk(stmt):
                if isinstance(node, ast.Name):
                    if isinstance(node.ctx, ast.Load):
                        uses.add(node.id)
                    else:
                        defs.add(node.id)
            return uses, defs

        def transfer(bid, flow_meet, exc_meet):
            live = frozenset(flow_meet)
            for stmt in reversed(cfg.blocks[bid].statements):
                uses, defs = uses_defs(stmt)
                if can_raise(stmt):
                    live |= exc_meet
                live = (live - defs) | uses
            return live

        states = solve_backward(
            cfg,
            exit_state=frozenset(),
            transfer=transfer,
            meet=lambda a, b: a | b,
            top=frozenset(),
        )
        return func, cfg, states

    def test_straightline_kill_and_gen(self):
        func, cfg, states = self._live_in(
            "def f(a: int) -> int:\n"
            "    x = inp()\n"
            "    y = x + a\n"
            "    return y\n"
        )
        entry_live = states[cfg.block_of_stmt(func.body[0])]
        # ``x`` is defined before use; ``a`` flows in from outside.
        assert "a" in entry_live
        assert "x" not in entry_live
        assert "y" not in entry_live

    def test_branch_join_unions_liveness(self):
        func, cfg, states = self._live_in(
            "def f(a: int, b: int) -> int:\n"
            "    x = inp()\n"
            "    if a:\n"
            "        y = x + 1\n"
            "    else:\n"
            "        y = b\n"
            "    return y\n"
        )
        branch = func.body[1]
        assert isinstance(branch, ast.If)
        then_live = states[cfg.block_of_stmt(branch.body[0])]
        else_live = states[cfg.block_of_stmt(branch.orelse[0])]
        assert "x" in then_live and "x" not in else_live
        assert "b" in else_live
        entry_live = states[cfg.block_of_stmt(func.body[0])]
        # Before ``x = inp()`` the branch condition and both branch
        # inputs are live, ``x`` is not.
        assert {"a", "b"} <= entry_live
        assert "x" not in entry_live

    def test_loop_keeps_the_accumulator_live(self):
        func, cfg, states = self._live_in(
            "def f(xs: list[int]) -> int:\n"
            "    total = 0\n"
            "    for x in xs:\n"
            "        total = total + x\n"
            "    return total\n"
        )
        loop = func.body[1]
        assert isinstance(loop, ast.For)
        body_live = states[cfg.block_of_stmt(loop.body[0])]
        # The accumulator feeds both the next iteration and the
        # return, so it stays live throughout the body.
        assert "total" in body_live
        assert "x" in body_live


# ----------------------------------------------------------------------
# Property sweep: random bodies, global invariants
# ----------------------------------------------------------------------
def _simple_stmt() -> st.SearchStrategy[ast.stmt]:
    return st.sampled_from(["pass", "x = 1", "y = f(x)", "g(y)"]).map(
        lambda src: ast.parse(src).body[0]
    )


def _terminator(in_loop: bool) -> st.SearchStrategy[ast.stmt]:
    options = ["return 1", "raise ValueError(2)"]
    if in_loop:
        options += ["break", "continue"]
    return st.sampled_from(options).map(
        lambda src: ast.parse(src, mode="exec").body[0]
    )


def _body(depth: int, in_loop: bool) -> st.SearchStrategy[list[ast.stmt]]:
    stmt = _statement(depth, in_loop)
    head = st.lists(stmt, min_size=1, max_size=3)
    # Optionally end the body with a control-flow terminator.
    return st.tuples(
        head, st.none() | _terminator(in_loop)
    ).map(lambda pair: pair[0] + ([pair[1]] if pair[1] else []))


def _statement(
    depth: int, in_loop: bool
) -> st.SearchStrategy[ast.stmt]:
    if depth <= 0:
        return _simple_stmt()
    inner = _body(depth - 1, in_loop)
    loop_inner = _body(depth - 1, True)

    def make_if(pair):
        body, orelse = pair
        return ast.If(
            test=ast.Name(id="c", ctx=ast.Load()),
            body=body,
            orelse=orelse or [],
        )

    def make_while(pair):
        body, orelse = pair
        return ast.While(
            test=ast.Name(id="c", ctx=ast.Load()),
            body=body,
            orelse=orelse or [],
        )

    def make_for(pair):
        body, orelse = pair
        return ast.For(
            target=ast.Name(id="i", ctx=ast.Store()),
            iter=ast.Name(id="xs", ctx=ast.Load()),
            body=body,
            orelse=orelse or [],
        )

    def make_try(quad):
        body, caught, finalbody, handler_body = quad
        handlers = (
            []
            if caught == "none"
            else [
                ast.ExceptHandler(
                    type=None
                    if caught is None
                    else ast.Name(id=caught, ctx=ast.Load()),
                    name=None,
                    body=handler_body,
                )
            ]
        )
        if not handlers and not finalbody:
            # ``try`` needs at least one of except/finally to be
            # valid Python; fall back to a finally.
            finalbody = handler_body
        return ast.Try(
            body=body,
            handlers=handlers,
            orelse=[],
            finalbody=finalbody or [],
        )

    branch = st.tuples(inner, st.none() | inner).map(make_if)
    while_loop = st.tuples(loop_inner, st.none() | inner).map(make_while)
    for_loop = st.tuples(loop_inner, st.none() | inner).map(make_for)
    # "none" → no except clause at all; None → a bare ``except:``.
    handler_type = st.sampled_from(
        ["none", None, "OSError", "Exception"]
    )
    try_stmt = st.tuples(
        inner,
        handler_type,
        st.none() | inner,
        inner,
    ).map(make_try)
    return st.one_of(
        _simple_stmt(), branch, while_loop, for_loop, try_stmt
    )


def _function_from(body: list[ast.stmt]) -> ast.FunctionDef:
    template = ast.parse("def f():\n    pass").body[0]
    assert isinstance(template, ast.FunctionDef)
    template.body = body
    module = ast.Module(body=[template], type_ignores=[])
    ast.fix_missing_locations(module)
    # Validity check: the generated body must be real Python.
    compile(module, "<generated>", "exec")
    return template


def _all_stmts(body: list[ast.stmt]):
    for stmt in body:
        yield stmt
        for attr in ("body", "orelse", "finalbody"):
            yield from _all_stmts(getattr(stmt, attr, []) or [])
        for handler in getattr(stmt, "handlers", []) or []:
            yield from _all_stmts(handler.body)


@settings(
    max_examples=75,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(body=_body(depth=2, in_loop=False))
def test_property_every_statement_in_exactly_one_block(body):
    func = _function_from(body)
    cfg = build_cfg(func)
    expected = sorted(id(s) for s in _all_stmts(func.body))
    placed = sorted(id(s) for s in cfg.statements())
    assert placed == expected
    for stmt in _all_stmts(func.body):
        assert cfg.block_of_stmt(stmt) in cfg.blocks


@settings(
    max_examples=75,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(body=_body(depth=2, in_loop=False))
def test_property_edges_connect_existing_blocks(body):
    func = _function_from(body)
    cfg = build_cfg(func)
    for bid in cfg.blocks:
        for dst, kind in cfg.successors(bid):
            assert dst in cfg.blocks
            assert (bid, kind) in cfg.predecessors(dst)
        for src, kind in cfg.predecessors(bid):
            assert src in cfg.blocks
            assert (bid, kind) in cfg.successors(src)
    doms = cfg.dominators()
    for bid in cfg.reachable():
        assert cfg.entry in doms[bid]
        assert bid in doms[bid]
