"""Runner/CLI behavior: exit codes, selection, and the self-clean gate."""

import json
from pathlib import Path

import pytest

from repro.analysis import lint_paths
from repro.analysis.runner import discover_files, run

HERE = Path(__file__).parent
FIXTURES = HERE / "fixtures"
SRC = HERE.resolve().parents[1] / "src"
CODES = ("RL1", "RL2", "RL3", "RL4", "RL5")


class TestExitCodes:
    @pytest.mark.parametrize("code", CODES)
    def test_positive_fixture_exits_nonzero(self, code, capsys):
        rc = run([str(FIXTURES / f"{code.lower()}_positive.py")])
        capsys.readouterr()
        assert rc == 1

    def test_negative_fixtures_exit_zero(self, capsys):
        paths = [str(FIXTURES / f"{c.lower()}_negative.py") for c in CODES]
        rc = run(paths)
        capsys.readouterr()
        assert rc == 0

    def test_missing_path_is_usage_error(self, capsys):
        rc = run(["no/such/path"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "error" in captured.err

    def test_unknown_select_code_is_usage_error(self, capsys):
        rc = run(["--select", "RL99", str(FIXTURES)])
        captured = capsys.readouterr()
        assert rc == 2
        assert "RL99" in captured.err


class TestSelection:
    def test_select_restricts_rules(self):
        diags, summary = lint_paths(
            [str(FIXTURES / "rl2_positive.py")], select=["RL5"]
        )
        assert summary.rules_run == ["RL5"]
        assert diags == []  # the RL2 fixture is RL5-clean

    def test_ignore_drops_rules(self):
        diags, _ = lint_paths(
            [str(FIXTURES / "rl2_positive.py")], ignore=["RL2"]
        )
        assert all(d.code != "RL2" for d in diags)


class TestDiscovery:
    def test_discovery_is_sorted_and_deduplicated(self):
        twice = discover_files([str(FIXTURES), str(FIXTURES)])
        assert twice == sorted(twice)
        assert len(twice) == len(set(twice))

    def test_json_format_round_trips(self, capsys):
        rc = run(["--format", "json", str(FIXTURES / "rl4_positive.py")])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert doc["summary"].get("RL4", 0) >= 2


class TestSelfClean:
    def test_src_tree_is_self_clean(self):
        """The acceptance gate: the shipped tree has zero findings."""
        diags, summary = lint_paths([str(SRC)])
        assert summary.files_failed == 0
        assert diags == [], "\n".join(d.render() for d in diags)
