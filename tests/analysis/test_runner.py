"""Runner/CLI behavior: exit codes, selection, and the self-clean gate."""

import json
from pathlib import Path

import pytest

from repro.analysis import lint_paths
from repro.analysis.runner import discover_files, run

HERE = Path(__file__).parent
FIXTURES = HERE / "fixtures"
SRC = HERE.resolve().parents[1] / "src"
CODES = ("RL1", "RL2", "RL3", "RL4", "RL5")
PROGRAM_CODES = ("RL6", "RL7", "RL8")


class TestExitCodes:
    @pytest.mark.parametrize("code", CODES)
    def test_positive_fixture_exits_nonzero(self, code, capsys):
        rc = run(
            ["--no-cache", str(FIXTURES / f"{code.lower()}_positive.py")]
        )
        capsys.readouterr()
        assert rc == 1

    def test_negative_fixtures_exit_zero(self, capsys):
        paths = [str(FIXTURES / f"{c.lower()}_negative.py") for c in CODES]
        rc = run(["--no-cache", *paths])
        capsys.readouterr()
        assert rc == 0

    @pytest.mark.parametrize("code", PROGRAM_CODES)
    def test_program_positive_fixture_exits_nonzero(self, code, capsys):
        rc = run(
            [
                "--no-cache",
                "--interprocedural",
                str(FIXTURES / f"{code.lower()}_positive.py"),
            ]
        )
        capsys.readouterr()
        assert rc == 1

    @pytest.mark.parametrize("code", PROGRAM_CODES)
    def test_program_negative_fixture_exits_zero(self, code, capsys):
        rc = run(
            [
                "--no-cache",
                "--interprocedural",
                str(FIXTURES / f"{code.lower()}_negative.py"),
            ]
        )
        capsys.readouterr()
        assert rc == 0

    def test_missing_path_is_usage_error(self, capsys):
        rc = run(["--no-cache", "no/such/path"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "error" in captured.err

    def test_unknown_select_code_is_usage_error(self, capsys):
        rc = run(["--no-cache", "--select", "RL99", str(FIXTURES)])
        captured = capsys.readouterr()
        assert rc == 2
        assert "RL99" in captured.err


class TestSelection:
    def test_select_restricts_rules(self):
        diags, summary = lint_paths(
            [str(FIXTURES / "rl2_positive.py")], select=["RL5"]
        )
        assert summary.rules_run == ["RL5"]
        assert diags == []  # the RL2 fixture is RL5-clean

    def test_ignore_drops_rules(self):
        diags, _ = lint_paths(
            [str(FIXTURES / "rl2_positive.py")], ignore=["RL2"]
        )
        assert all(d.code != "RL2" for d in diags)

    def test_select_a_program_rule_is_valid(self):
        """``--select RL7`` names a known (program) code: not a usage
        error, and without --interprocedural it simply runs no rule."""
        diags, summary = lint_paths(
            [str(FIXTURES / "rl7_positive.py")], select=["RL7"]
        )
        assert summary.rules_run == []
        assert diags == []

    def test_interprocedural_adds_program_rules(self):
        _, summary = lint_paths(
            [str(FIXTURES / "rl1_negative.py")], interprocedural=True
        )
        assert set(PROGRAM_CODES) <= set(summary.rules_run)


class TestCacheFlags:
    def test_cache_file_flag_writes_cache(self, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        rc = run(
            [
                "--cache-file",
                str(cache),
                str(FIXTURES / "rl1_negative.py"),
            ]
        )
        capsys.readouterr()
        assert rc == 0
        assert cache.exists()

    def test_no_cache_skips_the_file(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "ok.py").write_text("def f() -> int:\n    return 1\n")
        rc = run(["--no-cache", "ok.py"])
        capsys.readouterr()
        assert rc == 0
        assert not (tmp_path / ".repro-lint-cache.json").exists()

    def test_default_cache_lands_in_cwd(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "ok.py").write_text("def f() -> int:\n    return 1\n")
        rc = run(["ok.py"])
        capsys.readouterr()
        assert rc == 0
        assert (tmp_path / ".repro-lint-cache.json").exists()


class TestDiscovery:
    def test_discovery_is_sorted_and_deduplicated(self):
        twice = discover_files([str(FIXTURES), str(FIXTURES)])
        assert twice == sorted(twice)
        assert len(twice) == len(set(twice))

    def test_json_format_round_trips(self, capsys):
        rc = run(
            [
                "--no-cache",
                "--format",
                "json",
                str(FIXTURES / "rl4_positive.py"),
            ]
        )
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert doc["summary"].get("RL4", 0) >= 2

    def test_sarif_format_round_trips(self, capsys):
        rc = run(
            [
                "--no-cache",
                "--format",
                "sarif",
                str(FIXTURES / "rl4_positive.py"),
            ]
        )
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"]


class TestSelfClean:
    def test_src_tree_is_self_clean(self):
        """The acceptance gate: the shipped tree has zero findings."""
        diags, summary = lint_paths([str(SRC)])
        assert summary.files_failed == 0
        assert diags == [], "\n".join(d.render() for d in diags)

    def test_src_tree_is_interprocedurally_self_clean(self):
        """The PR 5 acceptance gate: RL6–RL8 included, still zero."""
        diags, summary = lint_paths([str(SRC)], interprocedural=True)
        assert set(PROGRAM_CODES) <= set(summary.rules_run)
        assert diags == [], "\n".join(d.render() for d in diags)
