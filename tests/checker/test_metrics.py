"""Unit tests for displacement and HPWL metrics."""

import pytest

from repro.checker import displacement_stats, hpwl_stats, make_report
from repro.db import Net, Pin
from tests.conftest import add_placed, add_unplaced, make_design


class TestDisplacement:
    def test_zero_for_unmoved(self):
        d = make_design()
        add_placed(d, 2, 1, 3, 1)  # gp == position
        stats = displacement_stats(d)
        assert stats.total_um == 0
        assert stats.avg_sites == 0
        assert stats.num_cells == 1

    def test_manhattan_mixed_axes(self):
        d = make_design()
        c = add_placed(d, 2, 1, 5, 2)
        c.gp_x, c.gp_y = 3.0, 1.0  # moved +2 sites x, +1 row y
        fp = d.floorplan
        stats = displacement_stats(d)
        expected_um = 2 * fp.site_width_um + 1 * fp.site_height_um
        assert stats.total_um == pytest.approx(expected_um)
        assert stats.avg_sites == pytest.approx(expected_um / fp.site_width_um)

    def test_average_over_placed_movables_only(self):
        d = make_design()
        c1 = add_placed(d, 2, 1, 5, 2)
        c1.gp_x = 4.0
        add_unplaced(d, 2, 1, 0, 0)  # ignored
        add_placed(d, 2, 1, 9, 3, fixed=True)  # ignored
        stats = displacement_stats(d)
        assert stats.num_cells == 1

    def test_max_tracks_worst_cell(self):
        d = make_design()
        c1 = add_placed(d, 2, 1, 5, 2)
        c1.gp_x = 4.0
        c2 = add_placed(d, 2, 1, 20, 2)
        c2.gp_x = 10.0
        stats = displacement_stats(d)
        assert stats.max_um == pytest.approx(10 * d.floorplan.site_width_um)


class TestHpwl:
    def test_delta_pct(self):
        d = make_design()
        a = add_placed(d, 2, 1, 0, 0)
        b = add_placed(d, 2, 1, 10, 0)
        a.gp_x, b.gp_x = 0.0, 5.0  # GP net was half as long
        d.netlist.add(Net("n", (Pin(a), Pin(b))))
        stats = hpwl_stats(d)
        assert stats.legal_um > stats.gp_um
        assert stats.delta_pct == pytest.approx(100.0)

    def test_zero_gp_hpwl_guard(self):
        d = make_design()
        stats = hpwl_stats(d)
        assert stats.delta_pct == 0.0


class TestReport:
    def test_report_row_format(self):
        d = make_design(name="demo")
        add_placed(d, 2, 1, 0, 0)
        report = make_report(d, runtime_s=1.5)
        row = report.row()
        assert "demo" in row
        assert "t=" in row
        assert report.runtime_s == 1.5
