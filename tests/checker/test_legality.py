"""Unit tests for the legality checker — each constraint violated in turn."""

from repro.checker import ViolationKind, assert_legal, verify_placement
from repro.db import Rail
from repro.geometry import Rect
from tests.conftest import add_placed, add_unplaced, make_design

import pytest


def kinds(violations):
    return {v.kind for v in violations}


class TestCleanPlacements:
    def test_empty_design_is_legal(self):
        d = make_design()
        assert verify_placement(d) == []

    def test_legal_mixed_heights(self):
        d = make_design()
        add_placed(d, 3, 1, 0, 0)
        add_placed(d, 2, 2, 3, 0)
        add_placed(d, 2, 3, 5, 1)
        assert verify_placement(d) == []

    def test_assert_legal_passes(self):
        d = make_design()
        add_placed(d, 2, 1, 0, 0)
        assert_legal(d)


class TestEachConstraint:
    def test_unplaced_cells_flagged(self):
        d = make_design()
        add_unplaced(d, 2, 1, 0, 0)
        violations = verify_placement(d)
        assert kinds(violations) == {ViolationKind.UNPLACED}
        assert verify_placement(d, require_all_placed=False) == []

    def test_out_of_bounds(self):
        d = make_design(num_rows=4)
        c = add_placed(d, 2, 2, 0, 2)
        c.y = 3  # manual corruption: top row now spills out
        violations = verify_placement(d)
        assert ViolationKind.OUT_OF_BOUNDS in kinds(violations)

    def test_not_in_segment(self):
        d = make_design(num_rows=2, row_width=20, blockages=[Rect(8, 0, 4, 1)])
        c = add_placed(d, 2, 1, 0, 0)
        c.x = 9  # manual corruption: inside the blockage
        violations = verify_placement(d, check_registration=False)
        assert ViolationKind.NOT_IN_SEGMENT in kinds(violations)

    def test_rail_misalignment(self):
        d = make_design(first_rail=Rail.GND)
        c = add_placed(d, 2, 2, 0, 0, rail=Rail.GND)
        d.unplace(c)
        d.place(c, 0, 1, power_aligned=False)  # wrong-parity row
        violations = verify_placement(d)
        assert ViolationKind.RAIL_MISALIGNED in kinds(violations)
        # ...and the relaxed checker accepts it (the paper's experiment 2).
        assert verify_placement(d, power_aligned=False) == []

    def test_overlap_same_row(self):
        d = make_design()
        a = add_placed(d, 4, 1, 0, 0)
        b = add_placed(d, 4, 1, 10, 0)
        b.x = 2  # manual corruption
        violations = verify_placement(d, check_registration=False)
        assert ViolationKind.OVERLAP in kinds(violations)
        v = next(v for v in violations if v.kind is ViolationKind.OVERLAP)
        assert set(v.cells) == {a.name, b.name}

    def test_overlap_multi_row_reported_once(self):
        d = make_design()
        a = add_placed(d, 3, 3, 0, 0)
        b = add_placed(d, 3, 3, 10, 0)
        b.x = 1  # overlaps a in three rows
        violations = [
            v
            for v in verify_placement(d, check_registration=False)
            if v.kind is ViolationKind.OVERLAP
        ]
        assert len(violations) == 1

    def test_registration_invariant(self):
        d = make_design()
        c = add_placed(d, 2, 2, 0, 0)
        d.floorplan.segments_in_row(1)[0].remove_cell(c)  # corrupt DB
        violations = verify_placement(d)
        assert ViolationKind.BAD_REGISTRATION in kinds(violations)

    def test_unsorted_segment_list_flagged(self):
        d = make_design()
        a = add_placed(d, 2, 1, 0, 0)
        b = add_placed(d, 2, 1, 6, 0)
        seg = d.floorplan.segments_in_row(0)[0]
        seg.cells.reverse()  # corrupt order
        violations = verify_placement(d)
        assert ViolationKind.BAD_REGISTRATION in kinds(violations)

    def test_assert_legal_raises_with_message(self):
        d = make_design()
        add_unplaced(d, 2, 1, 0, 0, name="ghost")
        with pytest.raises(AssertionError, match="ghost"):
            assert_legal(d)


class TestFixedCells:
    def test_unplaced_fixed_cells_not_flagged(self):
        d = make_design()
        master = d.library.get_or_create(2, 1)
        d.add_cell(master, fixed=True)
        assert verify_placement(d) == []

    def test_placed_fixed_cells_checked_for_overlap(self):
        d = make_design()
        add_placed(d, 4, 1, 0, 0, fixed=True)
        b = add_placed(d, 4, 1, 10, 0)
        b.x = 2
        violations = verify_placement(d, check_registration=False)
        assert ViolationKind.OVERLAP in kinds(violations)
