"""Unit tests for the named ISPD2015-style benchmark suite."""

import pytest

from repro.bench import (
    ISPD2015_BENCHMARKS,
    PAPER_TABLE1,
    benchmark_names,
    make_benchmark,
)


class TestSuiteDefinition:
    def test_twenty_benchmarks(self):
        assert len(benchmark_names()) == 20

    def test_names_match_paper_table(self):
        assert set(benchmark_names()) == set(PAPER_TABLE1)

    def test_specs_mirror_paper_statistics(self):
        for name, spec in ISPD2015_BENCHMARKS.items():
            row = PAPER_TABLE1[name]
            assert spec.num_single == row.num_single
            assert spec.num_double == row.num_double
            assert spec.density == row.density

    def test_density_range_covered(self):
        densities = [s.density for s in ISPD2015_BENCHMARKS.values()]
        assert min(densities) <= 0.15
        assert max(densities) >= 0.9


class TestGeneration:
    def test_scaled_cell_count(self):
        spec = ISPD2015_BENCHMARKS["fft_1"]
        d = make_benchmark("fft_1", scale=0.01)
        expected = max(150, round((spec.num_single + spec.num_double) * 0.01))
        assert len(d.cells) == expected

    def test_double_fraction_preserved(self):
        d = make_benchmark("pci_bridge32_a", scale=0.05)
        spec = ISPD2015_BENCHMARKS["pci_bridge32_a"]
        frac = spec.num_double / (spec.num_single + spec.num_double)
        got = sum(1 for c in d.cells if c.height == 2) / len(d.cells)
        assert got == pytest.approx(frac, abs=0.02)

    def test_density_preserved(self):
        d = make_benchmark("des_perf_1", scale=0.01)
        assert d.density() == pytest.approx(0.91, rel=0.1)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_benchmark("nonexistent")

    def test_stable_seed_reproducible(self):
        a = make_benchmark("fft_a", scale=0.01)
        b = make_benchmark("fft_a", scale=0.01)
        assert [(c.gp_x, c.gp_y) for c in a.cells] == [
            (c.gp_x, c.gp_y) for c in b.cells
        ]


class TestPaperData:
    def test_all_rows_have_both_sides(self):
        for row in PAPER_TABLE1.values():
            assert row.aligned.ours_runtime_s > 0
            assert row.relaxed.ours_runtime_s > 0

    def test_ilp_slower_than_ours_everywhere(self):
        # The shape claim behind "185x": ILP runtime dominates on every
        # benchmark in the paper's table.
        for row in PAPER_TABLE1.values():
            assert row.aligned.ilp_runtime_s > row.aligned.ours_runtime_s

    def test_relaxed_displacement_lower_in_paper(self):
        # Section 6: relaxing power alignment lowers displacement for
        # both methods on every benchmark.
        for row in PAPER_TABLE1.values():
            assert row.relaxed.ours_disp_sites <= row.aligned.ours_disp_sites
            assert row.relaxed.ilp_disp_sites <= row.aligned.ilp_disp_sites
