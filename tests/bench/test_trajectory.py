"""The perf-trajectory writer behind the BENCH_*.json files."""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", ".."))

from benchmarks.trajectory import (  # noqa: E402
    MAX_RUNS,
    SCHEMA,
    percentiles,
    record_run,
    trajectory_path,
)


class TestRecordRun:
    def test_creates_and_appends(self, tmp_path):
        directory = str(tmp_path)
        path = record_run(
            "unit", {"wall_s": 1.0}, {"n": 3}, directory=directory
        )
        assert path == trajectory_path("unit", directory)
        record_run("unit", {"wall_s": 2.0}, directory=directory)
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        assert data["kind"] == "unit"
        assert data["schema"] == SCHEMA
        assert [r["metrics"]["wall_s"] for r in data["runs"]] == [1.0, 2.0]
        assert data["runs"][0]["params"] == {"n": 3}
        assert data["runs"][0]["rev"]
        assert "T" in data["runs"][0]["recorded"]

    def test_bounded_history(self, tmp_path):
        directory = str(tmp_path)
        for i in range(MAX_RUNS + 5):
            record_run("unit", {"i": i}, directory=directory)
        with open(
            trajectory_path("unit", directory), encoding="utf-8"
        ) as handle:
            data = json.load(handle)
        assert len(data["runs"]) == MAX_RUNS
        assert data["runs"][-1]["metrics"]["i"] == MAX_RUNS + 4
        assert data["runs"][0]["metrics"]["i"] == 5

    def test_torn_file_restarts_trajectory(self, tmp_path):
        directory = str(tmp_path)
        path = trajectory_path("unit", directory)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{ torn")
        record_run("unit", {"ok": 1}, directory=directory)
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        assert len(data["runs"]) == 1


class TestPercentiles:
    def test_basic(self):
        samples = [float(i) for i in range(1, 101)]
        stats = percentiles(samples)
        assert stats["p50"] == 50.0
        assert stats["p90"] == 90.0
        assert stats["p99"] == 99.0

    def test_empty_and_single(self):
        assert percentiles([]) == {"p50": 0.0, "p90": 0.0, "p99": 0.0}
        assert percentiles([4.2])["p99"] == 4.2
