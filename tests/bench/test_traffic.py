"""Derived-seed plumbing and the synthetic traffic trace."""

import random

import pytest

from repro.bench import (
    TrafficConfig,
    TrafficRequest,
    derived_rng,
    generate_traffic,
)


class TestDerivedRng:
    def test_deterministic(self):
        a = derived_rng(7, "traffic", 3).random()
        b = derived_rng(7, "traffic", 3).random()
        assert a == b

    def test_streams_are_independent(self):
        streams = {
            derived_rng(7, "traffic", 0).random(),
            derived_rng(7, "traffic", 1).random(),
            derived_rng(7, "arrival", 0).random(),
            derived_rng(8, "traffic", 0).random(),
        }
        assert len(streams) == 4

    def test_returns_plain_random_instance(self):
        assert isinstance(derived_rng(0, "x"), random.Random)

    def test_nearby_base_seeds_do_not_collide(self):
        # The classic offset-seed bug: Random(seed+i) streams overlap
        # across nearby base seeds. Hash derivation must not.
        a = [derived_rng(100, "traffic", i).random() for i in range(8)]
        b = [derived_rng(101, "traffic", i).random() for i in range(8)]
        assert not set(a) & set(b)


class TestGenerateTraffic:
    def test_trace_is_a_pure_function_of_the_seed(self):
        config = TrafficConfig(seed=5, num_requests=40)
        assert generate_traffic(config) == generate_traffic(config)
        other = generate_traffic(TrafficConfig(seed=6, num_requests=40))
        assert generate_traffic(config) != other

    def test_trace_shape(self):
        config = TrafficConfig(
            seed=1,
            num_requests=60,
            sessions=("a", "b"),
            cells_per_session=50,
            nets_per_session=40,
        )
        trace = generate_traffic(config)
        assert len(trace) == 60
        assert [t.index for t in trace] == list(range(60))
        kinds = {t.params["kind"] for t in trace}
        assert "move" in kinds and len(kinds) >= 3
        assert {t.session for t in trace} == {"a", "b"}
        for request in trace:
            assert isinstance(request, TrafficRequest)
            assert request.op == "eco"

    def test_cell_and_net_names_stay_in_bounds(self):
        config = TrafficConfig(
            seed=2,
            num_requests=80,
            cells_per_session=10,
            nets_per_session=5,
        )
        for request in generate_traffic(config):
            for key in ("cell", "other"):
                name = request.params.get(key)
                if name is not None:
                    assert 0 <= int(str(name)[1:]) < 10
            net = request.params.get("net")
            if net is not None:
                assert 0 <= int(str(net)[1:]) < 5

    def test_no_buffer_traffic_without_nets(self):
        config = TrafficConfig(
            seed=3, num_requests=80, nets_per_session=0
        )
        kinds = {
            t.params["kind"] for t in generate_traffic(config)
        }
        assert "buffer" not in kinds

    def test_swap_picks_distinct_cells(self):
        config = TrafficConfig(
            seed=4, num_requests=120, cells_per_session=3
        )
        for request in generate_traffic(config):
            if request.params["kind"] == "swap":
                assert request.params["cell"] != request.params["other"]

    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficConfig(sessions=())
        with pytest.raises(ValueError):
            TrafficConfig(num_requests=-1)
        with pytest.raises(ValueError):
            TrafficConfig(cells_per_session=1)
        with pytest.raises(ValueError):
            generate_traffic(
                TrafficConfig(mix=(("move", 0.0),))
            )
