"""Unit tests for the synthetic design generator."""

import pytest

from repro.bench import GeneratorConfig, generate_design
from repro.checker import verify_placement
from repro.db import Rail


class TestConfigValidation:
    def test_bad_density(self):
        with pytest.raises(ValueError):
            GeneratorConfig(target_density=0.0)
        with pytest.raises(ValueError):
            GeneratorConfig(target_density=1.0)

    def test_bad_fractions(self):
        with pytest.raises(ValueError):
            GeneratorConfig(double_row_fraction=0.8, triple_row_fraction=0.3)

    def test_mismatched_weights(self):
        with pytest.raises(ValueError):
            GeneratorConfig(single_widths=(2, 3), single_width_weights=(1,))


class TestGeneratedStructure:
    def test_cell_count(self):
        d = generate_design(GeneratorConfig(num_cells=300, seed=1))
        assert len(d.cells) == 300

    def test_double_row_fraction(self):
        d = generate_design(
            GeneratorConfig(num_cells=400, double_row_fraction=0.25, seed=2)
        )
        doubles = sum(1 for c in d.cells if c.height == 2)
        assert doubles == 100
        # Paper protocol: doubles have half width — narrower on average.
        singles_w = [c.width for c in d.cells if c.height == 1]
        doubles_w = [c.width for c in d.cells if c.height == 2]
        assert sum(doubles_w) / len(doubles_w) < sum(singles_w) / len(singles_w)

    def test_triple_row_cells(self):
        d = generate_design(
            GeneratorConfig(num_cells=200, triple_row_fraction=0.1, seed=3)
        )
        assert sum(1 for c in d.cells if c.height == 3) == 20

    def test_density_close_to_target(self):
        for target in (0.3, 0.6, 0.85):
            d = generate_design(
                GeneratorConfig(num_cells=500, target_density=target, seed=4)
            )
            assert d.density() == pytest.approx(target, rel=0.15)

    def test_all_cells_unplaced_with_gp(self):
        d = generate_design(GeneratorConfig(num_cells=100, seed=5))
        fp = d.floorplan
        for c in d.cells:
            assert not c.is_placed
            assert 0 <= c.gp_x <= fp.row_width - c.width
            assert 0 <= c.gp_y <= fp.num_rows - c.height

    def test_gp_has_overlaps(self):
        # The perturbed GP must actually overlap somewhere — otherwise
        # legalization would be trivial.
        d = generate_design(GeneratorConfig(num_cells=300, target_density=0.6, seed=6))
        boxes = [c.gp_rect for c in d.cells]
        boxes.sort(key=lambda r: r.x)
        overlaps = 0
        for i, r in enumerate(boxes):
            for other in boxes[i + 1 : i + 30]:
                if other.x >= r.x1:
                    break
                if r.overlaps(other):
                    overlaps += 1
        assert overlaps > 0

    def test_netlist_generated(self):
        cfg = GeneratorConfig(num_cells=200, nets_per_cell=1.5, seed=7)
        d = generate_design(cfg)
        assert len(d.netlist) == 300
        for net in d.netlist:
            assert 2 <= len(net.pins) <= cfg.max_net_degree

    def test_rails_used_by_double_cells(self):
        d = generate_design(
            GeneratorConfig(num_cells=300, double_row_fraction=0.3, seed=8)
        )
        rails = {
            c.master.bottom_rail for c in d.cells if c.height == 2
        }
        assert rails == {Rail.VDD, Rail.GND}

    def test_determinism(self):
        a = generate_design(GeneratorConfig(num_cells=150, seed=9))
        b = generate_design(GeneratorConfig(num_cells=150, seed=9))
        assert [(c.name, c.gp_x, c.gp_y) for c in a.cells] == [
            (c.name, c.gp_x, c.gp_y) for c in b.cells
        ]

    def test_different_seeds_differ(self):
        a = generate_design(GeneratorConfig(num_cells=150, seed=10))
        b = generate_design(GeneratorConfig(num_cells=150, seed=11))
        assert [(c.gp_x, c.gp_y) for c in a.cells] != [
            (c.gp_x, c.gp_y) for c in b.cells
        ]

    def test_blockages(self):
        d = generate_design(
            GeneratorConfig(num_cells=300, blockage_fraction=0.15, seed=12)
        )
        assert len(d.floorplan.blockages) > 0
        # Blockages must not strand GP positions outside segments... the
        # legalizer handles that, but density must still be sane.
        assert d.density() < 1.0

    def test_seed_placement_was_legal(self):
        # Re-derive: placing every cell at its rounded seed position can
        # be checked indirectly — the design legalizes with zero retries
        # at moderate density.
        from repro.core import LegalizerConfig, legalize

        d = generate_design(GeneratorConfig(num_cells=200, target_density=0.5, seed=13))
        result = legalize(d, LegalizerConfig(seed=13))
        assert result.rounds == 0
        assert verify_placement(d) == []
