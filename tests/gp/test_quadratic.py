"""Unit tests for the quadratic global placer."""

import random

import pytest

from repro.bench import GeneratorConfig, generate_design
from repro.checker import assert_legal, displacement_stats
from repro.core import LegalizerConfig, legalize
from repro.gp import GlobalPlacerConfig, global_place


def fresh_design(seed=5, n=400, **kwargs):
    d = generate_design(
        GeneratorConfig(num_cells=n, target_density=0.45, seed=seed, **kwargs)
    )
    for c in d.cells:  # wipe the generator's synthetic GP
        c.gp_x = c.gp_y = 0.0
    return d


class TestBasicProperties:
    def test_positions_inside_die(self):
        d = fresh_design()
        global_place(d, GlobalPlacerConfig(seed=1))
        fp = d.floorplan
        for c in d.cells:
            assert 0 <= c.gp_x <= fp.row_width - c.width
            assert 0 <= c.gp_y <= fp.num_rows - c.height

    def test_deterministic(self):
        a = fresh_design()
        b = fresh_design()
        global_place(a, GlobalPlacerConfig(seed=2))
        global_place(b, GlobalPlacerConfig(seed=2))
        assert [(c.gp_x, c.gp_y) for c in a.cells] == [
            (c.gp_x, c.gp_y) for c in b.cells
        ]

    def test_spreading_covers_the_die(self):
        d = fresh_design()
        global_place(d, GlobalPlacerConfig(seed=3))
        fp = d.floorplan
        xs = [c.gp_x for c in d.cells]
        ys = [c.gp_y for c in d.cells]
        assert max(xs) - min(xs) > 0.6 * fp.row_width
        assert max(ys) - min(ys) > 0.6 * fp.num_rows
        # Quadrant occupancy: every quadrant hosts a fair share.
        for qx in (0, 1):
            for qy in (0, 1):
                count = sum(
                    1
                    for c in d.cells
                    if (c.gp_x >= fp.row_width / 2) == bool(qx)
                    and (c.gp_y >= fp.num_rows / 2) == bool(qy)
                )
                assert count > len(d.cells) * 0.1

    def test_netlist_locality_beats_random(self):
        d = fresh_design()
        global_place(d, GlobalPlacerConfig(seed=4))
        hpwl_gp = d.hpwl_um(use_gp=True)
        rng = random.Random(0)
        d2 = fresh_design()
        fp = d2.floorplan
        for c in d2.cells:
            c.gp_x = rng.uniform(0, fp.row_width - c.width)
            c.gp_y = rng.uniform(0, fp.num_rows - c.height)
        hpwl_rand = d2.hpwl_um(use_gp=True)
        assert hpwl_gp < 0.75 * hpwl_rand

    def test_empty_design(self):
        from repro.db import Design, Floorplan, Library

        d = Design(Floorplan(num_rows=4, row_width=10), Library())
        global_place(d)  # must not crash


class TestFullFlow:
    def test_gp_then_legalize(self):
        d = fresh_design(seed=6)
        global_place(d, GlobalPlacerConfig(seed=6))
        result = legalize(d, LegalizerConfig(seed=6))
        assert result.placed == len(d.cells)
        assert_legal(d)
        # A well-spread GP legalizes with small displacement.
        assert displacement_stats(d).avg_sites < 8

    def test_legal_hpwl_close_to_gp_hpwl(self):
        d = fresh_design(seed=7)
        global_place(d, GlobalPlacerConfig(seed=7))
        hpwl_gp = d.hpwl_um(use_gp=True)
        legalize(d, LegalizerConfig(seed=7))
        # Legalization perturbs a good GP only slightly (the paper's
        # "<0.5% average" claim — generous band for a small instance).
        assert abs(d.hpwl_um() - hpwl_gp) / hpwl_gp < 0.10

    def test_fenced_cells_spread_into_their_fences(self):
        d = fresh_design(seed=8, fence_count=1, fence_area_fraction=0.2)
        global_place(d, GlobalPlacerConfig(seed=8))
        fence = d.floorplan.fences[0]
        x_lo = min(r.x for r in fence.rects)
        x_hi = max(r.x1 for r in fence.rects)
        y_lo = min(r.y for r in fence.rects)
        y_hi = max(r.y1 for r in fence.rects)
        for c in d.cells:
            if c.region is not None:
                assert x_lo - 1 <= c.gp_x <= x_hi
                assert y_lo - 1 <= c.gp_y <= y_hi
        # ... and the whole flow still legalizes.
        legalize(d, LegalizerConfig(seed=8))
        assert_legal(d)

    def test_fixed_cells_untouched_and_attract(self):
        from repro.db import Net, Pin

        d = fresh_design(seed=9, n=60)
        anchor = d.add_cell(d.library.get_or_create(2, 1), name="pad",
                            fixed=True)
        d.place(anchor, 2, 1)
        friend = d.cells[0]
        d.netlist.add(
            Net("tie", (Pin(anchor, 0, 0), Pin(friend, 0, 0)))
        )
        global_place(d, GlobalPlacerConfig(seed=9))
        assert (anchor.x, anchor.y) == (2, 1)
