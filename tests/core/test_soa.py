"""Unit tests for the struct-of-arrays mirror and vectorized kernels.

The object kernel is the differential oracle throughout: every SoA
result must be *bit-identical* (same digests, same floats, same error
messages), not merely equivalent.
"""

import random

import numpy as np
import pytest

from repro.core import (
    EvaluationMode,
    Kernel,
    Legalizer,
    LegalizerConfig,
    MultiRowLocalLegalizer,
    build_insertion_intervals,
    compute_bounds,
    enumerate_insertion_points,
    extract_local_region,
)
from repro.core.soa import (
    UNPLACED,
    RegionSoA,
    attach_soa,
    soa_compute_bounds,
    soa_enumerate_insertion_points,
)
from repro.db import Rail
from repro.db.journal import Transaction
from repro.geometry import Rect
from repro.testing.faults import design_state_digest
from tests.conftest import (
    add_placed,
    add_unplaced,
    make_design,
    random_legal_design,
)


def assert_mirror_matches(design):
    """The mirror agrees with the object model on every cell."""
    mirror = design.soa
    mirror.ensure()
    for c in design.cells:
        if c.is_placed:
            assert int(mirror.x[c.id]) == c.x, c.name
            assert int(mirror.y[c.id]) == c.y, c.name
        else:
            assert int(mirror.x[c.id]) == UNPLACED, c.name
        assert int(mirror.w[c.id]) == c.width
        assert int(mirror.h[c.id]) == c.height


class TestMirrorSync:
    def test_attach_is_idempotent(self):
        d = make_design()
        m1 = attach_soa(d)
        m2 = attach_soa(d)
        assert m1 is m2
        assert d.soa is m1

    def test_design_primitives_keep_mirror_current(self):
        d = make_design(num_rows=4, row_width=20)
        mirror = attach_soa(d)
        mirror.ensure()
        a = add_placed(d, 3, 1, 2, 0)
        b = add_placed(d, 2, 2, 5, 0, rail=Rail.GND)
        assert_mirror_matches(d)
        d.shift_x(a, 7)
        assert int(mirror.x[a.id]) == 7
        d.unplace(b)
        assert int(mirror.x[b.id]) == UNPLACED
        d.place(b, 10, 2)
        assert int(mirror.x[b.id]) == 10 and int(mirror.y[b.id]) == 2
        assert_mirror_matches(d)

    def test_transaction_rollback_resyncs_mirror(self):
        d = make_design(num_rows=2, row_width=20)
        a = add_placed(d, 3, 1, 2, 0)
        mirror = attach_soa(d)
        mirror.ensure()
        with pytest.raises(RuntimeError):
            with Transaction(d):
                d.shift_x(a, 9)
                d.unplace(a)
                c = d.add_cell(d.library.get_or_create(2, 1, None))
                d.place(c, 0, 1)
                assert int(mirror.x[a.id]) == UNPLACED
                raise RuntimeError("abort")
        # Rolled back: a restored at x=2, c forgotten.
        assert a.x == 2
        assert int(mirror.x[a.id]) == 2
        assert int(mirror.w[c.id]) == 0  # forgotten slot
        assert_mirror_matches(d)

    def test_bulk_rewrites_invalidate_and_lazily_rebuild(self):
        d = make_design(num_rows=2, row_width=20)
        a = add_placed(d, 3, 1, 2, 0)
        add_placed(d, 2, 1, 8, 1)
        mirror = attach_soa(d)
        mirror.ensure()
        snap = d.snapshot_positions()
        d.reset_placement()
        assert_mirror_matches(d)  # rebuilt lazily: everything unplaced
        d.restore_positions(snap)
        assert_mirror_matches(d)
        assert int(mirror.x[a.id]) == 2

    def test_sync_while_stale_is_deferred_to_rebuild(self):
        d = make_design(num_rows=2, row_width=20)
        a = add_placed(d, 3, 1, 2, 0)
        mirror = attach_soa(d)
        mirror.invalidate()
        d.shift_x(a, 5)  # sync_cell is a no-op while stale
        assert_mirror_matches(d)  # ensure() rebuilds with x=5

    def test_segment_csr_matches_segment_lists(self):
        rng = random.Random(7)
        d = random_legal_design(rng, num_rows=6, row_width=24, n_cells=18)
        mirror = attach_soa(d)
        indptr, cell_ids = mirror.segment_csr()
        segments = d.floorplan.segments
        assert len(indptr) == len(segments) + 1
        for i, seg in enumerate(segments):
            got = cell_ids[indptr[i] : indptr[i + 1]].tolist()
            assert got == [c.id for c in seg.cells]
        # Cached until the next mutation...
        assert mirror.segment_csr()[1] is cell_ids
        # ...and rebuilt after one.
        movable = next(c for c in d.cells if c.is_placed)
        d.unplace(movable)
        indptr2, cell_ids2 = mirror.segment_csr()
        assert movable.id not in cell_ids2.tolist()


def regions_for(design, rects):
    return [extract_local_region(design, r) for r in rects]


class TestBoundsParity:
    def test_random_regions_match_object_kernel(self):
        rng = random.Random(21)
        for trial in range(30):
            d = random_legal_design(
                rng, num_rows=8, row_width=30, n_cells=18, max_height=3
            )
            region = extract_local_region(
                d, Rect(rng.randint(0, 10), rng.randint(0, 4), 20, 6)
            )
            expected = compute_bounds(region)
            got = soa_compute_bounds(RegionSoA.from_region(region))
            assert got.left == expected.left, trial
            assert got.right == expected.right, trial

    def test_multirow_chain_matches(self):
        d = make_design(num_rows=4, row_width=20)
        add_placed(d, 3, 1, 0, 0)
        add_placed(d, 2, 2, 4, 0, rail=Rail.GND)
        add_placed(d, 2, 3, 8, 0)
        add_placed(d, 4, 1, 12, 1)
        region = extract_local_region(d, Rect(0, 0, 20, 4))
        expected = compute_bounds(region)
        got = soa_compute_bounds(RegionSoA.from_region(region))
        assert got == expected

    def test_mirror_backed_view_matches_objects(self):
        rng = random.Random(5)
        d = random_legal_design(rng, num_rows=6, row_width=24, n_cells=14)
        mirror = attach_soa(d)
        region = extract_local_region(d, Rect(0, 0, 24, 6))
        via_mirror = soa_compute_bounds(RegionSoA.from_region(region, mirror))
        via_objects = soa_compute_bounds(RegionSoA.from_region(region))
        assert via_mirror == via_objects == compute_bounds(region)


class TestBoundsErrorParity:
    def _both_raise_same(self, region):
        with pytest.raises(ValueError) as obj_err:
            compute_bounds(region)
        with pytest.raises(ValueError) as soa_err:
            soa_compute_bounds(RegionSoA.from_region(region))
        assert str(soa_err.value) == str(obj_err.value)

    def test_unplaced_cell_message(self):
        d = make_design(num_rows=1, row_width=10)
        a = add_placed(d, 3, 1, 0, 0)
        region = extract_local_region(d, Rect(0, 0, 10, 1))
        a.x = None
        self._both_raise_same(region)

    def test_out_of_order_message(self):
        d = make_design(num_rows=1, row_width=20)
        a = add_placed(d, 3, 1, 0, 0)
        add_placed(d, 3, 1, 5, 0)
        region = extract_local_region(d, Rect(0, 0, 20, 1))
        a.x = 10  # jumps past b without reordering the segment list
        self._both_raise_same(region)

    def test_left_bound_violation_message(self):
        d = make_design(num_rows=1, row_width=20)
        add_placed(d, 3, 1, 0, 0)
        b = add_placed(d, 3, 1, 5, 0)
        region = extract_local_region(d, Rect(0, 0, 20, 1))
        b.x = 1  # overlaps a but keeps the order
        self._both_raise_same(region)

    def test_right_bound_violation_message(self):
        d = make_design(num_rows=1, row_width=20)
        a = add_placed(d, 4, 1, 10, 0)
        region = extract_local_region(d, Rect(0, 0, 20, 1))
        a.x = 18  # sticks out past the segment end
        self._both_raise_same(region)


class TestEnumerationParity:
    def test_random_regions_emit_identical_point_streams(self):
        rng = random.Random(33)
        for trial in range(25):
            d = random_legal_design(
                rng, num_rows=6, row_width=26, n_cells=14, max_height=3
            )
            region = extract_local_region(d, Rect(0, 0, 26, 6))
            bounds = compute_bounds(region)
            tw = rng.randint(1, 4)
            th = rng.randint(1, 3)
            feasible, discarded = build_insertion_intervals(region, bounds, tw)
            expected = enumerate_insertion_points(
                region, feasible, discarded, th
            )
            got = soa_enumerate_insertion_points(
                RegionSoA.from_region(region), feasible, discarded, th
            )
            assert got == expected, trial

    def test_row_predicate_is_honored_identically(self):
        rng = random.Random(4)
        d = random_legal_design(rng, num_rows=6, row_width=26, n_cells=12)
        region = extract_local_region(d, Rect(0, 0, 26, 6))
        bounds = compute_bounds(region)
        feasible, discarded = build_insertion_intervals(region, bounds, 2)
        row_ok = lambda r: r % 2 == 0  # noqa: E731
        expected = enumerate_insertion_points(
            region, feasible, discarded, 2, row_ok
        )
        got = soa_enumerate_insertion_points(
            RegionSoA.from_region(region), feasible, discarded, 2, row_ok
        )
        assert got == expected


class TestEvaluationParity:
    @pytest.mark.parametrize("mode", [EvaluationMode.APPROX, EvaluationMode.EXACT])
    def test_evaluate_candidates_bit_identical(self, mode):
        rng = random.Random(17)
        for trial in range(15):
            d = random_legal_design(
                rng, num_rows=8, row_width=30, n_cells=16, max_height=3
            )
            t = add_unplaced(
                d, rng.randint(1, 4), rng.randint(1, 3),
                rng.uniform(0, 26), rng.uniform(0, 5),
            )
            obj = MultiRowLocalLegalizer(
                d, LegalizerConfig(kernel=Kernel.OBJECT, evaluation=mode)
            )
            soa = MultiRowLocalLegalizer(
                d, LegalizerConfig(kernel=Kernel.SOA, evaluation=mode)
            )
            expected = obj.evaluate_candidates(t, t.gp_x, t.gp_y)
            got = soa.evaluate_candidates(t, t.gp_x, t.gp_y)
            assert len(got) == len(expected), trial
            for ev_soa, ev_obj in zip(got, expected):
                assert ev_soa.point == ev_obj.point
                assert ev_soa.target_x == ev_obj.target_x
                # Bit-identical, not approximately equal.
                assert ev_soa.cost == ev_obj.cost
            d.cells.remove(t)

    def test_fractional_desired_position_costs_match_exactly(self):
        # Forces the fractional |x - desired_x| term through both
        # kernels' summation orders.
        d = make_design(num_rows=2, row_width=16)
        add_placed(d, 3, 1, 1, 0)
        add_placed(d, 4, 1, 7, 0)
        add_placed(d, 2, 1, 13, 0)
        t = add_unplaced(d, 2, 1, 6.3, 0.4)
        obj = MultiRowLocalLegalizer(d, LegalizerConfig(kernel="object"))
        soa = MultiRowLocalLegalizer(d, LegalizerConfig(kernel="soa"))
        expected = obj.evaluate_candidates(t, 6.3, 0.4)
        got = soa.evaluate_candidates(t, 6.3, 0.4)
        assert [(e.target_x, e.cost) for e in got] == [
            (e.target_x, e.cost) for e in expected
        ]


class TestEndToEndParity:
    def _build(self, seed):
        rng = random.Random(seed)
        d = random_legal_design(
            rng, num_rows=8, row_width=30, n_cells=10, max_height=3
        )
        for _ in range(14):
            w, h = rng.choice(((1, 1), (2, 1), (3, 1), (2, 2), (2, 3)))
            add_unplaced(d, w, h, rng.uniform(0, 27), rng.uniform(0, 6))
        return d

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_full_legalize_digest_parity(self, seed):
        digests = {}
        for kernel in (Kernel.OBJECT, Kernel.SOA):
            d = self._build(seed)
            result = Legalizer(
                d, LegalizerConfig(seed=seed, kernel=kernel)
            ).run()
            digests[kernel] = (result.placed, design_state_digest(d))
        assert digests[Kernel.OBJECT] == digests[Kernel.SOA]

    def test_soa_kernel_survives_mll_rollbacks(self):
        # Failed try_place calls and audit rollbacks go through the
        # journal; the mirror must stay consistent across all of them.
        d = self._build(3)
        mll = MultiRowLocalLegalizer(d, LegalizerConfig(kernel=Kernel.SOA))
        rng = random.Random(9)
        for c in list(d.cells):
            if not c.is_placed:
                mll.try_place(c, rng.uniform(0, 27), rng.uniform(0, 6))
        assert_mirror_matches(d)


class TestConfigPlumbing:
    def test_string_spelling_normalizes(self):
        assert LegalizerConfig(kernel="soa").kernel is Kernel.SOA
        assert LegalizerConfig(kernel="object").kernel is Kernel.OBJECT
        assert LegalizerConfig().kernel is Kernel.OBJECT

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            LegalizerConfig(kernel="simd")

    def test_object_kernel_does_not_attach_mirror(self):
        d = make_design()
        MultiRowLocalLegalizer(d, LegalizerConfig(kernel=Kernel.OBJECT))
        assert d.soa is None

    def test_soa_kernel_attaches_mirror(self):
        d = make_design()
        MultiRowLocalLegalizer(d, LegalizerConfig(kernel="soa"))
        assert d.soa is not None


class TestRegionSoA:
    def test_dense_view_shapes(self):
        rng = random.Random(2)
        d = random_legal_design(rng, num_rows=4, row_width=20, n_cells=8)
        region = extract_local_region(d, Rect(0, 0, 20, 4))
        rsoa = RegionSoA.from_region(region)
        assert len(rsoa.cells) == len(region.cells)
        assert rsoa.x.dtype == np.int64
        for row in rsoa.rows:
            seg = region.segments[row]
            assert [rsoa.cells[i] for i in rsoa.row_cells[row]] == seg.cells
            for c in seg.cells:
                assert rsoa.pos[row][c.id] == region.cell_index(row, c)
