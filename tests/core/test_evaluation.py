"""Unit tests for insertion point evaluation (paper Fig. 9, Section 5.2)."""

import random

import pytest

from repro.core import (
    EvaluationMode,
    build_insertion_intervals,
    compute_bounds,
    enumerate_insertion_points,
    evaluate_insertion_point,
    extract_local_region,
    realize_insertion,
)
from repro.geometry import Rect
from tests.conftest import add_placed, add_unplaced, make_design, random_legal_design


def full_region(design):
    fp = design.floorplan
    return extract_local_region(design, Rect(0, 0, fp.row_width, fp.num_rows))


def all_points(design, target_w, target_h):
    region = full_region(design)
    bounds = compute_bounds(region)
    feasible, discarded = build_insertion_intervals(region, bounds, target_w)
    points = enumerate_insertion_points(region, feasible, discarded, target_h)
    return region, points


def evaluate(design, region, point, target, tx, ty, mode):
    fp = design.floorplan
    return evaluate_insertion_point(
        region,
        point,
        target,
        desired_x=tx,
        desired_y=ty,
        site_width_um=fp.site_width_um,
        site_height_um=fp.site_height_um,
        mode=mode,
    )


def simulate_cost(design, region, point, target, x, tx, ty):
    """Ground truth: realize the insertion and measure displacement."""
    fp = design.floorplan
    before = {c.id: c.x for c in region.cells}
    snapshot = design.snapshot_positions()
    local_cells = list(region.cells)
    realize_insertion(design, region, point, target, x)
    moved = sum(
        abs(c.x - before[c.id]) for c in local_cells
    ) * fp.site_width_um
    own = (
        abs(target.x - tx) * fp.site_width_um
        + abs(target.y - ty) * fp.site_height_um
    )
    # Roll back: remove target from region lists, restore positions.
    for row in target.rows_spanned():
        region.segments[row].cells.remove(target)
    region.cells.remove(target)
    target.x = target.y = None
    design.restore_positions(snapshot)
    return moved + own


class TestOptimalPosition:
    def test_free_gap_prefers_desired_x(self):
        d = make_design(num_rows=1, row_width=20)
        t = add_unplaced(d, 2, 1, 0, 0)
        region, points = all_points(d, 2, 1)
        ev = evaluate(d, region, points[0], t, 7.0, 0.0, EvaluationMode.EXACT)
        assert ev.target_x == 7
        assert ev.cost == 0.0

    def test_fractional_desired_x_rounds_to_cheaper_site(self):
        d = make_design(num_rows=1, row_width=20)
        t = add_unplaced(d, 2, 1, 0, 0)
        region, points = all_points(d, 2, 1)
        ev = evaluate(d, region, points[0], t, 7.4, 0.0, EvaluationMode.EXACT)
        assert ev.target_x == 7
        sw = d.floorplan.site_width_um
        assert ev.cost == pytest.approx(0.4 * sw)

    def test_median_balances_pushes(self):
        # Fig. 9 flavor: target wants x=5 in a gap whose neighbors make
        # pushing left cheaper than staying put.
        d = make_design(num_rows=1, row_width=12)
        a = add_placed(d, 3, 1, 2, 0)  # left neighbor
        b = add_placed(d, 3, 1, 6, 0)  # right neighbor
        t = add_unplaced(d, 2, 1, 0, 0)
        region, points = all_points(d, 2, 1)
        mid = next(
            p for p in points if p.intervals[0].left is a and p.intervals[0].right is b
        )
        # Desired x = 5 overlaps b; the evaluator weighs pushing b right
        # vs sliding t left to 4 (b's critical position x_b = 6 - 2 = 4).
        ev = evaluate(d, region, mid, t, 5.0, 0.0, EvaluationMode.EXACT)
        cost_sim = simulate_cost(d, region, mid, t, ev.target_x, 5.0, 0.0)
        assert ev.cost == pytest.approx(cost_sim)
        # And the chosen x is no worse than any alternative in the gap.
        for x in range(mid.x_lo, mid.x_hi + 1):
            assert ev.cost <= simulate_cost(d, region, mid, t, x, 5.0, 0.0) + 1e-9

    def test_y_displacement_in_cost(self):
        d = make_design(num_rows=4, row_width=10)
        t = add_unplaced(d, 2, 1, 0, 0)
        region, points = all_points(d, 2, 1)
        row2 = next(p for p in points if p.bottom_row == 2)
        ev = evaluate(d, region, row2, t, 3.0, 0.0, EvaluationMode.EXACT)
        assert ev.cost >= 2 * d.floorplan.site_height_um


class TestExactMatchesSimulation:
    @pytest.mark.parametrize("trial", range(25))
    def test_exact_cost_equals_realized_displacement(self, trial):
        rng = random.Random(trial)
        d = random_legal_design(
            rng, num_rows=4, row_width=18, n_cells=rng.randint(4, 10)
        )
        tw, th = rng.randint(1, 3), rng.randint(1, 3)
        t = add_unplaced(d, tw, th, 0, 0)
        tx = rng.uniform(0, d.floorplan.row_width - tw)
        ty = rng.uniform(0, d.floorplan.num_rows - th)
        region, points = all_points(d, tw, th)
        for point in points[:20]:
            ev = evaluate(d, region, point, t, tx, ty, EvaluationMode.EXACT)
            sim = simulate_cost(d, region, point, t, ev.target_x, tx, ty)
            assert ev.cost == pytest.approx(sim), (
                f"trial {trial}: point {point.key()} cost {ev.cost} != "
                f"simulated {sim}"
            )

    @pytest.mark.parametrize("trial", range(10))
    def test_exact_position_is_argmin(self, trial):
        rng = random.Random(500 + trial)
        d = random_legal_design(rng, num_rows=3, row_width=14, n_cells=6)
        t = add_unplaced(d, 2, 1, 0, 0)
        tx = rng.uniform(0, 12)
        region, points = all_points(d, 2, 1)
        for point in points[:8]:
            ev = evaluate(d, region, point, t, tx, 0.0, EvaluationMode.EXACT)
            best_sim = min(
                simulate_cost(d, region, point, t, x, tx, 0.0)
                for x in range(point.x_lo, point.x_hi + 1)
            )
            assert ev.cost == pytest.approx(best_sim)


class TestApproximation:
    def test_approx_sees_only_neighbors(self):
        # Chain a-b with the gap right of b: the exact cost of pushing
        # into both includes a, the approximation only b.
        d = make_design(num_rows=1, row_width=12)
        a = add_placed(d, 3, 1, 0, 0)
        b = add_placed(d, 3, 1, 3, 0)  # abuts a
        t = add_unplaced(d, 4, 1, 0, 0)
        region, points = all_points(d, 4, 1)
        gap = next(p for p in points if p.intervals[0].left is b)
        # Desired far left: t at x=6 pushes nobody; below that both move.
        exact = evaluate(d, region, gap, t, 0.0, 0.0, EvaluationMode.EXACT)
        approx = evaluate(d, region, gap, t, 0.0, 0.0, EvaluationMode.APPROX)
        assert approx.cost <= exact.cost  # approx underestimates chains

    def test_approx_equals_exact_for_single_neighbors(self):
        d = make_design(num_rows=1, row_width=20)
        add_placed(d, 3, 1, 2, 0)
        add_placed(d, 3, 1, 12, 0)
        t = add_unplaced(d, 2, 1, 0, 0)
        region, points = all_points(d, 2, 1)
        for p in points:
            e = evaluate(d, region, p, t, 8.0, 0.0, EvaluationMode.EXACT)
            a = evaluate(d, region, p, t, 8.0, 0.0, EvaluationMode.APPROX)
            assert a.cost == pytest.approx(e.cost)
            assert a.target_x == e.target_x


class TestOptimalXNoCurves:
    def test_empty_pairs_snaps_like_the_main_path(self):
        # Regression: with no displacement curves the old code returned
        # int(round(desired_x)), and banker's rounding sent 5.5 to the
        # *even* neighbor 6; the shared floor/ceil candidate selection
        # breaks the tie toward the smaller equally-near site, as the
        # main path does.
        from repro.core.evaluation import _optimal_x

        assert _optimal_x([], 0, 10, 5.5) == 5
        assert _optimal_x([], 0, 10, 4.5) == 4
        assert _optimal_x([], 0, 10, 7.0) == 7
        # Clamping still applies.
        assert _optimal_x([], 3, 10, 0.5) == 3
        assert _optimal_x([], 0, 4, 9.0) == 4
