"""Process-safe telemetry aggregation (MllTelemetry.merge)."""

import pickle
import random

from repro.core import MllTelemetry
from repro.core.instrumentation import MllCallRecord


def make_records(n, seed=0):
    rng = random.Random(seed)
    return [
        MllCallRecord(
            success=rng.random() < 0.8,
            target_width=rng.randint(1, 8),
            target_height=rng.randint(1, 3),
            local_cells=rng.randint(0, 40),
            insertion_points=rng.randint(0, 60),
            cells_pushed=rng.randint(0, 10),
            cost_um=rng.uniform(0.0, 5.0),
            runtime_s=rng.uniform(0.0, 1e-3),
        )
        for _ in range(n)
    ]


class TestMerge:
    def test_merged_aggregates_equal_single_process_aggregates(self):
        """Splitting a record stream across workers and merging back must
        reproduce the single-process summary exactly (the workers=1
        equivalence the engine relies on)."""
        records = make_records(60, seed=3)
        whole = MllTelemetry(records=list(records))

        part_a = MllTelemetry(records=list(records[:25]))
        part_b = MllTelemetry(records=list(records[25:]))
        merged = MllTelemetry()
        merged.merge(part_a).merge(part_b)

        assert merged.summary() == whole.summary()
        assert merged.histogram("local_cells") == whole.histogram("local_cells")

    def test_merge_returns_self_and_iadd_works(self):
        a = MllTelemetry(records=make_records(3))
        b = MllTelemetry(records=make_records(2, seed=9))
        assert a.merge(b) is a
        assert len(a.records) == 5
        a += MllTelemetry(records=make_records(1, seed=5))
        assert len(a.records) == 6

    def test_merge_empty_is_noop(self):
        a = MllTelemetry(records=make_records(4))
        before = a.summary()
        a.merge(MllTelemetry())
        assert a.summary() == before

    def test_records_round_trip_through_pickle(self):
        """Worker-side records cross the process boundary via pickle."""
        telemetry = MllTelemetry(records=make_records(10, seed=7))
        clone = pickle.loads(pickle.dumps(telemetry))
        assert clone.summary() == telemetry.summary()

        merged = MllTelemetry()
        merged.merge(clone)
        assert merged.summary() == telemetry.summary()
