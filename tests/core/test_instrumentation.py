"""Unit tests for MLL telemetry."""

import math

from repro.core import LegalizerConfig, Legalizer, MultiRowLocalLegalizer
from repro.core.instrumentation import MllTelemetry
from tests.conftest import add_placed, add_unplaced, make_design


class TestRecording:
    def test_no_telemetry_by_default(self):
        d = make_design()
        mll = MultiRowLocalLegalizer(d)
        assert mll.telemetry is None

    def test_successful_call_recorded(self):
        d = make_design(num_rows=1, row_width=12)
        a = add_placed(d, 4, 1, 4, 0)
        t = add_unplaced(d, 4, 1, 4.0, 0.0)
        mll = MultiRowLocalLegalizer(d, LegalizerConfig(rx=6, ry=0))
        mll.telemetry = MllTelemetry()
        assert mll.try_place(t, 4.0, 0.0).success
        assert len(mll.telemetry.records) == 1
        rec = mll.telemetry.records[0]
        assert rec.success
        assert rec.local_cells == 1  # a
        assert rec.insertion_points == 2  # left / right of a
        assert rec.cells_pushed in (0, 1)
        assert rec.runtime_s > 0
        assert math.isfinite(rec.cost_um)

    def test_failed_call_recorded_with_nan_cost(self):
        d = make_design(num_rows=1, row_width=8)
        add_placed(d, 4, 1, 0, 0, fixed=True)
        add_placed(d, 4, 1, 4, 0, fixed=True)
        t = add_unplaced(d, 2, 1, 2.0, 0.0)
        mll = MultiRowLocalLegalizer(d, LegalizerConfig(rx=6, ry=0))
        mll.telemetry = MllTelemetry()
        assert not mll.try_place(t, 2.0, 0.0).success
        rec = mll.telemetry.records[0]
        assert not rec.success
        assert math.isnan(rec.cost_um)

    def test_push_count(self):
        d = make_design(num_rows=1, row_width=12)
        add_placed(d, 3, 1, 1, 0)
        add_placed(d, 3, 1, 4, 0)
        t = add_unplaced(d, 3, 1, 5.0, 0.0)
        mll = MultiRowLocalLegalizer(d, LegalizerConfig(rx=8, ry=0))
        mll.telemetry = MllTelemetry()
        mll.try_place(t, 5.0, 0.0)
        rec = mll.telemetry.records[0]
        assert rec.cells_pushed >= 1  # inserting at x=5 pushes someone


class TestSummary:
    def test_empty_summary(self):
        tel = MllTelemetry()
        s = tel.summary()
        assert s.calls == 0
        assert s.total_runtime_s == 0.0

    def test_full_run_summary(self):
        import random

        rng = random.Random(3)
        d = make_design(num_rows=8, row_width=30)
        for _ in range(40):
            w, h = rng.choice(((2, 1), (3, 1), (2, 2)))
            add_unplaced(d, w, h, rng.uniform(0, 27), rng.uniform(0, 6))
        lg = Legalizer(d, LegalizerConfig(seed=3))
        tel = MllTelemetry()
        lg.mll.telemetry = tel
        result = lg.run()
        assert len(tel.records) == result.mll_calls
        s = tel.summary()
        assert s.calls == result.mll_calls
        assert s.successes == result.mll_successes
        assert s.mean_insertion_points > 0
        assert "MLL calls" in str(s)

    def test_histogram(self):
        tel = MllTelemetry()
        from repro.core.instrumentation import MllCallRecord

        for n in (1, 2, 2, 3, 10):
            tel.record(
                MllCallRecord(
                    success=True,
                    target_width=1,
                    target_height=1,
                    local_cells=n,
                    insertion_points=n,
                    cells_pushed=0,
                    cost_um=0.0,
                    runtime_s=0.0,
                )
            )
        hist = tel.histogram("local_cells", bins=3)
        assert len(hist) == 3
        assert sum(c for _, c in hist) == 5

    def test_histogram_single_value(self):
        from repro.core.instrumentation import MllCallRecord

        tel = MllTelemetry()
        tel.record(
            MllCallRecord(True, 1, 1, 5, 5, 0, 0.0, 0.0)
        )
        assert tel.histogram("local_cells") == [(5.0, 1)]


class TestSummaryPercentiles:
    def _record(self, tel, cost):
        from repro.core.instrumentation import MllCallRecord

        tel.record(
            MllCallRecord(
                success=not math.isnan(cost),
                target_width=1,
                target_height=1,
                local_cells=1,
                insertion_points=1,
                cells_pushed=0,
                cost_um=cost,
                runtime_s=0.0,
            )
        )

    def test_p95_uses_shared_nearest_rank(self):
        # Regression: the summary used to take index int(0.95 * n) --
        # sorted[19] = 20.0 for 20 samples -- while the BENCH trajectory
        # files used nearest-rank (sorted[18] = 19.0).  Both now share
        # repro.core.stats.nearest_rank.
        from repro.core.stats import nearest_rank

        tel = MllTelemetry()
        for c in range(1, 21):
            self._record(tel, float(c))
        s = tel.summary()
        assert s.p95_cost_um == 19.0
        assert s.p95_cost_um == nearest_rank(
            [float(c) for c in range(1, 21)], 95.0
        )

    def test_cost_records_counts_only_finite_costs(self):
        tel = MllTelemetry()
        for c in (1.0, 2.0, float("nan"), 3.0, float("nan")):
            self._record(tel, c)
        s = tel.summary()
        assert s.calls == 5
        assert s.cost_records == 3
        assert s.mean_cost_um == 2.0  # over finite-cost records only
        assert s.successes == 3
