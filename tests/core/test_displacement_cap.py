"""Unit tests for the optional per-call target displacement cap
(config.max_target_displacement_um, modelled on the paper's ref [11])."""

from repro.core import LegalizerConfig, MultiRowLocalLegalizer
from tests.conftest import add_placed, add_unplaced, make_design


def um(design, sites_x: float, rows_y: float = 0.0) -> float:
    return design.floorplan.displacement_um(sites_x, rows_y)


class TestDisplacementCap:
    def test_uncapped_accepts_distant_spot(self):
        d = make_design(num_rows=1, row_width=30)
        add_placed(d, 10, 1, 0, 0)
        add_placed(d, 10, 1, 10, 0)
        t = add_unplaced(d, 4, 1, 2.0, 0.0)
        mll = MultiRowLocalLegalizer(d, LegalizerConfig(rx=30, ry=0))
        result = mll.try_place(t, 2.0, 0.0)
        assert result.success  # lands far right, but lands

    def test_cap_rejects_distant_spot(self):
        d = make_design(num_rows=1, row_width=30)
        add_placed(d, 10, 1, 0, 0, fixed=True)
        add_placed(d, 10, 1, 10, 0, fixed=True)
        t = add_unplaced(d, 4, 1, 2.0, 0.0)
        # The fixed cells cannot be pushed; the only room is [20, 30),
        # 18 sites away — far beyond a 3-site cap.
        cap = um(d, 3.0)
        mll = MultiRowLocalLegalizer(
            d,
            LegalizerConfig(rx=30, ry=0, max_target_displacement_um=cap),
        )
        result = mll.try_place(t, 2.0, 0.0)
        assert not result.success
        assert not t.is_placed

    def test_cap_allows_near_spot(self):
        d = make_design(num_rows=1, row_width=30)
        add_placed(d, 4, 1, 0, 0)
        t = add_unplaced(d, 4, 1, 4.4, 0.0)
        cap = um(d, 1.0)
        mll = MultiRowLocalLegalizer(
            d,
            LegalizerConfig(rx=10, ry=0, max_target_displacement_um=cap),
        )
        result = mll.try_place(t, 4.4, 0.0)
        assert result.success
        assert abs(t.x - 4.4) * d.floorplan.site_width_um <= cap

    def test_cap_counts_row_jumps(self):
        d = make_design(num_rows=4, row_width=12)
        # Row 1 is fully packed; the nearest room is a row away.
        add_placed(d, 6, 1, 0, 1)
        add_placed(d, 6, 1, 6, 1)
        t = add_unplaced(d, 4, 1, 4.0, 1.0)
        tight = 0.9 * d.floorplan.site_height_um  # less than one row
        mll = MultiRowLocalLegalizer(
            d,
            LegalizerConfig(rx=6, ry=2, max_target_displacement_um=tight),
        )
        assert not mll.try_place(t, 4.0, 1.0).success
        loose = 2 * d.floorplan.site_height_um + 5 * d.floorplan.site_width_um
        mll = MultiRowLocalLegalizer(
            d,
            LegalizerConfig(rx=6, ry=2, max_target_displacement_um=loose),
        )
        assert mll.try_place(t, 4.0, 1.0).success

    def test_invalid_cap_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            LegalizerConfig(max_target_displacement_um=-1.0)


class TestEvaluateCandidatesParity:
    """Satellite: evaluate_candidates must apply the cap exactly like
    try_place, so the read-only analysis agrees with the mutating call
    on feasibility."""

    def build(self, cap_sites: float | None):
        d = make_design(num_rows=1, row_width=30)
        add_placed(d, 10, 1, 0, 0, fixed=True)
        add_placed(d, 10, 1, 10, 0, fixed=True)
        t = add_unplaced(d, 4, 1, 2.0, 0.0)
        cap = um(d, cap_sites) if cap_sites is not None else None
        cfg = LegalizerConfig(rx=30, ry=0, max_target_displacement_um=cap)
        return d, t, MultiRowLocalLegalizer(d, cfg)

    def test_capped_candidates_match_try_place_failure(self):
        _, t, mll = self.build(cap_sites=3.0)
        assert mll.evaluate_candidates(t, 2.0, 0.0) == []
        assert not mll.try_place(t, 2.0, 0.0).success

    def test_uncapped_view_for_figure_benchmarks(self):
        """apply_displacement_cap=False restores the full sweep the
        figure benchmarks plot, even under a cap that rejects them all."""
        _, t, mll = self.build(cap_sites=3.0)
        uncapped = mll.evaluate_candidates(
            t, 2.0, 0.0, apply_displacement_cap=False
        )
        assert uncapped  # the points exist, the cap was the only filter
        assert mll.evaluate_candidates(t, 2.0, 0.0) == []

    def test_cap_none_is_a_no_op_filter(self):
        _, t, mll = self.build(cap_sites=None)
        with_flag = mll.evaluate_candidates(t, 2.0, 0.0)
        without = mll.evaluate_candidates(
            t, 2.0, 0.0, apply_displacement_cap=False
        )
        assert [e.point for e in with_flag] == [e.point for e in without]

    def test_partial_cap_keeps_only_reachable_points(self):
        """A loose cap keeps the near points and drops the far ones —
        and try_place picks one of the kept points."""
        d = make_design(num_rows=1, row_width=30)
        add_placed(d, 10, 1, 0, 0)
        add_placed(d, 10, 1, 10, 0)
        t = add_unplaced(d, 4, 1, 2.0, 0.0)
        # Candidates sit at x = 0, 10, 20 (displacements 2, 8, 18): a
        # 4-site cap keeps exactly the first.
        cap = um(d, 4.0)
        mll = MultiRowLocalLegalizer(
            d, LegalizerConfig(rx=30, ry=0, max_target_displacement_um=cap)
        )
        kept = mll.evaluate_candidates(t, 2.0, 0.0)
        full = mll.evaluate_candidates(
            t, 2.0, 0.0, apply_displacement_cap=False
        )
        assert 0 < len(kept) < len(full)
        assert mll.try_place(t, 2.0, 0.0).success
        assert abs(t.x - 2.0) * d.floorplan.site_width_um <= cap
