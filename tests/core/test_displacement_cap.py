"""Unit tests for the optional per-call target displacement cap
(config.max_target_displacement_um, modelled on the paper's ref [11])."""

from repro.core import LegalizerConfig, MultiRowLocalLegalizer
from tests.conftest import add_placed, add_unplaced, make_design


def um(design, sites_x: float, rows_y: float = 0.0) -> float:
    return design.floorplan.displacement_um(sites_x, rows_y)


class TestDisplacementCap:
    def test_uncapped_accepts_distant_spot(self):
        d = make_design(num_rows=1, row_width=30)
        add_placed(d, 10, 1, 0, 0)
        add_placed(d, 10, 1, 10, 0)
        t = add_unplaced(d, 4, 1, 2.0, 0.0)
        mll = MultiRowLocalLegalizer(d, LegalizerConfig(rx=30, ry=0))
        result = mll.try_place(t, 2.0, 0.0)
        assert result.success  # lands far right, but lands

    def test_cap_rejects_distant_spot(self):
        d = make_design(num_rows=1, row_width=30)
        add_placed(d, 10, 1, 0, 0, fixed=True)
        add_placed(d, 10, 1, 10, 0, fixed=True)
        t = add_unplaced(d, 4, 1, 2.0, 0.0)
        # The fixed cells cannot be pushed; the only room is [20, 30),
        # 18 sites away — far beyond a 3-site cap.
        cap = um(d, 3.0)
        mll = MultiRowLocalLegalizer(
            d,
            LegalizerConfig(rx=30, ry=0, max_target_displacement_um=cap),
        )
        result = mll.try_place(t, 2.0, 0.0)
        assert not result.success
        assert not t.is_placed

    def test_cap_allows_near_spot(self):
        d = make_design(num_rows=1, row_width=30)
        add_placed(d, 4, 1, 0, 0)
        t = add_unplaced(d, 4, 1, 4.4, 0.0)
        cap = um(d, 1.0)
        mll = MultiRowLocalLegalizer(
            d,
            LegalizerConfig(rx=10, ry=0, max_target_displacement_um=cap),
        )
        result = mll.try_place(t, 4.4, 0.0)
        assert result.success
        assert abs(t.x - 4.4) * d.floorplan.site_width_um <= cap

    def test_cap_counts_row_jumps(self):
        d = make_design(num_rows=4, row_width=12)
        # Row 1 is fully packed; the nearest room is a row away.
        add_placed(d, 6, 1, 0, 1)
        add_placed(d, 6, 1, 6, 1)
        t = add_unplaced(d, 4, 1, 4.0, 1.0)
        tight = 0.9 * d.floorplan.site_height_um  # less than one row
        mll = MultiRowLocalLegalizer(
            d,
            LegalizerConfig(rx=6, ry=2, max_target_displacement_um=tight),
        )
        assert not mll.try_place(t, 4.0, 1.0).success
        loose = 2 * d.floorplan.site_height_um + 5 * d.floorplan.site_width_um
        mll = MultiRowLocalLegalizer(
            d,
            LegalizerConfig(rx=6, ry=2, max_target_displacement_um=loose),
        )
        assert mll.try_place(t, 4.0, 1.0).success

    def test_invalid_cap_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            LegalizerConfig(max_target_displacement_um=-1.0)
