"""Fault-injection sweeps: crash at *every* journaled mutation site.

Acceptance contract of the transaction layer: raising at each journaled
mutation inside ``try_place`` (and the flows built on it) leaves
``Design.snapshot_positions()`` and all segment cell orderings
byte-identical to the pre-call state.  ``fault_sweep`` rebuilds the
design per site, arms :class:`repro.testing.faults.FaultInjector` and
compares :func:`design_state` before/after.
"""

import random

import pytest

from repro.core import Legalizer, LegalizerConfig, MultiRowLocalLegalizer
from repro.testing.faults import (
    FaultInjector,
    InjectedFault,
    count_journaled_mutations,
    design_state,
    design_state_digest,
    fault_sweep,
)
from tests.conftest import add_placed, add_unplaced, make_design


def mll_factory():
    """A multi-row insertion with push chains on both sides."""
    d = make_design(num_rows=4, row_width=24)
    add_placed(d, 4, 1, 2, 1, name="r1a")
    add_placed(d, 4, 1, 8, 1, name="r1b")
    add_placed(d, 4, 1, 3, 2, name="r2a")
    add_placed(d, 4, 1, 9, 2, name="r2b")
    t = add_unplaced(d, 4, 2, 6.0, 1.0, name="target")
    mll = MultiRowLocalLegalizer(d, LegalizerConfig(rx=10, ry=2))
    return d, lambda: mll.try_place(t, 6.0, 1.0)


def build_driver_design():
    """A small overlapping design for the Algorithm 1 driver."""
    rng = random.Random(7)
    d = make_design(num_rows=6, row_width=30)
    for i in range(18):
        w, h = rng.choice([(2, 1), (3, 1), (4, 1), (2, 2)])
        add_unplaced(d, w, h, rng.uniform(0, 26), rng.uniform(0, 5),
                     name=f"c{i}")
    return d


def driver_factory():
    """The whole driver run wrapped in one outer transaction.

    ``Legalizer.run`` deliberately commits per cell (its contract keeps
    the placed subset on failure), so whole-run atomicity comes from
    nesting: per-cell transactions become savepoints of the outer one,
    and an injected fault anywhere unwinds the entire run.
    """
    from repro.db.journal import Transaction

    d = build_driver_design()
    legalizer = Legalizer(d, LegalizerConfig(rx=8, ry=2, seed=3))

    def action():
        with Transaction(d):
            legalizer.run()

    return d, action


class TestTryPlaceSweep:
    def test_every_site_restores_state(self):
        report = fault_sweep(mll_factory)
        # The insertion spans 2 rows: position set + 2x(db+local) inserts
        # + region append + at least one push shift.
        assert report.sites >= 6
        sites = set(report.tripped)
        assert "realize.target_pos" in sites
        assert "realize.db_segment_insert" in sites
        assert "design.shift_x" in sites

    def test_snapshot_positions_identical(self):
        """Spell the acceptance criterion out explicitly."""
        d, action = mll_factory()
        positions = d.snapshot_positions()
        orderings = [
            tuple(c.id for c in seg.cells) for seg in d.floorplan.segments
        ]
        digest = design_state_digest(d)
        with FaultInjector(d, trip_at=3):
            with pytest.raises(InjectedFault):
                action()
        assert d.snapshot_positions() == positions
        assert [
            tuple(c.id for c in seg.cells) for seg in d.floorplan.segments
        ] == orderings
        assert design_state_digest(d) == digest

    def test_counter_mode_counts_without_tripping(self):
        d, action = mll_factory()
        n = count_journaled_mutations(d, action)
        assert n >= 6
        # The action ran for real in counter mode.
        assert all(c.is_placed for c in d.cells)


class TestDriverSweep:
    def test_serial_driver_full_sweep(self):
        """Acceptance: every journaled site of a full Legalizer.run on
        the serial driver restores the design on injection (run wrapped
        in an outer transaction for whole-run atomicity)."""
        report = fault_sweep(driver_factory)
        assert report.sites > 20
        assert "design.place" in set(report.tripped)  # direct placements

    def test_driver_deterministic_site_count(self):
        d1, a1 = driver_factory()
        d2, a2 = driver_factory()
        assert count_journaled_mutations(d1, a1) == count_journaled_mutations(
            d2, a2
        )

    def test_bare_driver_keeps_consistency_per_call(self):
        """Without an outer transaction, a fault mid-run keeps the
        committed prefix (the driver's documented contract) but never a
        half-applied call: the placement stays checker-clean."""
        from repro.checker import verify_placement

        d0 = build_driver_design()
        legalizer0 = Legalizer(d0, LegalizerConfig(rx=8, ry=2, seed=3))
        total = count_journaled_mutations(d0, legalizer0.run)
        for trip in range(1, total + 1, max(1, total // 9)):
            d = build_driver_design()
            legalizer = Legalizer(d, LegalizerConfig(rx=8, ry=2, seed=3))
            with FaultInjector(d, trip_at=trip):
                with pytest.raises(InjectedFault):
                    legalizer.run()
            assert verify_placement(d, require_all_placed=False) == []


class TestAppSweeps:
    def test_move_cell_sweep(self):
        from repro.apps.local_move import move_cell

        def factory():
            d = make_design(num_rows=2, row_width=24)
            add_placed(d, 4, 1, 0, 0, name="a")
            b = add_placed(d, 4, 1, 4, 0, name="b")
            add_placed(d, 4, 1, 14, 0, name="c")
            return d, lambda: move_cell(
                d, b, 15.0, 0.0, LegalizerConfig(rx=6, ry=1)
            )

        report = fault_sweep(factory)
        assert report.sites >= 3
        assert "design.unplace" in set(report.tripped)

    def test_swap_cells_sweep(self):
        from repro.apps.swap import swap_cells

        def factory():
            d = make_design(num_rows=2, row_width=30)
            a = add_placed(d, 3, 1, 0, 0, name="a")
            b = add_placed(d, 5, 1, 20, 0, name="b")
            return d, lambda: swap_cells(
                d, a, b, LegalizerConfig(rx=8, ry=1)
            )

        report = fault_sweep(factory)
        assert report.sites >= 6

    def test_resize_cell_sweep(self):
        from repro.apps.sizing import resize_cell

        def factory():
            d = make_design(num_rows=2, row_width=24)
            a = add_placed(d, 3, 1, 4, 0, name="a")
            add_placed(d, 3, 1, 8, 0, name="nb")
            wide = d.library.get_or_create(5, 1, None)
            return d, lambda: resize_cell(
                d, a, wide, LegalizerConfig(rx=8, ry=1)
            )

        report = fault_sweep(factory)
        assert "sizing.master_swap" in set(report.tripped)

    def test_buffer_insertion_sweep(self):
        from repro.apps.buffering import insert_buffer
        from repro.db.netlist import Net, Pin

        def factory():
            d = make_design(num_rows=2, row_width=24)
            a = add_placed(d, 3, 1, 0, 0, name="a")
            b = add_placed(d, 3, 1, 20, 0, name="b")
            net = Net(
                name="n",
                pins=(Pin(cell=a, dx=1, dy=0.5), Pin(cell=b, dx=1, dy=0.5)),
            )
            d.netlist.add(net)
            buf = d.library.get_or_create(2, 1, None)
            return d, lambda: insert_buffer(
                d, net, buf, LegalizerConfig(rx=6, ry=1)
            )

        report = fault_sweep(factory)
        assert "design.add_cell" in set(report.tripped)


class TestFaultInjectorHygiene:
    def test_double_arm_rejected(self):
        d, _ = mll_factory()
        with FaultInjector(d, trip_at=None):
            with pytest.raises(RuntimeError):
                with FaultInjector(d, trip_at=1):
                    pass  # pragma: no cover

    def test_disarm_on_exit(self):
        d, action = mll_factory()
        with FaultInjector(d, trip_at=None):
            pass
        assert d.journal_hook is None
        action()  # runs clean, no hook left behind
