"""Unit tests for the Algorithm 1 driver."""

import random

import pytest

from repro.checker import assert_legal, verify_placement
from repro.core import (
    LegalizationError,
    Legalizer,
    LegalizerConfig,
    legalize,
)
from repro.core.config import CellOrder
from tests.conftest import add_placed, add_unplaced, make_design


def overlapping_design(seed=0, n=40, rows=10, width=40):
    rng = random.Random(seed)
    d = make_design(num_rows=rows, row_width=width)
    for i in range(n):
        w, h = rng.choice(((2, 1), (3, 1), (4, 1), (2, 2)))
        add_unplaced(
            d, w, h, rng.uniform(0, width - w), rng.uniform(0, rows - h)
        )
    return d


class TestBasicRuns:
    def test_empty_design(self):
        d = make_design()
        result = legalize(d)
        assert result.placed == 0

    def test_single_cell_direct_placement(self):
        d = make_design()
        add_unplaced(d, 3, 1, 5.2, 2.7)
        result = legalize(d)
        assert result.placed == 1
        assert result.direct_placements == 1
        assert result.mll_calls == 0
        assert_legal(d)

    def test_overlapping_cells_resolved(self):
        d = overlapping_design()
        result = legalize(d, LegalizerConfig(seed=3))
        assert result.placed == len(d.cells)
        assert_legal(d)
        assert result.mll_successes > 0  # overlaps forced some MLL calls

    def test_off_grid_positions_snapped(self):
        d = make_design()
        c = add_unplaced(d, 2, 1, 3.49, 1.51)
        legalize(d)
        assert (c.x, c.y) == (3, 2)

    def test_fixed_cells_untouched(self):
        d = make_design()
        f = add_placed(d, 4, 1, 10, 2, fixed=True)
        c = add_unplaced(d, 3, 1, 10.0, 2.0)  # wants the fixed cell's spot
        legalize(d)
        assert (f.x, f.y) == (10, 2)
        assert c.is_placed
        assert_legal(d)


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = overlapping_design(seed=7, n=60, rows=8, width=30)
        b = overlapping_design(seed=7, n=60, rows=8, width=30)
        legalize(a, LegalizerConfig(seed=11))
        legalize(b, LegalizerConfig(seed=11))
        assert [(c.x, c.y) for c in a.cells] == [(c.x, c.y) for c in b.cells]

    def test_order_option_changes_processing(self):
        a = overlapping_design(seed=7, n=60, rows=8, width=30)
        b = overlapping_design(seed=7, n=60, rows=8, width=30)
        legalize(a, LegalizerConfig(seed=11, order=CellOrder.INPUT))
        legalize(b, LegalizerConfig(seed=11, order=CellOrder.TALL_FIRST))
        assert_legal(a)
        assert_legal(b)


class TestPowerModes:
    def test_aligned_mode_respects_parity(self):
        d = overlapping_design(seed=5)
        legalize(d, LegalizerConfig(seed=5, power_aligned=True))
        assert verify_placement(d, power_aligned=True) == []

    def test_relaxed_mode_may_break_parity_but_is_otherwise_legal(self):
        d = overlapping_design(seed=5)
        legalize(d, LegalizerConfig(seed=5, power_aligned=False))
        assert verify_placement(d, power_aligned=False) == []

    def test_relaxed_mode_displacement_not_worse_for_even_cells(self):
        # Section 6: removing constraint 4 lowers displacement because
        # double-height cells stop jumping rows.  Check the weaker,
        # always-true form on one seed: every double-height cell's y
        # displacement under relaxed mode is at most its aligned-mode y
        # displacement... on average.
        from repro.checker import displacement_stats

        a = overlapping_design(seed=9, n=60, rows=12, width=40)
        b = overlapping_design(seed=9, n=60, rows=12, width=40)
        legalize(a, LegalizerConfig(seed=1, power_aligned=True))
        legalize(b, LegalizerConfig(seed=1, power_aligned=False))
        da = displacement_stats(a).avg_sites
        db = displacement_stats(b).avg_sites
        assert db <= da * 1.05  # relaxed should not be meaningfully worse


class TestFailure:
    def test_impossible_design_raises(self):
        d = make_design(num_rows=1, row_width=10)
        add_unplaced(d, 20, 1, 0.0, 0.0)  # wider than the die
        with pytest.raises(LegalizationError):
            legalize(d, LegalizerConfig(max_rounds=3))

    def test_failure_keeps_placed_subset(self):
        d = make_design(num_rows=1, row_width=10)
        ok = add_unplaced(d, 3, 1, 0.0, 0.0)
        add_unplaced(d, 20, 1, 0.0, 0.0)
        with pytest.raises(LegalizationError):
            legalize(d, LegalizerConfig(max_rounds=2))
        assert ok.is_placed

    def test_error_carries_partial_result(self):
        """Satellite: the error object reports what the failed run did
        achieve, so the CLI and shard workers can surface placed counts
        instead of losing the round's telemetry."""
        d = make_design(num_rows=1, row_width=10)
        ok = add_unplaced(d, 3, 1, 0.0, 0.0, name="ok")
        add_unplaced(d, 20, 1, 0.0, 0.0, name="giant")
        with pytest.raises(LegalizationError) as exc_info:
            legalize(d, LegalizerConfig(max_rounds=2))
        partial = exc_info.value.result
        assert partial is not None
        assert partial.placed == 1
        assert ok.is_placed
        assert partial.failed_cells == ["giant"]
        assert partial.rounds == 2
        assert partial.runtime_s > 0

    def test_result_statistics_consistent(self):
        d = overlapping_design(seed=2)
        result = legalize(d, LegalizerConfig(seed=2))
        assert result.placed == result.direct_placements + result.mll_successes
        assert result.runtime_s > 0


class TestRetryRounds:
    def test_dense_design_uses_retries(self):
        rng = random.Random(4)
        d = make_design(num_rows=6, row_width=20)
        # ~90% density with everything wanting the same corner.
        for _ in range(27):
            add_unplaced(d, 4, 1, rng.uniform(0, 4), rng.uniform(0, 2))
        result = legalize(d, LegalizerConfig(seed=4))
        assert result.placed == 27
        assert_legal(d)
