"""Unit tests for legalizer configuration validation."""

import pytest

from repro.core import EvaluationMode, LegalizerConfig
from repro.core.config import CellOrder


def test_paper_defaults():
    cfg = LegalizerConfig()
    assert cfg.rx == 30  # paper Section 3
    assert cfg.ry == 5
    assert cfg.power_aligned is True
    assert cfg.evaluation is EvaluationMode.APPROX  # paper Section 5.2
    assert cfg.order is CellOrder.INPUT


def test_invalid_window_rejected():
    with pytest.raises(ValueError):
        LegalizerConfig(rx=0)
    with pytest.raises(ValueError):
        LegalizerConfig(ry=-1)


def test_invalid_rounds_rejected():
    with pytest.raises(ValueError):
        LegalizerConfig(max_rounds=0)


def test_config_is_immutable():
    cfg = LegalizerConfig()
    with pytest.raises(Exception):
        cfg.rx = 10  # type: ignore[misc]
