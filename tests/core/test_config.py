"""Unit tests for legalizer configuration validation."""

import pytest

from repro.core import EvaluationMode, LegalizerConfig
from repro.core.config import CellOrder


def test_paper_defaults():
    cfg = LegalizerConfig()
    assert cfg.rx == 30  # paper Section 3
    assert cfg.ry == 5
    assert cfg.power_aligned is True
    assert cfg.evaluation is EvaluationMode.APPROX  # paper Section 5.2
    assert cfg.order is CellOrder.INPUT


def test_invalid_window_rejected():
    with pytest.raises(ValueError):
        LegalizerConfig(rx=0)
    with pytest.raises(ValueError):
        LegalizerConfig(ry=-1)


def test_invalid_rounds_rejected():
    with pytest.raises(ValueError):
        LegalizerConfig(max_rounds=0)


def test_config_is_immutable():
    cfg = LegalizerConfig()
    with pytest.raises(Exception):
        cfg.rx = 10  # type: ignore[misc]


class TestWindowSizeCoercion:
    """Satellite: rx/ry feed ``rng.randint`` retry-amplitude bounds,
    which reject floats — integral values are coerced at construction,
    fractional ones are configuration errors."""

    def test_integral_floats_coerced_to_int(self):
        cfg = LegalizerConfig(rx=30.0, ry=5.0)  # type: ignore[arg-type]
        assert cfg.rx == 30 and isinstance(cfg.rx, int)
        assert cfg.ry == 5 and isinstance(cfg.ry, int)

    def test_fractional_values_rejected(self):
        with pytest.raises(ValueError, match="integral"):
            LegalizerConfig(rx=30.5)  # type: ignore[arg-type]
        with pytest.raises(ValueError, match="integral"):
            LegalizerConfig(ry=2.25)  # type: ignore[arg-type]

    def test_bool_rejected(self):
        with pytest.raises(ValueError):
            LegalizerConfig(rx=True)  # type: ignore[arg-type]

    def test_coerced_config_survives_retry_rounds(self):
        """Regression: a float rx used to crash ``rng.randint`` in retry
        round k >= 2.  A dense design that needs retries must now run."""
        import random

        from repro.core import legalize
        from tests.conftest import add_unplaced, make_design

        rng = random.Random(4)
        d = make_design(num_rows=6, row_width=20)
        for _ in range(27):
            add_unplaced(d, 4, 1, rng.uniform(0, 4), rng.uniform(0, 2))
        result = legalize(
            d, LegalizerConfig(rx=6.0, ry=2.0, seed=4)  # type: ignore[arg-type]
        )
        assert result.placed == 27
        assert result.rounds >= 1  # retries actually happened
