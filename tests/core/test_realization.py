"""Unit tests for legal placement realization (paper Algorithm 2)."""

import pytest

from repro.checker import verify_placement
from repro.core import (
    RealizationError,
    build_insertion_intervals,
    compute_bounds,
    enumerate_insertion_points,
    extract_local_region,
    realize_insertion,
)
from repro.geometry import Rect
from tests.conftest import add_placed, add_unplaced, make_design


def prepare(design, target_w, target_h):
    fp = design.floorplan
    region = extract_local_region(design, Rect(0, 0, fp.row_width, fp.num_rows))
    bounds = compute_bounds(region)
    feasible, discarded = build_insertion_intervals(region, bounds, target_w)
    points = enumerate_insertion_points(region, feasible, discarded, target_h)
    return region, points


def point_at(points, bottom_row, left=None, right=None):
    for p in points:
        iv = p.intervals[0]
        if p.bottom_row == bottom_row and iv.left is left and iv.right is right:
            return p
    raise AssertionError("no such insertion point")


class TestPushes:
    def test_no_push_when_gap_fits(self):
        d = make_design(num_rows=1, row_width=20)
        a = add_placed(d, 3, 1, 2, 0)
        t = add_unplaced(d, 2, 1, 0, 0)
        region, points = prepare(d, 2, 1)
        realize_insertion(d, region, point_at(points, 0, a, None), t, 10)
        assert (t.x, t.y) == (10, 0)
        assert a.x == 2  # untouched
        assert verify_placement(d) == []

    def test_push_left_chain(self):
        d = make_design(num_rows=1, row_width=12)
        a = add_placed(d, 3, 1, 1, 0)
        b = add_placed(d, 3, 1, 4, 0)  # abuts a
        t = add_unplaced(d, 3, 1, 0, 0)
        region, points = prepare(d, 3, 1)
        # Insert right of b at x=5: b must slide to 2, a to -? a at 1,
        # b pushed to 5-3=2, a pushed to 2-3=-1 -> infeasible; choose x=6:
        realize_insertion(d, region, point_at(points, 0, b, None), t, 6)
        assert t.x == 6
        assert b.x == 3
        assert a.x == 0
        assert verify_placement(d) == []

    def test_push_right_chain(self):
        d = make_design(num_rows=1, row_width=12)
        a = add_placed(d, 3, 1, 5, 0)
        b = add_placed(d, 3, 1, 8, 0)
        t = add_unplaced(d, 3, 1, 0, 0)
        region, points = prepare(d, 3, 1)
        realize_insertion(d, region, point_at(points, 0, None, a), t, 3)
        assert t.x == 3
        assert a.x == 6
        assert b.x == 9
        assert verify_placement(d) == []

    def test_push_both_sides(self):
        d = make_design(num_rows=1, row_width=10)
        a = add_placed(d, 3, 1, 2, 0)
        b = add_placed(d, 3, 1, 5, 0)
        t = add_unplaced(d, 3, 1, 0, 0)
        region, points = prepare(d, 3, 1)
        realize_insertion(d, region, point_at(points, 0, a, b), t, 3)
        assert (a.x, t.x, b.x) == (0, 3, 6)
        assert verify_placement(d) == []

    def test_multi_row_push_propagates_to_other_rows(self):
        # Pushing multi-row cell m from row 0 must also displace the
        # row-1 cell that m collides with — the coupling single-row
        # legalizers cannot express.
        d = make_design(num_rows=2, row_width=14)
        m = add_placed(d, 3, 2, 4, 0)
        u = add_placed(d, 3, 1, 8, 1)  # upper row, right of m
        t = add_unplaced(d, 4, 1, 0, 0)
        region, points = prepare(d, 4, 1)
        realize_insertion(d, region, point_at(points, 0, None, m), t, 2)
        assert t.x == 2
        assert m.x == 6  # pushed right by t
        assert u.x == 9  # pushed right by m through row 1
        assert verify_placement(d) == []

    def test_target_multi_row_pushes_in_all_rows(self):
        d = make_design(num_rows=2, row_width=12)
        a = add_placed(d, 3, 1, 4, 0)
        b = add_placed(d, 3, 1, 5, 1)
        t = add_unplaced(d, 3, 2, 0, 0, rail=d.floorplan.rows[0].bottom_rail)
        region, points = prepare(d, 3, 2)
        p = next(
            pt
            for pt in points
            if pt.bottom_row == 0
            and pt.intervals[0].right is a
            and pt.intervals[1].right is b
        )
        realize_insertion(d, region, p, t, 3)
        assert t.x == 3 and t.y == 0
        assert a.x == 6
        assert b.x == 6
        assert verify_placement(d) == []


class TestDbConsistency:
    def test_target_registered_in_segments(self):
        d = make_design(num_rows=2, row_width=10)
        t = add_unplaced(d, 2, 2, 0, 0, rail=d.floorplan.rows[0].bottom_rail)
        region, points = prepare(d, 2, 2)
        realize_insertion(d, region, points[0], t, 4)
        assert len(d.segments_of(t)) == 2
        assert verify_placement(d) == []

    def test_segment_insert_index_respects_gap(self):
        # Target overlapping its right neighbor's old position must still
        # land *before* it in the cell list (bisection by x would not).
        d = make_design(num_rows=1, row_width=10)
        a = add_placed(d, 3, 1, 4, 0)
        t = add_unplaced(d, 3, 1, 0, 0)
        region, points = prepare(d, 3, 1)
        realize_insertion(d, region, point_at(points, 0, None, a), t, 4)
        seg = d.floorplan.segments_in_row(0)[0]
        assert seg.cells == [t, a]
        assert (t.x, a.x) == (4, 7)
        assert verify_placement(d) == []


class TestErrors:
    def test_out_of_range_x_rejected(self):
        d = make_design(num_rows=1, row_width=10)
        t = add_unplaced(d, 2, 1, 0, 0)
        region, points = prepare(d, 2, 1)
        with pytest.raises(RealizationError):
            realize_insertion(d, region, points[0], t, 99)

    def test_placed_target_rejected(self):
        d = make_design(num_rows=1, row_width=10)
        t = add_placed(d, 2, 1, 0, 0)
        region, points = prepare(d, 2, 1)
        with pytest.raises(RealizationError):
            realize_insertion(d, region, points[0], t, 2)
