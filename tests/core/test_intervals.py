"""Unit tests for insertion intervals (paper Fig. 7 cases)."""

from repro.core import build_insertion_intervals, compute_bounds, extract_local_region
from repro.geometry import Rect
from tests.conftest import add_placed, make_design


def setup_region(design, rect):
    region = extract_local_region(design, rect)
    bounds = compute_bounds(region)
    return region, bounds


class TestGapEnumeration:
    def test_empty_segment_single_boundary_gap(self):
        d = make_design(num_rows=1, row_width=10)
        region, bounds = setup_region(d, Rect(0, 0, 10, 1))
        feasible, discarded = build_insertion_intervals(region, bounds, target_width=3)
        assert len(feasible) == 1 and not discarded
        iv = feasible[0]
        assert (iv.left, iv.right) == (None, None)
        assert (iv.x_lo, iv.x_hi) == (0, 7)
        assert iv.gap_index == 0

    def test_gap_count_is_cells_plus_one_per_segment(self):
        d = make_design(num_rows=2, row_width=20)
        add_placed(d, 2, 1, 2, 0)
        add_placed(d, 2, 1, 8, 0)
        add_placed(d, 2, 1, 14, 1)
        region, bounds = setup_region(d, Rect(0, 0, 20, 2))
        feasible, discarded = build_insertion_intervals(region, bounds, target_width=1)
        assert len(feasible) + len(discarded) == (2 + 1) + (1 + 1)

    def test_between_cells_uses_bounds(self):
        # Fig. 7(a): [xL_i + w_i, xR_j - w_t].
        d = make_design(num_rows=1, row_width=10)
        a = add_placed(d, 2, 1, 2, 0)
        b = add_placed(d, 3, 1, 6, 0)
        region, bounds = setup_region(d, Rect(0, 0, 10, 1))
        feasible, _ = build_insertion_intervals(region, bounds, target_width=2)
        mid = next(iv for iv in feasible if iv.left is a and iv.right is b)
        assert mid.x_lo == bounds.x_left(a.id) + a.width  # = 2
        assert mid.x_hi == bounds.x_right(b.id) - 2  # = 7 - 2
        assert (mid.x_lo, mid.x_hi) == (2, 5)

    def test_boundary_gaps(self):
        # Fig. 7(b)/(c): segment boundary on one side.
        d = make_design(num_rows=1, row_width=10)
        a = add_placed(d, 2, 1, 4, 0)
        region, bounds = setup_region(d, Rect(0, 0, 10, 1))
        feasible, _ = build_insertion_intervals(region, bounds, target_width=3)
        left_gap = next(iv for iv in feasible if iv.right is a)
        right_gap = next(iv for iv in feasible if iv.left is a)
        assert (left_gap.x_lo, left_gap.x_hi) == (0, bounds.x_right(a.id) - 3)
        assert (right_gap.x_lo, right_gap.x_hi) == (
            bounds.x_left(a.id) + a.width,
            10 - 3,
        )


class TestIntervalLengths:
    def test_positive_zero_negative(self):
        # Fig. 7(d)/(e)/(f): a 10-wide segment with two 3-wide cells has
        # 4 slack; targets of width 2 / 4 / 5 give length +2 / 0 / -1
        # for the middle gap when the neighbors are compacted outward.
        d = make_design(num_rows=1, row_width=10)
        a = add_placed(d, 3, 1, 0, 0)
        b = add_placed(d, 3, 1, 7, 0)
        region, bounds = setup_region(d, Rect(0, 0, 10, 1))
        for width, length in ((2, 2), (4, 0), (5, -1)):
            feasible, discarded = build_insertion_intervals(
                region, bounds, target_width=width
            )
            everything = feasible + discarded
            mid = next(
                iv for iv in everything if iv.left is a and iv.right is b
            )
            assert mid.length == length
            assert mid.is_feasible == (length >= 0)
            assert (mid in feasible) == (length >= 0)

    def test_discarded_when_target_exceeds_segment(self):
        d = make_design(num_rows=1, row_width=6)
        region, bounds = setup_region(d, Rect(0, 0, 6, 1))
        feasible, discarded = build_insertion_intervals(region, bounds, target_width=9)
        assert feasible == []
        assert len(discarded) == 1


class TestGapIndex:
    def test_gap_indices_sequential(self):
        d = make_design(num_rows=1, row_width=20)
        a = add_placed(d, 2, 1, 2, 0)
        b = add_placed(d, 2, 1, 9, 0)
        region, bounds = setup_region(d, Rect(0, 0, 20, 1))
        feasible, _ = build_insertion_intervals(region, bounds, target_width=1)
        by_index = {iv.gap_index: iv for iv in feasible}
        assert set(by_index) == {0, 1, 2}
        assert by_index[0].right is a
        assert by_index[1].left is a and by_index[1].right is b
        assert by_index[2].left is b
