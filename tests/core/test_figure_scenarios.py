"""Executable versions of the paper's illustrative figures.

The figures are conceptual drawings, not data plots; these tests encode
the *behaviour* each figure depicts so the claims stay checkable:

* Figure 5 — a 3x2 target among mixed-height cells has several feasible
  insertion points with different costs; the optimum displaces least.
* Figure 6 — leftmost/rightmost placements bound every cell's slack.
* Figure 9 — the displacement curve is V-shaped per cell and the median
  of critical positions minimizes the total.
"""

import pytest

from repro.checker import verify_placement
from repro.core import (
    EvaluationMode,
    LegalizerConfig,
    MultiRowLocalLegalizer,
    compute_bounds,
    extract_local_region,
)
from repro.db import Rail
from repro.geometry import Rect
from tests.conftest import add_placed, add_unplaced, make_design


class TestFigure5InsertionChoice:
    """A multi-row target must pick gaps across consecutive segments."""

    def build(self):
        # Four rows; five local cells a-e of mixed heights, loosely
        # packed so multiple insertion points are feasible — the shape
        # of the paper's Figure 5 example.
        d = make_design(num_rows=4, row_width=12)
        cells = {
            "a": add_placed(d, 3, 1, 0, 1, name="a"),
            "b": add_placed(d, 3, 1, 2, 3, name="b"),
            "c": add_placed(d, 2, 2, 5, 1, rail=d.floorplan.rows[1].bottom_rail, name="c"),
            "d": add_placed(d, 3, 1, 8, 1, name="d"),
            "e": add_placed(d, 4, 1, 3, 0, name="e"),
        }
        return d, cells

    def test_region_is_legal_input(self):
        d, _ = self.build()
        assert verify_placement(d) == []

    def test_multiple_feasible_insertion_points(self):
        d, _ = self.build()
        t = add_unplaced(d, 3, 2, 5.0, 1.0, rail=d.floorplan.rows[1].bottom_rail, name="t")
        mll = MultiRowLocalLegalizer(
            d, LegalizerConfig(rx=12, ry=3, evaluation=EvaluationMode.EXACT)
        )
        candidates = mll.evaluate_candidates(t, 5.0, 1.0)
        assert len(candidates) >= 3  # several ways to insert
        costs = sorted(c.cost for c in candidates)
        assert costs[0] < costs[-1]  # ... with genuinely different costs

    def test_chosen_point_minimizes_measured_displacement(self):
        d, cells = self.build()
        before = {name: c.x for name, c in cells.items()}
        t = add_unplaced(d, 3, 2, 5.0, 1.0, rail=d.floorplan.rows[1].bottom_rail, name="t")
        mll = MultiRowLocalLegalizer(
            d, LegalizerConfig(rx=12, ry=3, evaluation=EvaluationMode.EXACT)
        )
        candidates = mll.evaluate_candidates(t, 5.0, 1.0)
        best = min(c.cost for c in candidates)
        result = mll.try_place(t, 5.0, 1.0)
        assert result.success
        fp = d.floorplan
        measured = sum(
            abs(c.x - before[name]) * fp.site_width_um
            for name, c in cells.items()
        ) + abs(t.x - 5.0) * fp.site_width_um + abs(t.y - 1.0) * fp.site_height_um
        assert measured == pytest.approx(best)
        assert verify_placement(d) == []

    def test_infeasible_insertion_points_are_absent(self):
        # Gaps too tight for the target (negative intervals, Fig. 5(e/f))
        # never appear among the candidates.
        d, _ = self.build()
        t = add_unplaced(d, 9, 2, 5.0, 1.0, rail=d.floorplan.rows[1].bottom_rail)
        mll = MultiRowLocalLegalizer(d, LegalizerConfig(rx=12, ry=3))
        candidates = mll.evaluate_candidates(t, 5.0, 1.0)
        for ev in candidates:
            assert ev.point.x_hi >= ev.point.x_lo


class TestFigure6Bounds:
    def test_slack_visible_in_bounds(self):
        d = make_design(num_rows=2, row_width=10)
        a = add_placed(d, 2, 1, 1, 0)
        m = add_placed(d, 2, 2, 4, 0, rail=d.floorplan.rows[0].bottom_rail)
        b = add_placed(d, 2, 1, 7, 1)
        region = extract_local_region(d, Rect(0, 0, 10, 2))
        bounds = compute_bounds(region)
        # Leftmost: a to 0, m packs against a, b packs against m.
        assert bounds.x_left(a.id) == 0
        assert bounds.x_left(m.id) == 2
        assert bounds.x_left(b.id) == 4
        # Rightmost: b to 8, m limited by b in row 1, a limited by m.
        assert bounds.x_right(b.id) == 8
        assert bounds.x_right(m.id) == 6
        assert bounds.x_right(a.id) == 4


class TestFigure9MedianEvaluation:
    def test_total_curve_is_convex_in_target_position(self):
        from repro.core import (
            build_insertion_intervals,
            enumerate_insertion_points,
        )
        from repro.core.evaluation import (
            _critical_positions_exact,
            _total_cost,
        )

        d = make_design(num_rows=1, row_width=16)
        add_placed(d, 3, 1, 2, 0, name="c")
        add_placed(d, 3, 1, 6, 0, name="d")
        add_placed(d, 3, 1, 10, 0, name="e")
        t = add_unplaced(d, 2, 1, 7.0, 0.0, name="t")
        region = extract_local_region(d, Rect(0, 0, 16, 1))
        bounds = compute_bounds(region)
        feasible, discarded = build_insertion_intervals(region, bounds, 2)
        points = enumerate_insertion_points(region, feasible, discarded, 1)
        mid = next(
            p
            for p in points
            if p.intervals[0].left is not None
            and p.intervals[0].left.name == "d"
            and p.intervals[0].right is not None
        )
        pairs = _critical_positions_exact(region, mid, 2)
        xs = list(range(mid.x_lo, mid.x_hi + 1))
        costs = [_total_cost(pairs, x) for x in xs]
        # Convexity: second differences never negative.
        for i in range(1, len(costs) - 1):
            assert costs[i + 1] - 2 * costs[i] + costs[i - 1] >= -1e-9

    def test_each_cell_curve_matches_equation_3(self):
        from repro.core.evaluation import _total_cost

        # One cell with critical positions (4, 7): the curve must be
        # x<4 -> 4-x, 4..7 -> 0, x>7 -> x-7 (paper equation (3)).
        pairs = [(4.0, 7.0)]
        assert _total_cost(pairs, 2) == 2
        assert _total_cost(pairs, 4) == 0
        assert _total_cost(pairs, 5.5) == 0
        assert _total_cost(pairs, 7) == 0
        assert _total_cost(pairs, 9) == 2
