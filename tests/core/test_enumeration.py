"""Unit tests for insertion point enumeration (scanline vs brute force,
paper Fig. 8 validity)."""

import random

from repro.core import (
    build_insertion_intervals,
    compute_bounds,
    enumerate_insertion_points,
    enumerate_insertion_points_bruteforce,
    extract_local_region,
)
from repro.geometry import Rect
from tests.conftest import add_placed, make_design, random_legal_design


def prepare(design, rect, target_width):
    region = extract_local_region(design, rect)
    bounds = compute_bounds(region)
    feasible, discarded = build_insertion_intervals(region, bounds, target_width)
    return region, feasible, discarded


class TestSingleRowTarget:
    def test_each_feasible_gap_is_a_point(self):
        d = make_design(num_rows=1, row_width=20)
        add_placed(d, 2, 1, 3, 0)
        add_placed(d, 2, 1, 10, 0)
        region, feasible, discarded = prepare(d, Rect(0, 0, 20, 1), 2)
        points = enumerate_insertion_points(region, feasible, discarded, 1)
        assert len(points) == len(feasible) == 3

    def test_row_filter_applies(self):
        d = make_design(num_rows=3, row_width=10)
        region, feasible, discarded = prepare(d, Rect(0, 0, 10, 3), 2)
        points = enumerate_insertion_points(
            region, feasible, discarded, 1, row_ok=lambda r: r == 1
        )
        assert {p.bottom_row for p in points} == {1}


class TestFigure8Validity:
    def test_gaps_across_multirow_cell_do_not_combine(self):
        # Fig. 8: segments 1-2 share multi-row cell a; gap (1, a, R) and
        # gap (2, L, a) have a common cutline but are on opposite sides
        # of a, so they must not form an insertion point.
        d = make_design(num_rows=2, row_width=10)
        a = add_placed(d, 2, 2, 4, 0)
        region, feasible, discarded = prepare(d, Rect(0, 0, 10, 2), 2)
        points = enumerate_insertion_points(region, feasible, discarded, 2)
        keys = {p.key() for p in points}
        # Only the both-left and both-right combinations are valid.
        assert keys == {((0, 0), (1, 0)), ((0, 1), (1, 1))}
        # Sanity: the cross combinations do share cutlines, so naive
        # cutline intersection alone would have accepted them.
        by = {(iv.row_index, iv.gap_index): iv for iv in feasible}
        left_bottom, right_top = by[(0, 0)], by[(1, 1)]
        assert max(left_bottom.x_lo, right_top.x_lo) <= min(
            left_bottom.x_hi, right_top.x_hi
        )

    def test_two_stacked_multirow_cells(self):
        d = make_design(num_rows=2, row_width=14)
        a = add_placed(d, 2, 2, 3, 0)
        b = add_placed(d, 2, 2, 8, 0)
        region, feasible, discarded = prepare(d, Rect(0, 0, 14, 2), 2)
        points = enumerate_insertion_points(region, feasible, discarded, 2)
        keys = {p.key() for p in points}
        # Valid: left of a, between a and b, right of b — never across.
        assert keys == {
            ((0, 0), (1, 0)),
            ((0, 1), (1, 1)),
            ((0, 2), (1, 2)),
        }

    def test_single_row_cells_combine_freely(self):
        d = make_design(num_rows=2, row_width=12)
        add_placed(d, 2, 1, 4, 0)
        add_placed(d, 2, 1, 6, 1)
        region, feasible, discarded = prepare(d, Rect(0, 0, 12, 2), 2)
        points = enumerate_insertion_points(region, feasible, discarded, 2)
        brute = enumerate_insertion_points_bruteforce(region, feasible, 2)
        assert {p.key() for p in points} == {p.key() for p in brute}
        # With only single-row cells, every cutline-compatible pair works.
        assert len(points) == len(brute) > 2


class TestScanlineMatchesBruteForce:
    def test_randomized_equivalence(self):
        for trial in range(60):
            rng = random.Random(trial)
            d = random_legal_design(
                rng,
                num_rows=rng.choice((3, 4, 6)),
                row_width=rng.choice((14, 20)),
                n_cells=rng.randint(4, 14),
                max_height=3,
            )
            target_w = rng.randint(1, 4)
            target_h = rng.randint(1, 3)
            region, feasible, discarded = prepare(
                d, Rect(0, 0, d.floorplan.row_width, d.floorplan.num_rows), target_w
            )
            scan = enumerate_insertion_points(
                region, feasible, discarded, target_h
            )
            brute = enumerate_insertion_points_bruteforce(
                region, feasible, target_h
            )
            scan_keys = sorted(p.key() for p in scan)
            brute_keys = sorted(p.key() for p in brute)
            assert scan_keys == brute_keys, f"trial {trial} diverged"
            # No duplicates from the scanline.
            assert len(scan_keys) == len(set(scan_keys))

    def test_cut_ranges_match_bruteforce(self):
        for trial in range(20):
            rng = random.Random(1000 + trial)
            d = random_legal_design(rng, num_rows=4, row_width=16, n_cells=8)
            region, feasible, discarded = prepare(d, Rect(0, 0, 16, 4), 2)
            scan = {
                p.key(): (p.x_lo, p.x_hi)
                for p in enumerate_insertion_points(region, feasible, discarded, 2)
            }
            brute = {
                p.key(): (p.x_lo, p.x_hi)
                for p in enumerate_insertion_points_bruteforce(region, feasible, 2)
            }
            assert scan == brute


class TestWindowEdges:
    def test_target_taller_than_region_yields_nothing(self):
        d = make_design(num_rows=2, row_width=10)
        region, feasible, discarded = prepare(d, Rect(0, 0, 10, 2), 2)
        assert enumerate_insertion_points(region, feasible, discarded, 5) == []

    def test_missing_row_breaks_vertical_windows(self):
        d = make_design(num_rows=3, row_width=10, blockages=[Rect(0, 1, 10, 1)])
        region, feasible, discarded = prepare(d, Rect(0, 0, 10, 3), 2)
        points = enumerate_insertion_points(region, feasible, discarded, 2)
        assert points == []  # rows 0 and 2 are not consecutive
