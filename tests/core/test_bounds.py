"""Unit tests for leftmost/rightmost placements (paper Fig. 6)."""

import random

import pytest

from repro.core import compute_bounds, extract_local_region
from repro.geometry import Rect
from tests.conftest import add_placed, make_design, random_legal_design


def region_of(design, rect):
    return extract_local_region(design, rect)


class TestSingleRow:
    def test_compaction_both_ways(self):
        d = make_design(num_rows=2, row_width=10)
        a = add_placed(d, 2, 1, 2, 0)
        b = add_placed(d, 3, 1, 5, 0)
        bounds = compute_bounds(region_of(d, Rect(0, 0, 10, 1)))
        assert bounds.x_left(a.id) == 0
        assert bounds.x_left(b.id) == 2  # packed against a
        assert bounds.x_right(b.id) == 7  # 10 - 3
        assert bounds.x_right(a.id) == 5  # 7 - 2

    def test_bounds_respect_local_segment_not_row(self):
        d = make_design(num_rows=2, row_width=20)
        add_placed(d, 2, 1, 4, 0, fixed=True)  # run split at [4, 6)
        a = add_placed(d, 2, 1, 10, 0)
        region = region_of(d, Rect(2, 0, 16, 1))
        bounds = compute_bounds(region)
        assert bounds.x_left(a.id) == region.segments[0].x0
        assert bounds.x_left(a.id) >= 6

    def test_single_cell_full_range(self):
        d = make_design(num_rows=1, row_width=12)
        a = add_placed(d, 3, 1, 5, 0)
        bounds = compute_bounds(region_of(d, Rect(0, 0, 12, 1)))
        assert bounds.x_left(a.id) == 0
        assert bounds.x_right(a.id) == 9


class TestMultiRowCoupling:
    def test_multi_row_cell_takes_tightest_row(self):
        # Fig. 6 flavor: m spans two rows; row 0 has a left neighbor,
        # row 1 is empty, so the row-0 chain binds m's leftmost position.
        d = make_design(num_rows=2, row_width=12)
        a = add_placed(d, 3, 1, 0, 0)
        m = add_placed(d, 2, 2, 6, 0)
        bounds = compute_bounds(region_of(d, Rect(0, 0, 12, 2)))
        assert bounds.x_left(m.id) == 3  # pushed by a, not by row 1
        assert bounds.x_right(m.id) == 10

    def test_chain_through_multi_row_cell(self):
        # a | m (2 rows) | b in the upper row: b's leftmost position must
        # account for m, whose leftmost accounts for a.
        d = make_design(num_rows=2, row_width=20)
        a = add_placed(d, 4, 1, 0, 0)
        m = add_placed(d, 2, 2, 6, 0)
        b = add_placed(d, 3, 1, 12, 1)
        bounds = compute_bounds(region_of(d, Rect(0, 0, 20, 2)))
        assert bounds.x_left(m.id) == 4
        assert bounds.x_left(b.id) == 6  # xL(m) + w(m)
        # Rightward: b binds m from the upper row.
        assert bounds.x_right(b.id) == 17
        assert bounds.x_right(m.id) == 15
        assert bounds.x_right(a.id) == 11


class TestInvariants:
    def test_current_position_within_bounds_randomized(self, rng):
        for trial in range(30):
            d = random_legal_design(random.Random(trial), n_cells=12)
            region = region_of(d, Rect(0, 0, 30, 8))
            bounds = compute_bounds(region)
            for c in region.cells:
                assert bounds.x_left(c.id) <= c.x <= bounds.x_right(c.id)

    def test_leftmost_placement_is_legal(self, rng):
        # Moving every cell to xL simultaneously must stay overlap-free
        # and in-segment (it is a placement, per the paper's definition).
        from repro.checker import verify_placement

        for trial in range(20):
            d = random_legal_design(random.Random(100 + trial), n_cells=12)
            region = region_of(d, Rect(0, 0, 30, 8))
            bounds = compute_bounds(region)
            for c in region.cells:
                d.shift_x(c, bounds.x_left(c.id))
            assert verify_placement(d, check_registration=False) == []

    def test_rightmost_placement_is_legal(self, rng):
        from repro.checker import verify_placement

        for trial in range(20):
            d = random_legal_design(random.Random(200 + trial), n_cells=12)
            region = region_of(d, Rect(0, 0, 30, 8))
            bounds = compute_bounds(region)
            for c in region.cells:
                d.shift_x(c, bounds.x_right(c.id))
            assert verify_placement(d, check_registration=False) == []

    def test_corrupted_region_raises(self):
        d = make_design(num_rows=1, row_width=10)
        a = add_placed(d, 3, 1, 0, 0)
        b = add_placed(d, 3, 1, 5, 0)
        region = region_of(d, Rect(0, 0, 10, 1))
        a.x = 6  # manual corruption: overlaps b and breaks the order
        with pytest.raises(ValueError):
            compute_bounds(region)


class TestUnplacedValidation:
    def test_unplaced_cell_raises_value_error(self):
        # Regression: an unplaced cell in the region used to surface as a
        # bare TypeError from the (x, id) sort; it must be the same
        # "region placement is not legal" ValueError as other corruption.
        d = make_design(num_rows=1, row_width=10)
        a = add_placed(d, 3, 1, 0, 0)
        region = region_of(d, Rect(0, 0, 10, 1))
        a.x = None  # manual corruption after extraction
        with pytest.raises(ValueError, match="region placement is not legal"):
            compute_bounds(region)
        with pytest.raises(ValueError, match=repr(a.name)):
            compute_bounds(region)
