"""Unit tests for the Wu & Chu double-row restriction emulation
(config.double_row_parity, paper ref [10])."""

import random

import pytest

from repro.checker import verify_placement
from repro.core import LegalizerConfig, legalize
from repro.core.config import LegalizerConfig as _Cfg
from tests.conftest import add_unplaced, make_design


def mixed_design(seed=0, n=50):
    rng = random.Random(seed)
    d = make_design(num_rows=10, row_width=40)
    for _ in range(n):
        w, h = rng.choice(((2, 1), (3, 1), (4, 1), (2, 2), (3, 2)))
        add_unplaced(d, w, h, rng.uniform(0, 40 - w), rng.uniform(0, 10 - h))
    return d


class TestRestriction:
    def test_invalid_parity_rejected(self):
        with pytest.raises(ValueError):
            _Cfg(double_row_parity=2)

    @pytest.mark.parametrize("parity", [0, 1])
    def test_double_cells_on_one_parity_only(self, parity):
        d = mixed_design(seed=parity)
        # Relaxed power mode isolates the [10]-style restriction.
        legalize(
            d,
            LegalizerConfig(
                seed=1, power_aligned=False, double_row_parity=parity
            ),
        )
        assert verify_placement(d, power_aligned=False) == []
        for c in d.cells:
            if c.height == 2:
                assert c.y % 2 == parity

    def test_single_and_triple_rows_unrestricted(self):
        d = make_design(num_rows=6, row_width=30)
        s = add_unplaced(d, 3, 1, 5.0, 1.0)
        t = add_unplaced(d, 2, 3, 10.0, 1.0)
        legalize(
            d,
            LegalizerConfig(
                seed=1, power_aligned=False, double_row_parity=0
            ),
        )
        assert s.y == 1  # odd row fine for single
        assert t.y == 1  # and for triple

    def test_restriction_costs_displacement(self):
        # The paper's flexibility argument vs [10]: restricting double
        # cells to one parity cannot help and usually hurts.
        from repro.checker import displacement_stats

        free = mixed_design(seed=5, n=60)
        legalize(free, LegalizerConfig(seed=2, power_aligned=False))
        restricted = mixed_design(seed=5, n=60)
        legalize(
            restricted,
            LegalizerConfig(seed=2, power_aligned=False, double_row_parity=0),
        )
        d_free = displacement_stats(free).avg_sites
        d_res = displacement_stats(restricted).avg_sites
        assert d_free <= d_res + 1e-9
