"""Unit tests for local region extraction (paper Fig. 3 semantics)."""

from repro.core import extract_local_region
from repro.geometry import Rect
from tests.conftest import add_placed, make_design


class TestBasicExtraction:
    def test_empty_window(self):
        d = make_design()
        region = extract_local_region(d, Rect(5, 2, 10, 3))
        assert region.rows() == [2, 3, 4]
        for row in region.rows():
            seg = region.segments[row]
            assert (seg.x0, seg.x1) == (5, 15)
            assert seg.cells == []
        assert region.cells == []

    def test_window_clipped_to_die(self):
        d = make_design(num_rows=4, row_width=10)
        region = extract_local_region(d, Rect(-5, -2, 12, 10))
        assert region.rows() == [0, 1, 2, 3]
        assert region.segments[0].x0 == 0
        assert region.segments[0].x1 == 7

    def test_fully_inside_cell_is_local(self):
        d = make_design()
        c = add_placed(d, 3, 1, 8, 3)
        region = extract_local_region(d, Rect(5, 2, 10, 3))
        assert region.cells == [c]
        assert region.segments[3].cells == [c]

    def test_multi_row_local_cell_in_every_row_list(self):
        d = make_design()
        c = add_placed(d, 2, 2, 8, 2)
        region = extract_local_region(d, Rect(5, 2, 10, 3))
        assert region.cells == [c]
        assert region.segments[2].cells == [c]
        assert region.segments[3].cells == [c]

    def test_cells_ordered_by_x(self):
        d = make_design()
        b = add_placed(d, 2, 1, 11, 2)
        a = add_placed(d, 2, 1, 6, 2)
        region = extract_local_region(d, Rect(5, 2, 10, 3))
        assert [c.name for c in region.segments[2].cells] == [a.name, b.name]


class TestNonLocalBoundaries:
    def test_straddling_cell_is_non_local_and_splits_row(self):
        # Paper Fig. 3 cells a, d, j, k: not completely inside W.
        d = make_design()
        blocker = add_placed(d, 4, 1, 3, 2)  # sticks out of the window
        region = extract_local_region(d, Rect(5, 2, 10, 3))
        assert blocker not in region.cells
        seg = region.segments[2]
        # The local segment starts right of the blocker.
        assert seg.x0 == 7
        assert seg.x1 == 15

    def test_fixed_cell_is_always_non_local(self):
        d = make_design()
        add_placed(d, 2, 1, 8, 2, fixed=True)
        region = extract_local_region(d, Rect(5, 2, 10, 3))
        assert region.cells == []
        assert region.segments[2].x0 == 10  # center-side run chosen

    def test_cell_in_non_chosen_run_is_non_local(self):
        # Paper Fig. 3 cell i: completely inside W but in the run that
        # was not selected as the local segment.
        d = make_design(row_width=40)
        splitter = add_placed(d, 2, 1, 11, 2, fixed=True)
        lonely = add_placed(d, 2, 1, 6, 2)  # left run [5, 11)
        region = extract_local_region(d, Rect(5, 2, 12, 3))
        # Window is [5, 17), center 11: right run [13, 17) is width 4,
        # left run [5, 11) is farther from the center? Both touch the
        # center region; the run containing/closer to x=11 wins.
        seg = region.segments[2]
        assert lonely not in region.cells or seg.x0 <= 6
        # Either way the chosen run must not contain the splitter.
        assert not (seg.x0 <= 11 < seg.x1)

    def test_multi_row_cell_with_incompatible_runs_rejected(self):
        # Paper Fig. 3 cell c: inside W, but its rows select runs that do
        # not both contain it -> it becomes non-local and splits its rows.
        d = make_design(num_rows=4, row_width=20)
        f0 = add_placed(d, 2, 1, 8, 0, fixed=True)  # row 0: runs [0,8),[10,20)
        f1 = add_placed(d, 2, 1, 2, 1, fixed=True)  # row 1: runs [0,2),[4,20)
        m = add_placed(d, 2, 2, 5, 0)  # inside row 1's run, not row 0's
        region = extract_local_region(d, Rect(0, 0, 20, 2))
        assert m not in region.cells
        # Row 1's run was re-split around m (fixed point iteration).
        seg1 = region.segments[1]
        assert seg1.x0 >= 7  # right of m's span [5, 7)

    def test_window_row_fully_blocked_has_no_segment(self):
        d = make_design(num_rows=4, row_width=20, blockages=[Rect(0, 1, 20, 1)])
        region = extract_local_region(d, Rect(2, 0, 10, 3))
        assert 1 not in region.segments
        assert set(region.rows()) == {0, 2}


class TestRunSelection:
    def test_run_containing_center_wins(self):
        d = make_design(row_width=40)
        add_placed(d, 2, 1, 18, 2, fixed=True)  # splits [10, 30) at 18
        region = extract_local_region(d, Rect(10, 2, 20, 1))
        seg = region.segments[2]
        # Window center x = 20; the run [20, 30) contains it.
        assert (seg.x0, seg.x1) == (20, 30)

    def test_one_segment_per_row(self):
        d = make_design(row_width=40)
        add_placed(d, 2, 1, 18, 2, fixed=True)
        add_placed(d, 2, 1, 24, 2, fixed=True)
        region = extract_local_region(d, Rect(10, 2, 20, 1))
        assert list(region.segments) == [2]  # exactly one local segment
