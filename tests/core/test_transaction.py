"""Transactional MLL semantics: journaled rollback and the legality audit.

The headline regression here (TestPartialRealizationCorruption) encodes
the bug the transaction layer was built for: before the journal existed,
a ``RealizationError`` raised after the first row's segment insert left
the target half-registered and pushed neighbors half-shifted — silent
corruption that broke Algorithm 1's retry contract.
"""

import pytest

from repro.checker import verify_placement
from repro.checker.legality import verify_cells
from repro.core import AuditError, LegalizerConfig, MultiRowLocalLegalizer
from repro.core.realization import RealizationError
from repro.db.journal import Transaction
from repro.testing.faults import design_state
from tests.conftest import add_placed, add_unplaced, make_design


def packed_two_row_design():
    """Two rows around a double-row insertion with push chains."""
    d = make_design(num_rows=4, row_width=24)
    add_placed(d, 4, 1, 2, 1, name="r1a")
    add_placed(d, 4, 1, 8, 1, name="r1b")
    add_placed(d, 4, 1, 3, 2, name="r2a")
    add_placed(d, 4, 1, 9, 2, name="r2b")
    t = add_unplaced(d, 4, 2, 6.0, 1.0, name="target")
    return d, t


class TestTryPlaceRollback:
    def test_success_commits_and_detaches_journal(self):
        d, t = packed_two_row_design()
        mll = MultiRowLocalLegalizer(d, LegalizerConfig(rx=10, ry=2))
        assert mll.try_place(t, 6.0, 1.0).success
        assert d.journal is None
        assert verify_placement(d) == []

    def test_failure_leaves_design_untouched(self):
        d = make_design(num_rows=1, row_width=10)
        add_placed(d, 10, 1, 0, 0, fixed=True)  # row is full
        t = add_unplaced(d, 4, 1, 0.0, 0.0)
        before = design_state(d)
        mll = MultiRowLocalLegalizer(d, LegalizerConfig(rx=10, ry=0))
        assert not mll.try_place(t, 0.0, 0.0).success
        assert design_state(d) == before

    def test_exception_during_realization_rolls_back(self):
        """Any exception fired mid-realization restores the exact state."""
        d, t = packed_two_row_design()
        before = design_state(d)

        class Boom(Exception):
            pass

        hits = {"n": 0}

        def hook(entry):
            hits["n"] += 1
            if entry.site == "design.shift_x":
                raise Boom  # mid push chain: the nastiest moment

        d.journal_hook = hook
        mll = MultiRowLocalLegalizer(d, LegalizerConfig(rx=10, ry=2))
        with pytest.raises(Boom):
            mll.try_place(t, 6.0, 1.0)
        d.journal_hook = None
        assert hits["n"] > 1  # the fault really fired mid-flight
        assert design_state(d) == before
        assert not t.is_placed
        # And the design is still fully usable: the same call now works.
        assert mll.try_place(t, 6.0, 1.0).success
        assert verify_placement(d) == []


class TestPartialRealizationCorruption:
    """Satellite regression: RealizationError after the first row's
    segment insert must not corrupt the design (fails on the seed code,
    which had no journal; passes with the transactional layer)."""

    def test_realization_error_after_first_row_insert_restores(self):
        d, t = packed_two_row_design()
        before = design_state(d)
        inserts = {"n": 0}

        def hook(entry):
            if entry.site == "realize.db_segment_insert":
                inserts["n"] += 1
                if inserts["n"] == 1:
                    raise RealizationError(
                        "injected: push drives cell past segment bound"
                    )

        d.journal_hook = hook
        mll = MultiRowLocalLegalizer(d, LegalizerConfig(rx=10, ry=2))
        with pytest.raises(RealizationError):
            mll.try_place(t, 6.0, 1.0)
        d.journal_hook = None

        assert inserts["n"] == 1  # it really stopped after row one
        assert not t.is_placed
        # Byte-identical restoration: positions AND segment orderings.
        assert design_state(d) == before
        assert d.snapshot_positions() == {
            c.id: pos
            for c, pos in zip(
                d.cells, [(2, 1), (8, 1), (3, 2), (9, 2), None]
            )
        }
        assert verify_placement(d, require_all_placed=False) == []

    def test_genuine_realization_error_no_longer_corrupts(self):
        """Drive realize into a real (not injected) RealizationError by
        forcing an insertion point whose pushes cannot fit, then check
        the design survived."""
        from repro.core import (
            build_insertion_intervals,
            compute_bounds,
            enumerate_insertion_points,
            extract_local_region,
            realize_insertion,
        )
        from repro.geometry import Rect

        d = make_design(num_rows=1, row_width=12)
        add_placed(d, 3, 1, 1, 0, name="a")
        add_placed(d, 3, 1, 4, 0, name="b")
        t = add_unplaced(d, 3, 1, 0.0, 0.0, name="t")
        region = extract_local_region(d, Rect(0, 0, 12, 1))
        bounds = compute_bounds(region)
        feasible, discarded = build_insertion_intervals(region, bounds, 3)
        points = enumerate_insertion_points(region, feasible, discarded, 1)
        point = next(
            p
            for p in points
            if p.intervals[0].left is not None
            and p.intervals[0].left.name == "b"
        )
        before = design_state(d)
        # target at x=5 forces b to 2 and a to -1: infeasible push.
        with pytest.raises(RealizationError):
            with Transaction(d):
                realize_insertion(d, region, point, t, 5)
        assert design_state(d) == before
        assert verify_placement(d, require_all_placed=False) == []


class TestAudit:
    def test_audit_passes_on_clean_insertion(self):
        d, t = packed_two_row_design()
        mll = MultiRowLocalLegalizer(
            d, LegalizerConfig(rx=10, ry=2, audit=True)
        )
        assert mll.try_place(t, 6.0, 1.0).success
        assert verify_placement(d) == []

    def test_audit_failure_rolls_back_and_raises(self, monkeypatch):
        d, t = packed_two_row_design()
        before = design_state(d)

        def broken_realize(design, region, point, target, target_x):
            # A realization bug the bounds machinery missed: the target
            # lands overlapping its left neighbor, segment lists go
            # unsorted — exactly what the audit exists to catch.
            journal = design.journal
            target.x, target.y = 3, 1
            if journal is not None:
                journal.note_set_pos(target, None, None, site="bug.set_pos")
            for row in (1, 2):
                seg = design.floorplan.segments_in_row(row)[0]
                seg.cells.insert(0, target)
                if journal is not None:
                    journal.note_list_insert(
                        seg.cells, 0, target, site="bug.insert"
                    )

        monkeypatch.setattr(
            "repro.core.mll.realize_insertion", broken_realize
        )
        mll = MultiRowLocalLegalizer(
            d, LegalizerConfig(rx=10, ry=2, audit=True)
        )
        with pytest.raises(AuditError) as exc_info:
            mll.try_place(t, 6.0, 1.0)
        assert exc_info.value.violations
        # The rollback happened before the raise: state is pristine.
        assert design_state(d) == before
        assert not t.is_placed

    def test_audit_default_follows_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "0")
        assert LegalizerConfig().audit is False
        monkeypatch.setenv("REPRO_AUDIT", "1")
        assert LegalizerConfig().audit is True
        assert LegalizerConfig(audit=False).audit is False

    def test_verify_cells_spots_planted_overlap(self):
        d = make_design(num_rows=1, row_width=20)
        a = add_placed(d, 4, 1, 0, 0)
        b = add_placed(d, 4, 1, 6, 0)
        assert verify_cells(d, [a, b]) == []
        b.x = 2  # plant an overlap behind the database's back
        kinds = {v.kind.value for v in verify_cells(d, [a, b])}
        assert "overlap" in kinds

    def test_verify_cells_spots_missing_registration(self):
        d = make_design(num_rows=1, row_width=20)
        a = add_placed(d, 4, 1, 0, 0)
        seg = d.floorplan.segments_in_row(0)[0]
        seg.cells.remove(a)
        kinds = {v.kind.value for v in verify_cells(d, [a])}
        assert "bad_registration" in kinds


class TestAppsTransactionality:
    def test_move_failure_restores_segment_slots(self):
        from repro.apps.local_move import move_cell

        d = make_design(num_rows=1, row_width=24)
        add_placed(d, 4, 1, 0, 0, name="a")
        b = add_placed(d, 4, 1, 4, 0, name="b")
        add_placed(d, 4, 1, 8, 0, name="c")
        # The destination neighborhood is fixed solid: the move's MLL
        # window (rx=3 around x=18) has no room for a 4-wide cell.
        add_placed(d, 10, 1, 14, 0, fixed=True, name="wall")
        before = design_state(d)
        assert not move_cell(d, b, 18.0, 0.0, LegalizerConfig(rx=3, ry=0))
        assert (b.x, b.y) == (4, 0)
        assert design_state(d) == before
        assert verify_placement(d) == []

    def test_resize_failure_restores_master_and_position(self):
        from repro.apps.sizing import resize_cell

        d = make_design(num_rows=1, row_width=12)
        a = add_placed(d, 4, 1, 0, 0, name="a")
        add_placed(d, 4, 1, 4, 0, fixed=True)
        add_placed(d, 4, 1, 8, 0, fixed=True)
        before = design_state(d)
        wide = d.library.get_or_create(9, 1, None)
        assert not resize_cell(d, a, wide, LegalizerConfig(rx=4, ry=0))
        assert a.master.width == 4
        assert design_state(d) == before

    def test_buffer_failure_removes_cell_and_restores_id_counter(self):
        from repro.apps.buffering import insert_buffer
        from repro.db.netlist import Net, Pin

        d = make_design(num_rows=1, row_width=12)
        a = add_placed(d, 4, 1, 0, 0)
        b = add_placed(d, 4, 1, 4, 0)
        add_placed(d, 4, 1, 8, 0, fixed=True)
        net = Net(
            name="n",
            pins=(Pin(cell=a, dx=1, dy=0.5), Pin(cell=b, dx=1, dy=0.5)),
        )
        d.netlist.add(net)
        n_cells = len(d.cells)
        next_id = d._next_cell_id
        buf = d.library.get_or_create(6, 1, None)
        result = insert_buffer(
            d, net, buf, LegalizerConfig(rx=2, ry=0)
        )
        assert not result.success
        assert len(d.cells) == n_cells
        assert d._next_cell_id == next_id
        assert net in d.netlist.nets  # netlist untouched
