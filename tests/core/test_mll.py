"""Unit tests for the MLL primitive (paper Section 4)."""

import random

import pytest

from repro.checker import verify_placement
from repro.core import EvaluationMode, LegalizerConfig, MultiRowLocalLegalizer
from repro.db import Rail
from tests.conftest import add_placed, add_unplaced, make_design, random_legal_design


class TestSuccess:
    def test_places_in_free_space(self):
        d = make_design()
        t = add_unplaced(d, 3, 1, 10.3, 2.4)
        mll = MultiRowLocalLegalizer(d, LegalizerConfig(rx=8, ry=2))
        result = mll.try_place(t, t.gp_x, t.gp_y)
        assert result.success
        assert (t.x, t.y) == (10, 2)
        assert result.cost == pytest.approx(
            0.3 * d.floorplan.site_width_um + 0.4 * d.floorplan.site_height_um
        )
        assert verify_placement(d) == []

    def test_pushes_neighbors_when_occupied(self):
        d = make_design(num_rows=1, row_width=12)
        a = add_placed(d, 4, 1, 4, 0)
        t = add_unplaced(d, 4, 1, 4.0, 0.0)
        mll = MultiRowLocalLegalizer(d, LegalizerConfig(rx=6, ry=0))
        assert mll.try_place(t, 4.0, 0.0).success
        assert verify_placement(d) == []
        assert t.x is not None and a.x is not None
        assert abs(t.x - 4) <= 4  # t landed near its target

    def test_multi_row_target_respects_parity(self):
        d = make_design(first_rail=Rail.GND)
        t = add_unplaced(d, 2, 2, 5.0, 2.0, rail=Rail.VDD)
        mll = MultiRowLocalLegalizer(d, LegalizerConfig())
        assert mll.try_place(t, 5.0, 2.0).success
        assert t.y % 2 == 1  # VDD-bottom rows are the odd ones
        assert verify_placement(d) == []

    def test_parity_ignored_when_relaxed(self):
        d = make_design(first_rail=Rail.GND)
        t = add_unplaced(d, 2, 2, 5.0, 2.0, rail=Rail.VDD)
        mll = MultiRowLocalLegalizer(d, LegalizerConfig(power_aligned=False))
        assert mll.try_place(t, 5.0, 2.0).success
        assert t.y == 2  # nearest row, parity notwithstanding
        assert verify_placement(d, power_aligned=False) == []

    def test_insertion_points_counted(self):
        d = make_design(num_rows=1, row_width=30)
        add_placed(d, 2, 1, 10, 0)
        t = add_unplaced(d, 2, 1, 10.0, 0.0)
        mll = MultiRowLocalLegalizer(d, LegalizerConfig(rx=5, ry=0))
        result = mll.try_place(t, 10.0, 0.0)
        assert result.success
        assert result.num_insertion_points == 2  # left and right of the cell


class TestAbort:
    def test_full_region_fails_without_mutation(self):
        d = make_design(num_rows=1, row_width=10)
        add_placed(d, 5, 1, 0, 0)
        add_placed(d, 5, 1, 5, 0)
        t = add_unplaced(d, 2, 1, 4.0, 0.0)
        snapshot = d.snapshot_positions()
        mll = MultiRowLocalLegalizer(d, LegalizerConfig(rx=6, ry=0))
        result = mll.try_place(t, 4.0, 0.0)
        assert not result.success
        assert not t.is_placed
        assert d.snapshot_positions() == snapshot

    def test_target_wider_than_any_gap_fails(self):
        d = make_design(num_rows=1, row_width=10)
        t = add_unplaced(d, 20, 1, 0.0, 0.0)
        mll = MultiRowLocalLegalizer(d, LegalizerConfig(rx=30, ry=0))
        assert not mll.try_place(t, 0.0, 0.0).success

    def test_already_placed_target_rejected(self):
        d = make_design()
        t = add_placed(d, 2, 1, 0, 0)
        mll = MultiRowLocalLegalizer(d)
        with pytest.raises(ValueError):
            mll.try_place(t, 0.0, 0.0)


class TestOptimality:
    @pytest.mark.parametrize("trial", range(15))
    def test_exact_mode_never_worse_than_any_candidate(self, trial):
        rng = random.Random(trial)
        d = random_legal_design(rng, num_rows=4, row_width=16, n_cells=8)
        t = add_unplaced(d, rng.randint(1, 3), rng.randint(1, 2), 0, 0,
                         rail=Rail.GND)
        tx = rng.uniform(0, 12)
        ty = rng.uniform(0, 3)
        cfg = LegalizerConfig(rx=16, ry=4, evaluation=EvaluationMode.EXACT)
        mll = MultiRowLocalLegalizer(d, cfg)
        candidates = mll.evaluate_candidates(t, tx, ty)
        if not candidates:
            return
        best = min(c.cost for c in candidates)
        result = mll.try_place(t, tx, ty)
        assert result.success
        assert result.cost == pytest.approx(best)
        assert verify_placement(d, require_all_placed=False) == []

    def test_window_size_matches_paper_formula(self):
        d = make_design()
        t = add_unplaced(d, 3, 2, 10.0, 3.0, rail=Rail.GND)
        mll = MultiRowLocalLegalizer(d, LegalizerConfig(rx=30, ry=5))
        w = mll.window_for(t, 10.0, 3.0)
        assert (w.x, w.y) == (10 - 30, 3 - 5)
        assert w.w == 2 * 30 + 3
        assert w.h == 2 * 5 + 2
