"""Targeted tests for exact critical positions on multi-row push DAGs.

The randomized equivalence tests cover these paths statistically; the
cases here pin the tricky shapes down deterministically: pushes that
fan out through a multi-row cell, diamond-shaped push DAGs where two
chains reconverge, and chains that bind through the *longer* of two
paths (the max in the longest-path recurrence).
"""

import pytest

from repro.core import (
    EvaluationMode,
    build_insertion_intervals,
    compute_bounds,
    enumerate_insertion_points,
    evaluate_insertion_point,
    extract_local_region,
)
from repro.geometry import Rect
from tests.conftest import add_placed, add_unplaced, make_design


def evaluate_all(design, target, tx, ty, mode=EvaluationMode.EXACT):
    fp = design.floorplan
    region = extract_local_region(design, Rect(0, 0, fp.row_width, fp.num_rows))
    bounds = compute_bounds(region)
    feasible, discarded = build_insertion_intervals(region, bounds, target.width)
    points = enumerate_insertion_points(
        region, feasible, discarded, target.height
    )
    return region, [
        evaluate_insertion_point(
            region, p, target, tx, ty,
            fp.site_width_um, fp.site_height_um, mode,
        )
        for p in points
    ]


class TestFanOut:
    def test_push_through_multirow_fans_into_both_rows(self):
        # t -> m (2 rows); m pushes u (row 1) and v (row 0).
        # Exact cost of inserting t at the far left must count all three.
        d = make_design(num_rows=2, row_width=16)
        m = add_placed(d, 2, 2, 3, 0, name="m")
        v = add_placed(d, 3, 1, 5, 0, name="v")
        u = add_placed(d, 3, 1, 6, 1, name="u")
        t = add_unplaced(d, 3, 1, 0.0, 0.0, name="t")
        region, evs = evaluate_all(d, t, 0.0, 0.0)
        gap_left_of_m = next(
            e for e in evs
            if e.point.bottom_row == 0
            and e.point.intervals[0].right is m
        )
        # t at x=0 (its desired spot): m -> 3, v -> 5 (untouched? m ends
        # at 5, v at 5: v stays), u at 6 > m.x1=5: untouched.
        assert gap_left_of_m.target_x == 0
        assert gap_left_of_m.cost == pytest.approx(0.0)

    def test_fan_out_costs_counted(self):
        # Tighter: pushing m right by 2 displaces both u and v.
        d = make_design(num_rows=2, row_width=14)
        m = add_placed(d, 2, 2, 2, 0, name="m")
        v = add_placed(d, 3, 1, 4, 0, name="v")
        u = add_placed(d, 3, 1, 4, 1, name="u")
        t = add_unplaced(d, 4, 1, 0.0, 0.0, name="t")
        region, evs = evaluate_all(d, t, 0.0, 0.0)
        ev = next(
            e for e in evs
            if e.point.bottom_row == 0 and e.point.intervals[0].left is None
        )
        # t at 0 spans [0,4): m -> 4, v -> 6, u -> 6: 2+2+2 = 6 sites.
        sw = d.floorplan.site_width_um
        assert ev.target_x == 0
        assert ev.cost == pytest.approx(6 * sw)


class TestDiamond:
    def test_reconverging_chains_use_the_binding_path(self):
        # Two chains from t to z: t->a->z (row 0) and t->m->z where m is
        # 2-row and z is 2-row; widths differ, so z's critical position
        # comes from the wider chain (the max in the recurrence).
        d = make_design(num_rows=2, row_width=24)
        a = add_placed(d, 5, 1, 4, 0, name="a")  # row 0, wide
        m = add_placed(d, 2, 2, 9, 0, name="mz")  # couples rows
        z = add_placed(d, 3, 1, 12, 1, name="z")  # row 1, right of m
        t = add_unplaced(d, 4, 2, 0.0, 0.0,
                         rail=d.floorplan.rows[0].bottom_rail, name="t")
        region, evs = evaluate_all(d, t, 0.0, 0.0)
        leftmost = next(
            e for e in evs
            if e.point.intervals[0].left is None
            and e.point.intervals[1].left is None
        )
        # t at x=0 spans rows 0-1, width 4:
        #   row 0: a 4->4 (untouched at 4? t ends at 4, a at 4: flush).
        #   row 1: m is t's right neighbor in row 1? m at 9: untouched.
        assert leftmost.cost == pytest.approx(0.0)
        # Push t to x=2: a->6, m: row0 pred a pushes m? a ends at 11 > 9
        # -> m->11, z-> 13. Verify against simulation via cost equality.
        from repro.core import realize_insertion

        snapshot = d.snapshot_positions()
        point = leftmost.point
        realize_insertion(d, region, point, t, 2)
        moved = (
            abs(a.x - 4) + abs(m.x - 9) + abs(z.x - 12)
        ) * d.floorplan.site_width_um
        own = 2 * d.floorplan.site_width_um
        # Exact evaluation at x=2 must equal the realized displacement;
        # evaluate the displacement curve at x=2 directly.
        fp = d.floorplan
        from repro.core.evaluation import (
            _critical_positions_exact,
            _total_cost,
        )
        # Roll back before computing critical positions on the original.
        for row in t.rows_spanned():
            region.segments[row].cells.remove(t)
        region.cells.remove(t)
        t.x = t.y = None
        d.restore_positions(snapshot)
        pairs = _critical_positions_exact(region, point, t.width)
        pairs.append((0.0, 0.0))  # target's own V at desired x=0
        cost_at_2 = _total_cost(pairs, 2) * fp.site_width_um
        assert cost_at_2 == pytest.approx(moved + own)


class TestApproxUnderestimatesChains:
    def test_longer_chain_bigger_gap(self):
        # A three-cell chain: the neighbor-only approximation misses two
        # cells' worth of pushing; exact counts everything.
        d = make_design(num_rows=1, row_width=18)
        add_placed(d, 3, 1, 2, 0)
        add_placed(d, 3, 1, 5, 0)
        add_placed(d, 3, 1, 8, 0)
        t = add_unplaced(d, 4, 1, 0.0, 0.0)
        _, evs_exact = evaluate_all(d, t, 0.0, 0.0, EvaluationMode.EXACT)
        _, evs_approx = evaluate_all(d, t, 0.0, 0.0, EvaluationMode.APPROX)
        exact = next(e for e in evs_exact
                     if e.point.intervals[0].left is None)
        approx = next(e for e in evs_approx
                      if e.point.intervals[0].left is None)
        # Inserting at x=0 pushes the whole chain right by 2 each.
        sw = d.floorplan.site_width_um
        assert exact.cost == pytest.approx(6 * sw)
        assert approx.cost == pytest.approx(2 * sw)  # sees one neighbor
