"""LegalizationResult aggregation (merge / __iadd__)."""

from repro.core import LegalizationResult


def sample(**overrides) -> LegalizationResult:
    base = dict(
        placed=10,
        direct_placements=6,
        mll_successes=4,
        mll_failures=2,
        rounds=3,
        runtime_s=1.5,
        insertion_points_evaluated=40,
        failed_cells=["a"],
    )
    base.update(overrides)
    return LegalizationResult(**base)


class TestMerge:
    def test_counters_add_up(self):
        total = sample().merge(sample(placed=5, direct_placements=1,
                                      mll_successes=3, mll_failures=1,
                                      insertion_points_evaluated=7))
        assert total.placed == 15
        assert total.direct_placements == 7
        assert total.mll_successes == 7
        assert total.mll_failures == 3
        assert total.insertion_points_evaluated == 47
        assert total.mll_calls == 10

    def test_rounds_take_the_maximum(self):
        assert sample(rounds=3).merge(sample(rounds=7)).rounds == 7
        assert sample(rounds=9).merge(sample(rounds=2)).rounds == 9

    def test_runtime_accumulates(self):
        total = sample(runtime_s=1.0).merge(sample(runtime_s=2.5))
        assert total.runtime_s == 3.5

    def test_failed_cells_concatenate_in_order(self):
        total = sample(failed_cells=["a", "b"]).merge(
            sample(failed_cells=["c"])
        )
        assert total.failed_cells == ["a", "b", "c"]

    def test_merge_into_empty_is_identity(self):
        total = LegalizationResult()
        total.merge(sample())
        assert total == sample()

    def test_merge_returns_self_in_place(self):
        total = sample()
        assert total.merge(sample()) is total


class TestIAdd:
    def test_iadd_is_merge(self):
        a = sample()
        b = sample(placed=1, rounds=9, failed_cells=["z"])
        a += b
        assert a.placed == 11
        assert a.rounds == 9
        assert a.failed_cells == ["a", "z"]

    def test_iadd_does_not_mutate_rhs(self):
        a, b = sample(), sample()
        a += b
        assert b == sample()

    def test_iadd_rejects_foreign_types(self):
        a = sample()
        try:
            a += 3  # type: ignore[operator]
        except TypeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected TypeError")
