"""Integration tests: full flows across modules at benchmark scale."""

import pytest

from repro.baselines import abacus_legalize, optimal_legalize, tetris_legalize
from repro.bench import GeneratorConfig, generate_design, make_benchmark
from repro.checker import (
    assert_legal,
    displacement_stats,
    hpwl_stats,
    make_report,
    verify_placement,
)
from repro.core import LegalizerConfig, legalize


class TestBenchmarkFlows:
    @pytest.mark.parametrize("name", ["fft_a", "fft_2", "pci_bridge32_b"])
    def test_named_benchmark_legalizes(self, name):
        design = make_benchmark(name, scale=0.02)
        result = legalize(design, LegalizerConfig(seed=1))
        assert result.placed == len(design.cells)
        assert_legal(design)
        report = make_report(design, result.runtime_s)
        assert report.displacement.avg_sites < 20  # sanity band
        assert abs(report.hpwl.delta_pct) < 20

    def test_high_density_benchmark(self):
        design = make_benchmark("des_perf_1", scale=0.01)
        result = legalize(design, LegalizerConfig(seed=2))
        assert result.placed == len(design.cells)
        assert_legal(design)

    def test_power_relaxation_reduces_displacement(self):
        # The Section 6 claim, on one mid-size design with enough double
        # cells to matter.
        cfg_gen = GeneratorConfig(
            num_cells=600, target_density=0.6, double_row_fraction=0.25, seed=42
        )
        a = generate_design(cfg_gen)
        b = generate_design(cfg_gen)
        legalize(a, LegalizerConfig(seed=9, power_aligned=True))
        legalize(b, LegalizerConfig(seed=9, power_aligned=False))
        da = displacement_stats(a).avg_sites
        db = displacement_stats(b).avg_sites
        assert db < da  # relaxed strictly cheaper with 25% double cells

    def test_hpwl_change_is_small(self):
        # Table 1: ΔHPWL < 0.5% on average; allow slack on small designs.
        design = generate_design(
            GeneratorConfig(num_cells=800, target_density=0.4, seed=3)
        )
        legalize(design, LegalizerConfig(seed=3))
        stats = hpwl_stats(design)
        assert abs(stats.delta_pct) < 5.0


class TestCrossLegalizers:
    def test_all_legalizers_agree_on_legality(self):
        cfg = GeneratorConfig(num_cells=250, target_density=0.5, seed=11)
        for runner, kwargs in (
            (legalize, {"config": LegalizerConfig(seed=1)}),
            (optimal_legalize, {"config": LegalizerConfig(seed=1)}),
            (abacus_legalize, {}),
            (tetris_legalize, {}),
        ):
            design = generate_design(cfg)
            runner(design, **kwargs)
            assert verify_placement(design, require_all_placed=False) == []

    def test_mll_beats_greedy_at_high_density(self):
        # The paper's motivation for give-and-take legalization: at high
        # density, never-move-placed-cells greedy strands cells or pays
        # much more displacement.
        cfg = GeneratorConfig(
            num_cells=400, target_density=0.85, double_row_fraction=0.15, seed=21
        )
        ours = generate_design(cfg)
        greedy = generate_design(cfg)
        result = legalize(ours, LegalizerConfig(seed=2))
        assert result.placed == 400
        g = tetris_legalize(greedy)
        if not g.failed_cells:
            ours_d = displacement_stats(ours).avg_sites
            greedy_d = displacement_stats(greedy).avg_sites
            assert ours_d <= greedy_d
        # else: greedy stranded cells, which is itself the claim.


class TestIncrementalFlow:
    def test_legalize_then_improve_then_edit(self):
        from repro.apps import improve_hpwl, insert_buffer, resize_cell

        design = generate_design(
            GeneratorConfig(num_cells=200, target_density=0.45, seed=13)
        )
        legalize(design, LegalizerConfig(seed=13))
        assert_legal(design)

        stats = improve_hpwl(
            design, LegalizerConfig(seed=13), passes=1, max_moves_per_pass=40
        )
        assert stats.hpwl_after_um <= stats.hpwl_before_um + 1e-9
        assert_legal(design)

        cell = next(c for c in design.movable_cells() if c.height == 1)
        resize_cell(design, cell, design.library.get_or_create(cell.width + 1, 1))
        assert_legal(design)

        net = max(design.netlist, key=lambda n: sum(n.hpwl_sites()))
        insert_buffer(design, net, design.library.get_or_create(1, 1))
        assert_legal(design)
