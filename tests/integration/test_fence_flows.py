"""Integration tests: fence regions through the whole legalization stack."""

import pytest

from repro.bench import GeneratorConfig, generate_design
from repro.baselines import abacus_legalize, optimal_legalize, tetris_legalize
from repro.checker import assert_legal, verify_placement
from repro.core import LegalizerConfig, MultiRowLocalLegalizer, legalize
from repro.db import Design, FenceRegion, Floorplan, Library
from repro.geometry import Rect
from tests.conftest import add_unplaced


def fenced_generated(seed=1, n=400, fences=2):
    return generate_design(
        GeneratorConfig(
            num_cells=n,
            target_density=0.45,
            fence_count=fences,
            fence_area_fraction=0.2,
            seed=seed,
            name="fenced",
        )
    )


class TestGeneratorFences:
    def test_fences_created_and_cells_assigned(self):
        d = fenced_generated()
        assert len(d.floorplan.fences) == 2
        assigned = [c for c in d.cells if c.region is not None]
        assert assigned  # some cells live in fences
        assert len(assigned) < len(d.cells)  # most do not

    def test_fence_assignment_deterministic(self):
        a = fenced_generated(seed=9)
        b = fenced_generated(seed=9)
        assert [c.region for c in a.cells] == [c.region for c in b.cells]


class TestLegalizationWithFences:
    def test_mll_legalizes_fenced_design(self):
        d = fenced_generated(seed=2)
        result = legalize(d, LegalizerConfig(seed=2))
        assert result.placed == len(d.cells)
        assert_legal(d)  # includes the WRONG_REGION check

    def test_every_fenced_cell_inside_its_fence(self):
        d = fenced_generated(seed=3)
        legalize(d, LegalizerConfig(seed=3))
        fences = {f.id: f for f in d.floorplan.fences}
        for cell in d.cells:
            if cell.region is None:
                continue
            fence = fences[cell.region]
            assert fence.contains_point(cell.x, cell.y)
            assert fence.contains_point(
                cell.x + cell.width - 1, cell.y + cell.height - 1
            )

    def test_optimal_handles_fences(self):
        d = fenced_generated(seed=4, n=250)
        optimal_legalize(d, LegalizerConfig(seed=4))
        assert_legal(d)

    def test_greedy_baselines_handle_fences(self):
        for runner in (abacus_legalize, tetris_legalize):
            d = fenced_generated(seed=5, n=250)
            runner(d)
            assert (
                verify_placement(d, require_all_placed=False) == []
            ), runner.__name__


class TestMllFenceBehaviour:
    def build(self):
        fp = Floorplan(
            num_rows=6,
            row_width=30,
            fences=[FenceRegion(id=0, name="f", rects=(Rect(10, 1, 10, 3),))],
        )
        return Design(fp, Library())

    def test_fenced_target_pulled_inside(self):
        d = self.build()
        m = d.library.get_or_create(3, 1)
        t = d.add_cell(m, gp_x=2.0, gp_y=2.0, region=0)  # GP outside fence
        mll = MultiRowLocalLegalizer(d, LegalizerConfig(rx=20, ry=3))
        assert mll.try_place(t, 2.0, 2.0).success
        assert d.floorplan.fences[0].contains_point(t.x, t.y)

    def test_default_target_kept_outside(self):
        d = self.build()
        t = add_unplaced(d, 3, 1, 14.0, 2.0)  # GP inside the fence
        mll = MultiRowLocalLegalizer(d, LegalizerConfig(rx=20, ry=3))
        assert mll.try_place(t, 14.0, 2.0).success
        assert not d.floorplan.fences[0].contains_point(t.x, t.y)

    def test_fenced_cells_never_pushed_out(self):
        # A fenced neighbor may be pushed around inside the fence but the
        # segment boundary (= fence edge) is a hard wall.
        d = self.build()
        m = d.library.get_or_create(8, 1)
        a = d.add_cell(m, gp_x=10.0, gp_y=2.0, region=0)
        d.place(a, 10, 2)
        t = d.add_cell(m, gp_x=10.0, gp_y=2.0, region=0)
        # Row 2 cannot hold both 8-wide cells (the fence row is 10 sites);
        # the target must take another fence row, never spill outside.
        mll = MultiRowLocalLegalizer(d, LegalizerConfig(rx=20, ry=2))
        result = mll.try_place(t, 10.0, 2.0)
        assert result.success
        assert verify_placement(d, require_all_placed=False) == []
        fence = d.floorplan.fences[0]
        for c in (a, t):
            assert fence.contains_point(c.x, c.y)


class TestFenceBookshelf:
    def test_roundtrip(self, tmp_path):
        from repro.io import read_bookshelf, write_bookshelf

        d = fenced_generated(seed=6, n=200)
        legalize(d, LegalizerConfig(seed=6))
        aux = write_bookshelf(d, str(tmp_path))
        d2 = read_bookshelf(aux)
        assert len(d2.floorplan.fences) == len(d.floorplan.fences)
        assert [c.region for c in d2.cells] == [c.region for c in d.cells]
        assert_legal(d2)
