"""Shared test fixtures and design builders."""

from __future__ import annotations

import os
import random

import pytest

# The post-realization legality audit (LegalizerConfig.audit) is opt-in
# for production runs but on by default throughout the test suite: every
# successful MLL insertion in any test is re-checked by the independent
# checker, and a violation rolls the insertion back and fails loudly.
# Export REPRO_AUDIT=0 to measure un-audited behavior locally.
os.environ.setdefault("REPRO_AUDIT", "1")

from repro.db import Design, Floorplan, Library, Rail
from repro.db.cell import Cell


def make_design(
    num_rows: int = 8,
    row_width: int = 40,
    first_rail: Rail = Rail.GND,
    blockages=None,
    name: str = "test",
) -> Design:
    """A fresh empty design on a uniform floorplan."""
    fp = Floorplan(
        num_rows=num_rows,
        row_width=row_width,
        first_rail=first_rail,
        blockages=blockages,
    )
    return Design(fp, Library(), name=name)


def add_placed(
    design: Design,
    width: int,
    height: int,
    x: int,
    y: int,
    rail: Rail | None = None,
    name: str | None = None,
    fixed: bool = False,
) -> Cell:
    """Add a cell and place it at (x, y); GP is set to the same spot."""
    if height % 2 == 0 and rail is None:
        rail = design.floorplan.rows[y].bottom_rail
    master = design.library.get_or_create(width, height, rail)
    cell = design.add_cell(master, gp_x=float(x), gp_y=float(y), name=name, fixed=fixed)
    design.place(cell, x, y)
    return cell


def add_unplaced(
    design: Design,
    width: int,
    height: int,
    gp_x: float,
    gp_y: float,
    rail: Rail | None = None,
    name: str | None = None,
) -> Cell:
    """Add an unplaced cell with a GP position."""
    if height % 2 == 0 and rail is None:
        rail = Rail.VDD
    master = design.library.get_or_create(width, height, rail)
    return design.add_cell(master, gp_x=gp_x, gp_y=gp_y, name=name)


def random_legal_design(
    rng: random.Random,
    num_rows: int = 8,
    row_width: int = 30,
    n_cells: int = 15,
    max_height: int = 3,
) -> Design:
    """A design with cells placed legally at random (GP = position)."""
    design = make_design(num_rows=num_rows, row_width=row_width)
    shapes = [(2, 1), (3, 1), (4, 1), (1, 1)]
    if max_height >= 2:
        shapes += [(2, 2), (3, 2)]
    if max_height >= 3:
        shapes += [(2, 3)]
    for _ in range(n_cells):
        w, h = rng.choice(shapes)
        rail = rng.choice((Rail.VDD, Rail.GND)) if h % 2 == 0 else None
        master = design.library.get_or_create(w, h, rail)
        cell = design.add_cell(master)
        for _attempt in range(300):
            x = rng.randint(0, row_width - w)
            y = rng.randint(0, num_rows - h)
            if design.can_place(cell, x, y):
                design.place(cell, x, y)
                cell.gp_x, cell.gp_y = float(x), float(y)
                break
        else:
            design.cells.remove(cell)
    return design


@pytest.fixture
def design() -> Design:
    """Default empty 8x40 design."""
    return make_design()


@pytest.fixture
def rng() -> random.Random:
    """Seeded RNG for deterministic randomized tests."""
    return random.Random(12345)
