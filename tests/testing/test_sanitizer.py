"""Differential runtime sanitizer tests.

The core contract, asserted three ways:

1. **Soundness (property)**: for randomized designs, every effect the
   runtime trace observes under a frame is contained in that frame's
   static transitive summary — static ⊇ runtime, the over-approximation
   direction the whole analysis is built on.
2. **Transparency**: an instrumented run produces byte-identical
   placements to an uninstrumented one (serial *and* ``workers=2``,
   which additionally exercises the shard-boundary event shipping).
3. **Plumbing units**: event serialization round-trips, absorption
   merges into active traces, the env toggle parses.
"""

from __future__ import annotations

import os
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench import GeneratorConfig, generate_design
from repro.core import LegalizerConfig, legalize
from repro.testing.faults import design_state_digest
from repro.testing.sanitizer import (
    EffectEvent,
    EffectTrace,
    ResourceRecord,
    ResourceTrace,
    ResourceTracer,
    Sanitizer,
    TaintEvent,
    TaintProbe,
    TaintTrace,
    _differential_run,
    absorb_events,
    check_resource_trace,
    check_taint_trace,
    check_trace,
    resource_predictions,
    sanitizer_enabled,
    static_summaries,
)

SETTINGS = settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestPlumbing:
    def test_event_roundtrip(self):
        event = EffectEvent(
            effect="mutates-design",
            primitive="Design.place",
            frames=("repro.core.legalizer.Legalizer.run",),
        )
        assert EffectEvent.deserialize(event.serialize()) == event

    def test_env_toggle(self):
        assert not sanitizer_enabled(env="")
        assert not sanitizer_enabled(env="0")
        assert sanitizer_enabled(env="1")
        assert sanitizer_enabled(env="yes")

    def test_absorb_merges_into_active_trace(self):
        raw = ("journals", "Journal._record", ("repro.db.journal.x",))
        with Sanitizer() as trace:
            absorb_events([raw])
        assert EffectEvent.deserialize(raw) in trace.events

    def test_absorb_without_active_trace_is_noop(self):
        absorb_events([("journals", "Journal._record", ())])  # no crash

    def test_observed_charges_every_frame(self):
        trace = EffectTrace(
            events=[
                EffectEvent("mutates-design", "Design.place", ("a", "b")),
                EffectEvent("journals", "Journal._record", ("b",)),
            ]
        )
        observed = trace.observed()
        assert observed["a"] == frozenset({"mutates-design"})
        assert observed["b"] == frozenset({"mutates-design", "journals"})

    def test_unknown_frame_is_a_gap(self):
        trace = EffectTrace(
            events=[
                EffectEvent(
                    "mutates-design",
                    "Design.place",
                    ("repro.no.such.function",),
                )
            ]
        )
        gaps = check_trace(trace, summaries={})
        assert len(gaps) == 1
        assert "missing from the static model" in gaps[0].reason

    def test_patching_is_transparent_and_restored(self):
        from repro.db.design import Design

        original = Design.place
        with Sanitizer():
            assert Design.place is not original
        assert Design.place is original


class TestStaticCoversRuntime:
    @SETTINGS
    @given(
        num_cells=st.integers(min_value=20, max_value=80),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_serial_legalization_within_static_model(self, num_cells, seed):
        """Property: runtime trace ⊆ static transitive summaries."""
        gen = GeneratorConfig(
            num_cells=num_cells, target_density=0.5, seed=seed
        )
        design = generate_design(gen)
        with Sanitizer() as trace:
            legalize(design, LegalizerConfig(seed=1))
        assert trace.events  # the run demonstrably mutated the design
        gaps = check_trace(trace)
        assert gaps == [], "\n".join(g.render() for g in gaps)

    def test_summaries_are_memoized(self):
        assert static_summaries() is static_summaries()


class TestDifferentialTransparency:
    def test_serial_digest_identical_and_gap_free(self):
        san, bare, gaps, events = _differential_run(
            num_cells=120, seed=7, workers=1
        )
        assert san == bare
        assert gaps == []
        assert events > 0

    def test_workers2_ships_events_across_the_boundary(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        san, bare, gaps, events = _differential_run(
            num_cells=120, seed=7, workers=2
        )
        assert san == bare
        assert gaps == []
        assert events > 0

    def test_serial_and_parallel_agree(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        san1, _, _, _ = _differential_run(num_cells=120, seed=7, workers=1)
        san2, _, _, _ = _differential_run(num_cells=120, seed=7, workers=2)
        assert san1 == san2


class TestResourceTracer:
    def test_closed_resources_are_not_leaks(self, tmp_path):
        import socket

        with ResourceTracer() as trace:
            with open(__file__, "rb"):
                pass
            sock = socket.socket()
            sock.close()
            lock = threading.Lock()
            with lock:
                pass
        kinds = {r.kind for r in trace.records}
        assert {"file", "socket", "lock"} <= kinds
        assert trace.leaks() == []

    def test_dropped_handle_is_listed_but_unattributable(self):
        with ResourceTracer() as trace:
            handle = open(__file__, "rb")
        leaks = trace.leaks()
        assert any(r.obj is handle for r in leaks)
        # A leak from non-repro code (this test) has no repro frames,
        # so the differential check cannot attribute it and skips it.
        assert check_resource_trace(trace, predicted=frozenset()) == []
        handle.close()

    def test_lock_balance_counts_acquire_release(self):
        with ResourceTracer() as trace:
            lock = threading.Lock()
            lock.acquire()
        record = next(r for r in trace.records if r.kind == "lock")
        assert record.balance == 1
        assert record.leaked()
        lock.release()
        assert record.balance == 0
        assert not record.leaked()

    def test_repro_framed_runtime_leak_is_a_gap(self):
        """A leak acquired *inside repro code* that RL13 does not
        statically know must surface as a gap — compiled into a fake
        repro-owned filename so the frame walker attributes it."""
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        source = (
            "def leaky(path):\n"
            "    handle = open(path, 'rb')\n"
            "    return handle\n"
        )
        namespace: dict[str, object] = {}
        code = compile(
            source, os.path.join(root, "serve", "_fake_leak.py"), "exec"
        )
        exec(code, namespace)
        with ResourceTracer() as trace:
            handle = namespace["leaky"](__file__)
        qname = "repro.serve._fake_leak.leaky"
        assert any(qname in r.frames for r in trace.leaks())
        gaps = check_resource_trace(trace, predicted=frozenset())
        assert any(gap.qname == qname for gap in gaps)
        # The same leak inside a statically known RL13 site is
        # explained: runtime ⊆ static is exactly the contract.
        assert (
            check_resource_trace(trace, predicted=frozenset({qname}))
            == []
        )
        handle.close()

    def test_check_deduplicates_by_site_and_detail(self):
        record = ResourceRecord(
            kind="lock",
            detail="threading.Lock",
            frames=("repro.serve.fake.f",),
            balance=1,
        )
        trace = ResourceTrace(records=[record, record])
        gaps = check_resource_trace(trace, predicted=frozenset())
        assert len(gaps) == 1
        assert "never released" in gaps[0].reason

    def test_predictions_are_memoized_qname_sets(self):
        predictions = resource_predictions()
        assert predictions is resource_predictions()
        assert all(q.startswith("repro.") for q in sorted(predictions))

    def test_patching_is_restored(self):
        import socket

        real_socket = socket.socket
        real_open = open
        real_lock = threading.Lock
        with ResourceTracer():
            assert socket.socket is not real_socket
            assert threading.Lock is not real_lock
        assert socket.socket is real_socket
        assert open is real_open
        assert threading.Lock is real_lock


class TestTaintProbe:
    def test_extractor_hits_are_recorded(self):
        from repro.serve import protocol

        with TaintProbe() as trace:
            assert protocol.param_int({"i": 3}, "i") == 3
            assert protocol.param_str({"s": "x"}, "s") == "x"
        names = [e.detail for e in trace.by_kind("sanitizer")]
        assert names == ["param_int", "param_str"]

    def test_config_sink_needs_arguments(self):
        with TaintProbe() as trace:
            LegalizerConfig()  # bare default: carries no wire data
            LegalizerConfig(seed=5)
        sinks = trace.by_kind("sink")
        assert len(sinks) == 1
        assert sinks[0].detail == "config LegalizerConfig"

    def test_write_open_is_a_sink_read_is_not(self, tmp_path):
        with TaintProbe() as trace:
            with open(tmp_path / "out.txt", "w") as fh:
                fh.write("x")
            with open(__file__, "rb"):
                pass
        sinks = trace.by_kind("sink")
        assert [e.detail for e in sinks] == ["filesystem open[w]"]

    def test_serve_stack_sink_without_sanitizer_is_a_gap(self):
        frames = ("repro.serve.session.DesignSession.execute",)
        sink = TaintEvent(
            kind="sink", detail="config EngineConfig",
            thread=1, frames=frames,
        )
        hit = TaintEvent(
            kind="sanitizer", detail="param_int", thread=1, frames=frames
        )
        other_thread = TaintEvent(
            kind="sanitizer", detail="param_int", thread=2, frames=frames
        )
        # No sanitizer at all: gap.
        gaps = check_taint_trace(TaintTrace(events=[sink]))
        assert len(gaps) == 1
        assert "no wire sanitizer upstream" in gaps[0].reason
        # A hit on another thread does not excuse the sink.
        gaps = check_taint_trace(TaintTrace(events=[other_thread, sink]))
        assert len(gaps) == 1
        # Same thread, shared serve frame, sanitizer first: clean.
        assert check_taint_trace(TaintTrace(events=[hit, sink])) == []
        # Sanitizer *after* the sink came too late.
        assert len(check_taint_trace(TaintTrace(events=[sink, hit]))) == 1

    def test_sink_outside_the_serve_stack_is_exempt(self):
        with TaintProbe() as trace:
            LegalizerConfig(seed=9)
        assert trace.by_kind("sink")
        assert check_taint_trace(trace) == []

    def test_patching_is_restored(self):
        from repro.serve import protocol

        original = protocol.param_int
        real_open = open
        with TaintProbe():
            assert protocol.param_int is not original
        assert protocol.param_int is original
        assert open is real_open


class TestCliSmoke:
    def test_run_exits_zero(self, monkeypatch, capsys):
        from repro.testing import sanitizer

        monkeypatch.setenv("REPRO_SANITIZE", "1")
        rc = sanitizer.run(["--cells", "80", "--seed", "3", "--workers", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "OK" in out
        assert "zero gaps" in out
