"""Differential runtime sanitizer tests.

The core contract, asserted three ways:

1. **Soundness (property)**: for randomized designs, every effect the
   runtime trace observes under a frame is contained in that frame's
   static transitive summary — static ⊇ runtime, the over-approximation
   direction the whole analysis is built on.
2. **Transparency**: an instrumented run produces byte-identical
   placements to an uninstrumented one (serial *and* ``workers=2``,
   which additionally exercises the shard-boundary event shipping).
3. **Plumbing units**: event serialization round-trips, absorption
   merges into active traces, the env toggle parses.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench import GeneratorConfig, generate_design
from repro.core import LegalizerConfig, legalize
from repro.testing.faults import design_state_digest
from repro.testing.sanitizer import (
    EffectEvent,
    EffectTrace,
    Sanitizer,
    _differential_run,
    absorb_events,
    check_trace,
    sanitizer_enabled,
    static_summaries,
)

SETTINGS = settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestPlumbing:
    def test_event_roundtrip(self):
        event = EffectEvent(
            effect="mutates-design",
            primitive="Design.place",
            frames=("repro.core.legalizer.Legalizer.run",),
        )
        assert EffectEvent.deserialize(event.serialize()) == event

    def test_env_toggle(self):
        assert not sanitizer_enabled(env="")
        assert not sanitizer_enabled(env="0")
        assert sanitizer_enabled(env="1")
        assert sanitizer_enabled(env="yes")

    def test_absorb_merges_into_active_trace(self):
        raw = ("journals", "Journal._record", ("repro.db.journal.x",))
        with Sanitizer() as trace:
            absorb_events([raw])
        assert EffectEvent.deserialize(raw) in trace.events

    def test_absorb_without_active_trace_is_noop(self):
        absorb_events([("journals", "Journal._record", ())])  # no crash

    def test_observed_charges_every_frame(self):
        trace = EffectTrace(
            events=[
                EffectEvent("mutates-design", "Design.place", ("a", "b")),
                EffectEvent("journals", "Journal._record", ("b",)),
            ]
        )
        observed = trace.observed()
        assert observed["a"] == frozenset({"mutates-design"})
        assert observed["b"] == frozenset({"mutates-design", "journals"})

    def test_unknown_frame_is_a_gap(self):
        trace = EffectTrace(
            events=[
                EffectEvent(
                    "mutates-design",
                    "Design.place",
                    ("repro.no.such.function",),
                )
            ]
        )
        gaps = check_trace(trace, summaries={})
        assert len(gaps) == 1
        assert "missing from the static model" in gaps[0].reason

    def test_patching_is_transparent_and_restored(self):
        from repro.db.design import Design

        original = Design.place
        with Sanitizer():
            assert Design.place is not original
        assert Design.place is original


class TestStaticCoversRuntime:
    @SETTINGS
    @given(
        num_cells=st.integers(min_value=20, max_value=80),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_serial_legalization_within_static_model(self, num_cells, seed):
        """Property: runtime trace ⊆ static transitive summaries."""
        gen = GeneratorConfig(
            num_cells=num_cells, target_density=0.5, seed=seed
        )
        design = generate_design(gen)
        with Sanitizer() as trace:
            legalize(design, LegalizerConfig(seed=1))
        assert trace.events  # the run demonstrably mutated the design
        gaps = check_trace(trace)
        assert gaps == [], "\n".join(g.render() for g in gaps)

    def test_summaries_are_memoized(self):
        assert static_summaries() is static_summaries()


class TestDifferentialTransparency:
    def test_serial_digest_identical_and_gap_free(self):
        san, bare, gaps, events = _differential_run(
            num_cells=120, seed=7, workers=1
        )
        assert san == bare
        assert gaps == []
        assert events > 0

    def test_workers2_ships_events_across_the_boundary(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        san, bare, gaps, events = _differential_run(
            num_cells=120, seed=7, workers=2
        )
        assert san == bare
        assert gaps == []
        assert events > 0

    def test_serial_and_parallel_agree(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        san1, _, _, _ = _differential_run(num_cells=120, seed=7, workers=1)
        san2, _, _, _ = _differential_run(num_cells=120, seed=7, workers=2)
        assert san1 == san2


class TestCliSmoke:
    def test_run_exits_zero(self, monkeypatch, capsys):
        from repro.testing import sanitizer

        monkeypatch.setenv("REPRO_SANITIZE", "1")
        rc = sanitizer.run(["--cells", "80", "--seed", "3", "--workers", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "OK" in out
        assert "zero gaps" in out
