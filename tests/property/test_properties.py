"""Property-based tests (hypothesis) on the core invariants.

Strategies build random *legal* placements plus a random target cell;
the properties assert the contracts the rest of the library depends on:

1. Legalization output is always legal and loses no cell.
2. Leftmost/rightmost bounds sandwich current positions and are
   themselves legal placements.
3. The scanline enumerates exactly the brute-force insertion point set.
4. Exact evaluation equals measured post-realization displacement.
5. MLL either succeeds legally or leaves the design bit-identical.
6. The exhaustive exact optimum equals the MILP optimum.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import solve_local_milp
from repro.bench import GeneratorConfig, generate_design
from repro.checker import verify_placement
from repro.core import (
    EvaluationMode,
    LegalizerConfig,
    MultiRowLocalLegalizer,
    build_insertion_intervals,
    compute_bounds,
    enumerate_insertion_points,
    enumerate_insertion_points_bruteforce,
    extract_local_region,
    legalize,
)
from repro.db import Rail
from repro.geometry import Rect
from tests.conftest import add_unplaced, random_legal_design

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


design_params = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 10_000),
        "num_rows": st.sampled_from([3, 4, 6, 8]),
        "row_width": st.sampled_from([14, 20, 28]),
        "n_cells": st.integers(3, 16),
    }
)

target_params = st.fixed_dictionaries(
    {
        "w": st.integers(1, 4),
        "h": st.integers(1, 3),
        "fx": st.floats(0, 1),
        "fy": st.floats(0, 1),
    }
)


def build(params):
    return random_legal_design(
        random.Random(params["seed"]),
        num_rows=params["num_rows"],
        row_width=params["row_width"],
        n_cells=params["n_cells"],
    )


def add_target(design, tp):
    fp = design.floorplan
    rail = Rail.GND if tp["h"] % 2 == 0 else None
    tx = tp["fx"] * max(0, fp.row_width - tp["w"])
    ty = tp["fy"] * max(0, fp.num_rows - tp["h"])
    return add_unplaced(design, tp["w"], tp["h"], tx, ty, rail=rail), tx, ty


class TestLegalizationInvariant:
    @SETTINGS
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(10, 120),
        density=st.floats(0.15, 0.7),
        power=st.booleans(),
    )
    def test_legalize_generated_designs(self, seed, n, density, power):
        design = generate_design(
            GeneratorConfig(num_cells=n, target_density=density, seed=seed)
        )
        result = legalize(
            design, LegalizerConfig(seed=seed, power_aligned=power)
        )
        assert result.placed == n
        assert verify_placement(design, power_aligned=power) == []


class TestBoundsInvariant:
    @SETTINGS
    @given(params=design_params)
    def test_bounds_sandwich_and_are_legal(self, params):
        design = build(params)
        fp = design.floorplan
        region = extract_local_region(
            design, Rect(0, 0, fp.row_width, fp.num_rows)
        )
        bounds = compute_bounds(region)
        for c in region.cells:
            assert bounds.x_left(c.id) <= c.x <= bounds.x_right(c.id)
        for c in region.cells:
            design.shift_x(c, bounds.x_left(c.id))
        assert verify_placement(design, check_registration=False) == []
        for c in region.cells:
            design.shift_x(c, bounds.x_right(c.id))
        assert verify_placement(design, check_registration=False) == []


class TestEnumerationEquivalence:
    @SETTINGS
    @given(params=design_params, tp=target_params)
    def test_scanline_equals_bruteforce(self, params, tp):
        design = build(params)
        fp = design.floorplan
        region = extract_local_region(
            design, Rect(0, 0, fp.row_width, fp.num_rows)
        )
        bounds = compute_bounds(region)
        feasible, discarded = build_insertion_intervals(region, bounds, tp["w"])
        scan = enumerate_insertion_points(region, feasible, discarded, tp["h"])
        brute = enumerate_insertion_points_bruteforce(region, feasible, tp["h"])
        assert sorted(p.key() for p in scan) == sorted(p.key() for p in brute)


class TestMllContract:
    @SETTINGS
    @given(params=design_params, tp=target_params, power=st.booleans())
    def test_success_is_legal_failure_is_noop(self, params, tp, power):
        design = build(params)
        target, tx, ty = add_target(design, tp)
        snapshot = design.snapshot_positions()
        mll = MultiRowLocalLegalizer(
            design,
            LegalizerConfig(rx=10, ry=3, power_aligned=power),
        )
        result = mll.try_place(target, tx, ty)
        if result.success:
            assert verify_placement(
                design, power_aligned=power, require_all_placed=False
            ) == []
            assert target.is_placed
        else:
            assert design.snapshot_positions() == snapshot


class TestOptimalityEquivalence:
    @SETTINGS
    @given(params=design_params, tp=target_params)
    def test_exact_mll_equals_milp(self, params, tp):
        design = build(params)
        target, tx, ty = add_target(design, tp)
        cfg = LegalizerConfig(rx=8, ry=3, evaluation=EvaluationMode.EXACT)
        mll = MultiRowLocalLegalizer(design, cfg)
        candidates = mll.evaluate_candidates(target, tx, ty)
        region = extract_local_region(design, mll.window_for(target, tx, ty))
        sol = solve_local_milp(design, region, target, tx, ty)
        if candidates:
            assert sol is not None
            assert abs(min(c.cost for c in candidates) - sol.cost_um) < 1e-6
        else:
            assert sol is None
