"""Property-based differential test: object kernel vs SoA kernel.

The SoA kernel's contract is *bit identity*, so the properties assert
exact equality — of ``PlacementBounds`` dicts, of insertion-point
streams, of evaluated target positions and float costs, and of the
final placement digest after a full legalization — never approximate
closeness.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    EvaluationMode,
    Kernel,
    Legalizer,
    LegalizerConfig,
    MultiRowLocalLegalizer,
    build_insertion_intervals,
    compute_bounds,
    enumerate_insertion_points,
    extract_local_region,
)
from repro.core.soa import (
    RegionSoA,
    soa_compute_bounds,
    soa_enumerate_insertion_points,
)
from repro.geometry import Rect
from repro.testing.faults import design_state_digest
from tests.conftest import add_unplaced, random_legal_design

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

design_params = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 10_000),
        "num_rows": st.sampled_from([3, 4, 6, 8]),
        "row_width": st.sampled_from([14, 20, 28]),
        "n_cells": st.integers(3, 16),
    }
)

target_params = st.fixed_dictionaries(
    {
        "w": st.integers(1, 4),
        "h": st.integers(1, 3),
        "fx": st.floats(0, 1),
        "fy": st.floats(0, 1),
        "mode": st.sampled_from(list(EvaluationMode)),
    }
)


def _build(params):
    rng = random.Random(params["seed"])
    return random_legal_design(
        rng,
        num_rows=params["num_rows"],
        row_width=params["row_width"],
        n_cells=params["n_cells"],
    )


@given(params=design_params, tw=st.integers(1, 4), th=st.integers(1, 3))
@SETTINGS
def test_bounds_and_enumeration_bit_identical(params, tw, th):
    design = _build(params)
    region = extract_local_region(
        design, Rect(0, 0, params["row_width"], params["num_rows"])
    )
    if not region.segments:
        return
    expected_bounds = compute_bounds(region)
    rsoa = RegionSoA.from_region(region)
    assert soa_compute_bounds(rsoa) == expected_bounds

    feasible, discarded = build_insertion_intervals(
        region, expected_bounds, tw
    )
    expected_points = enumerate_insertion_points(
        region, feasible, discarded, th
    )
    got_points = soa_enumerate_insertion_points(rsoa, feasible, discarded, th)
    assert got_points == expected_points


@given(params=design_params, target=target_params)
@SETTINGS
def test_evaluated_candidates_bit_identical(params, target):
    design = _build(params)
    t = add_unplaced(
        design,
        target["w"],
        target["h"],
        target["fx"] * (params["row_width"] - target["w"]),
        target["fy"] * (params["num_rows"] - target["h"]),
    )
    kernels = {}
    for kernel in (Kernel.OBJECT, Kernel.SOA):
        mll = MultiRowLocalLegalizer(
            design,
            LegalizerConfig(kernel=kernel, evaluation=target["mode"]),
        )
        kernels[kernel] = mll.evaluate_candidates(t, t.gp_x, t.gp_y)
    expected = kernels[Kernel.OBJECT]
    got = kernels[Kernel.SOA]
    assert len(got) == len(expected)
    for ev_soa, ev_obj in zip(got, expected):
        assert ev_soa.point == ev_obj.point
        assert ev_soa.target_x == ev_obj.target_x
        assert ev_soa.cost == ev_obj.cost  # exact float equality


@given(params=design_params, seed=st.integers(0, 1_000))
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_full_legalization_digest_parity(params, seed):
    digests = {}
    for kernel in (Kernel.OBJECT, Kernel.SOA):
        design = _build(params)
        rng = random.Random(seed)
        for _ in range(6):
            w, h = rng.choice(((1, 1), (2, 1), (3, 1), (2, 2)))
            add_unplaced(
                design,
                w,
                h,
                rng.uniform(0, params["row_width"] - w),
                rng.uniform(0, params["num_rows"] - h),
            )
        # quarantine: a randomly infeasible instance must complete (with
        # the same stuck set) instead of raising LegalizationError.
        result = Legalizer(
            design,
            LegalizerConfig(seed=seed, kernel=kernel, quarantine=True),
        ).run()
        stuck = tuple(s.cell_id for s in result.stuck.cells)
        digests[kernel] = (result.placed, stuck, design_state_digest(design))
    assert digests[Kernel.OBJECT] == digests[Kernel.SOA]
