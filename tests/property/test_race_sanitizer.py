"""Property: the runtime race trace is contained in the static
predictions, whatever the workload.

Two drivers with every tracer armed: the sharded engine differential
at ``workers=2`` (process parallelism, effect + race + resource
tracing) and a live serve load with concurrent conflicting ECOs
(thread + event-loop parallelism, plus the taint probe).  Zero gaps
means every observed await-in-transaction, in-transaction mutation and
under-lock mutation landed in a frame the static concurrency model
predicted, every unreleased resource was a statically known RL13 site,
and every serve-stack sink ran downstream of a wire sanitizer — the
differential contracts RL9-RL13 are trusted on.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.testing.sanitizer import (
    ENV_FLAG,
    _differential_run,
    _serve_load_run,
)

SETTINGS = settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _with_worker_tracing(fn, *args, **kwargs):
    """Run *fn* with shard-worker-side tracing armed, restoring env."""
    before = os.environ.get(ENV_FLAG)
    os.environ[ENV_FLAG] = "1"
    try:
        return fn(*args, **kwargs)
    finally:
        if before is None:
            del os.environ[ENV_FLAG]
        else:
            os.environ[ENV_FLAG] = before


@SETTINGS
@given(seed=st.integers(0, 10_000))
def test_workers2_run_stays_inside_static_predictions(seed):
    sanitized, bare, gaps, events = _with_worker_tracing(
        _differential_run, 60, seed, workers=2
    )
    assert sanitized == bare  # instrumentation is observation-only
    assert events > 0
    assert gaps == []


@SETTINGS
@given(
    seed=st.integers(0, 10_000),
    clients=st.integers(2, 4),
)
def test_serve_load_race_trace_is_predicted(seed, clients):
    digest, gaps, events, race_events, resources, taint = _serve_load_run(
        48, seed, clients=clients, ecos_per_client=3
    )
    assert len(digest) == 64  # the session survived to a digest
    assert events > 0
    assert race_events > 0
    assert resources > 0  # sockets/locks of the serve stack were seen
    assert taint > 0  # extractors and sinks of the serve stack were seen
    assert gaps == []
