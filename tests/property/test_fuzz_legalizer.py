"""Fuzzing the legalizer across the full design space.

Wider-ranging than tests/property/test_properties.py: designs here mix
blockages, fence regions, triple-row cells, high densities, and both
power modes — the combinations that shake out interactions between
features added at different times.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench import GeneratorConfig, generate_design
from repro.checker import verify_placement
from repro.core import LegalizerConfig, legalize
from repro.core.config import CellOrder

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


design_space = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 100_000),
        "n": st.integers(20, 250),
        "density": st.floats(0.1, 0.75),
        "doubles": st.floats(0.0, 0.3),
        "triples": st.floats(0.0, 0.1),
        "blockages": st.sampled_from([0.0, 0.0, 0.1]),
        "fences": st.sampled_from([0, 0, 1, 2]),
    }
)

legalizer_space = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 1000),
        "power": st.booleans(),
        "order": st.sampled_from(list(CellOrder)),
        "rx": st.sampled_from([10, 30]),
        "ry": st.sampled_from([2, 5]),
    }
)


@SETTINGS
@given(d=design_space, l=legalizer_space)
def test_legalizer_fuzz(d, l):
    # Operating-envelope clamps.  Algorithm 1 is a heuristic with no
    # completeness guarantee: on toy dies where fences/blockages/triples
    # fragment the space and the window is small, retries can fail to
    # find the (existing) solution — the paper's driver has the same
    # property, its benchmarks just never exercise that corner.  The
    # clamps keep the fuzz inside the regimes the algorithm targets
    # while still mixing every feature.
    density = d["density"]
    triples = d["triples"]
    if d["fences"] or d["blockages"]:
        density = min(density, 0.6)
    if d["n"] < 60:
        triples = 0.0
    design = generate_design(
        GeneratorConfig(
            num_cells=d["n"],
            target_density=density,
            double_row_fraction=d["doubles"],
            triple_row_fraction=triples,
            blockage_fraction=d["blockages"],
            fence_count=d["fences"],
            seed=d["seed"],
        )
    )
    config = LegalizerConfig(
        seed=l["seed"],
        power_aligned=l["power"],
        order=l["order"],
        rx=l["rx"] if density <= 0.6 else 30,
        ry=l["ry"] if density <= 0.6 else 5,
    )
    result = legalize(design, config)
    assert result.placed == d["n"]
    assert verify_placement(design, power_aligned=l["power"]) == []


@SETTINGS
@given(
    seed=st.integers(0, 100_000),
    n=st.integers(50, 200),
    density=st.floats(0.3, 0.6),
)
def test_gp_flow_fuzz(seed, n, density):
    from repro.gp import GlobalPlacerConfig, global_place

    design = generate_design(
        GeneratorConfig(num_cells=n, target_density=density, seed=seed)
    )
    for cell in design.cells:
        cell.gp_x = cell.gp_y = 0.0
    global_place(design, GlobalPlacerConfig(seed=seed, iterations=6))
    fp = design.floorplan
    for cell in design.cells:
        assert 0 <= cell.gp_x <= fp.row_width - cell.width
        assert 0 <= cell.gp_y <= fp.num_rows - cell.height
    legalize(design, LegalizerConfig(seed=seed))
    assert verify_placement(design) == []


@SETTINGS
@given(
    seed=st.integers(0, 100_000),
    n=st.integers(30, 150),
    edits=st.integers(1, 12),
)
def test_incremental_edit_fuzz(seed, n, edits):
    """Random interleaving of moves, resizes and buffer insertions keeps
    the placement legal at every step."""
    import random

    from repro.apps import insert_buffer, move_cell, resize_cell

    design = generate_design(
        GeneratorConfig(
            num_cells=n, target_density=0.4, nets_per_cell=1.0, seed=seed
        )
    )
    legalize(design, LegalizerConfig(seed=seed))
    rng = random.Random(seed)
    cfg = LegalizerConfig(seed=seed)
    for _ in range(edits):
        op = rng.randrange(3)
        if op == 0:
            cell = rng.choice(list(design.movable_cells()))
            move_cell(
                design,
                cell,
                rng.uniform(0, design.floorplan.row_width - cell.width),
                rng.uniform(0, design.floorplan.num_rows - cell.height),
                cfg,
            )
        elif op == 1:
            cell = rng.choice(
                [c for c in design.movable_cells() if c.height == 1]
            )
            master = design.library.get_or_create(
                max(1, cell.width + rng.choice((-1, 1))), 1
            )
            resize_cell(design, cell, master, cfg)
        else:
            nets = [net for net in design.netlist if len(net.pins) >= 2]
            if nets:
                insert_buffer(
                    design,
                    rng.choice(nets),
                    design.library.get_or_create(1, 1),
                    cfg,
                )
        assert verify_placement(design) == []
