"""Checkpoint/resume: fingerprinting, atomic writes, resume equivalence.

The contract under test: a run that is interrupted after any subset of
shards completed can resume from its checkpoint and finish with
coordinates byte-identical to an uninterrupted run — and a checkpoint
can never be spliced into a *different* run (fingerprint mismatch).
"""

import os
import pickle

import pytest

from repro.bench import GeneratorConfig, generate_design
from repro.checker import verify_placement
from repro.core import LegalizerConfig
from repro.engine import (
    CheckpointError,
    CheckpointManager,
    CheckpointState,
    EngineConfig,
    ResumeMismatchError,
    ShardRetriesExhaustedError,
    legalize_sharded,
    load_checkpoint,
    partition_design,
    run_fingerprint,
    save_checkpoint,
    shard_seed,
)
from repro.testing import ShardFaultSpec, design_state_digest

GEN = GeneratorConfig(num_cells=1200, target_density=0.5, seed=4)
CFG = LegalizerConfig(seed=1)
ENG = dict(
    workers=2, shards=2, serial_threshold=0,
    backoff_base_s=0.01, backoff_max_s=0.05,
)


def fresh_design():
    return generate_design(GEN)


def coords(design):
    return [(c.name, c.x, c.y) for c in design.cells]


@pytest.fixture(scope="module")
def reference():
    """Coordinates and digest of an uninterrupted, uncheckpointed run."""
    design = fresh_design()
    result = legalize_sharded(design, CFG, EngineConfig(**ENG))
    assert result.parallel
    return coords(design), design_state_digest(design)


# ----------------------------------------------------------------------
# Fingerprint
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_deterministic_and_sensitive(self):
        design = fresh_design()
        engine = EngineConfig(**ENG)
        part = partition_design(design, CFG, engine)
        fp1 = run_fingerprint(design, CFG, part)
        fp2 = run_fingerprint(fresh_design(), CFG, part)
        assert fp1 == fp2  # pure function of (design, config, partition)

        other_cfg = LegalizerConfig(seed=2)
        other_part = partition_design(design, other_cfg, engine)
        assert run_fingerprint(design, other_cfg, other_part) != fp1

        moved = fresh_design()
        moved.cells[0].gp_x += 1.0
        assert run_fingerprint(moved, CFG, part) != fp1


# ----------------------------------------------------------------------
# Save / load
# ----------------------------------------------------------------------
class TestPersistence:
    @staticmethod
    def _state():
        return CheckpointState(
            fingerprint="abc", seed=1, num_shards=2,
            shard_seeds={0: shard_seed(1, 0), 1: shard_seed(1, 1)},
        )

    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        state = self._state()
        save_checkpoint(path, state)
        loaded = load_checkpoint(path)
        assert loaded.fingerprint == "abc"
        assert loaded.shard_seeds == state.shard_seeds
        assert loaded.completed == {}
        assert loaded.telemetry_watermark == 0

    def test_atomic_no_temp_leftovers(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        save_checkpoint(path, self._state())
        save_checkpoint(path, self._state())  # overwrite path too
        leftovers = [
            f for f in os.listdir(tmp_path) if f.startswith(".ckpt-")
        ]
        assert leftovers == []
        assert os.path.exists(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(str(tmp_path / "absent.ckpt"))

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "torn.ckpt"
        path.write_bytes(b"\x80\x05 definitely not a checkpoint")
        with pytest.raises(CheckpointError, match="unreadable"):
            load_checkpoint(str(path))

    def test_wrong_format_raises(self, tmp_path):
        path = tmp_path / "old.ckpt"
        with open(path, "wb") as handle:
            pickle.dump({"format": 999, "state": self._state()}, handle)
        with pytest.raises(CheckpointError, match="unsupported format"):
            load_checkpoint(str(path))

    def test_truncated_snapshot_names_the_file(self, tmp_path):
        """A checkpoint cut short mid-write (disk full, SIGKILL during
        a non-atomic copy) fails the checksum and the error names the
        offending file so the operator knows what to delete."""
        path = str(tmp_path / "torn.ckpt")
        save_checkpoint(path, self._state())
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) - 7])  # lose the tail
        with pytest.raises(
            CheckpointError, match="truncated or corrupt"
        ) as excinfo:
            load_checkpoint(path)
        assert "torn.ckpt" in str(excinfo.value)
        assert "--resume" in str(excinfo.value)

    def test_flipped_byte_fails_checksum(self, tmp_path):
        """Silent bitrot inside the pickle body — not just truncation —
        is caught by the sha256 frame before unpickling runs."""
        path = str(tmp_path / "rot.ckpt")
        save_checkpoint(path, self._state())
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        with pytest.raises(CheckpointError, match="truncated or corrupt"):
            load_checkpoint(path)

    def test_legacy_unframed_checkpoint_still_loads(self, tmp_path):
        """Pre-checksum snapshots (raw pickle, no magic) keep loading so
        an in-flight resume survives the format upgrade."""
        path = tmp_path / "legacy.ckpt"
        with open(path, "wb") as handle:
            pickle.dump({"format": 1, "state": self._state()}, handle)
        loaded = load_checkpoint(str(path))
        assert loaded.fingerprint == "abc"


# ----------------------------------------------------------------------
# Manager basics
# ----------------------------------------------------------------------
class TestManager:
    def test_cadence_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(str(tmp_path / "x.ckpt"), every=0)

    def test_record_before_open_raises(self, tmp_path):
        manager = CheckpointManager(str(tmp_path / "x.ckpt"))
        with pytest.raises(CheckpointError, match="before open"):
            manager.record(object())

    def test_flush_before_open_is_noop(self, tmp_path):
        path = tmp_path / "x.ckpt"
        CheckpointManager(str(path)).flush()
        assert not path.exists()

    def test_cadence_batches_writes(self, tmp_path):
        """every=2: the file appears only after the second record."""
        # Harvest two real ShardOutcomes from a checkpointed run.
        donor_path = str(tmp_path / "donor.ckpt")
        donor = fresh_design()
        legalize_sharded(
            donor, CFG, EngineConfig(**ENG),
            checkpoint=CheckpointManager(donor_path),
        )
        outcomes = load_checkpoint(donor_path).completed
        assert set(outcomes) == {0, 1}

        path = str(tmp_path / "run.ckpt")
        design = fresh_design()
        engine = EngineConfig(**ENG)
        part = partition_design(design, CFG, engine)

        manager = CheckpointManager(path, every=2)
        manager.open(design, CFG, part)
        manager.record(outcomes[0])
        assert not os.path.exists(path)
        manager.record(outcomes[1])
        assert os.path.exists(path)
        assert set(load_checkpoint(path).completed) == {0, 1}


# ----------------------------------------------------------------------
# Resume equivalence
# ----------------------------------------------------------------------
class TestResume:
    def test_full_checkpoint_resume_skips_all_shards(
        self, tmp_path, reference
    ):
        """Resuming a *finished* shard phase dispatches no workers and
        still reproduces the exact placement (seam pass re-runs)."""
        ref_coords, ref_digest = reference
        path = str(tmp_path / "run.ckpt")

        first = fresh_design()
        legalize_sharded(
            first, CFG, EngineConfig(**ENG),
            checkpoint=CheckpointManager(path),
        )
        assert coords(first) == ref_coords

        resumed = fresh_design()
        result = legalize_sharded(
            resumed, CFG, EngineConfig(**ENG),
            checkpoint=CheckpointManager(path, resume=True),
        )
        assert result.parallel
        assert sorted(result.supervision.skipped_shards) == [0, 1]
        # No pool attempt was ever dispatched.
        assert result.supervision.attempts == []
        assert coords(resumed) == ref_coords
        assert design_state_digest(resumed) == ref_digest

    def test_partial_checkpoint_reruns_only_missing_shard(
        self, tmp_path, reference
    ):
        """Drop one shard from the snapshot (simulating a kill between
        flushes): resume re-runs exactly that shard, byte-identical."""
        ref_coords, ref_digest = reference
        path = str(tmp_path / "run.ckpt")

        first = fresh_design()
        legalize_sharded(
            first, CFG, EngineConfig(**ENG),
            checkpoint=CheckpointManager(path),
        )
        state = load_checkpoint(path)
        assert set(state.completed) == {0, 1}
        del state.completed[1]
        save_checkpoint(path, state)

        resumed = fresh_design()
        result = legalize_sharded(
            resumed, CFG, EngineConfig(**ENG),
            checkpoint=CheckpointManager(path, resume=True),
        )
        assert result.supervision.skipped_shards == [0]
        dispatched = {a.shard_id for a in result.supervision.attempts}
        assert dispatched == {1}
        assert verify_placement(resumed) == []
        assert coords(resumed) == ref_coords
        assert design_state_digest(resumed) == ref_digest
        # The resumed run rewrote a complete checkpoint.
        assert set(load_checkpoint(path).completed) == {0, 1}

    def test_aborted_run_resumes_byte_identical(self, tmp_path, reference):
        """End-to-end kill/resume: shard 0 fails every rung with
        serial_fallback off, so the run aborts — but shard 1's outcome
        is already checkpointed, and the resume finishes the job."""
        ref_coords, ref_digest = reference
        path = str(tmp_path / "run.ckpt")

        design = fresh_design()
        with pytest.raises(ShardRetriesExhaustedError):
            legalize_sharded(
                design, CFG,
                EngineConfig(**ENG, max_shard_retries=0,
                             serial_fallback=False),
                checkpoint=CheckpointManager(path),
                fault=ShardFaultSpec(shard_id=0, mode="raise", attempts=99),
            )
        state = load_checkpoint(path)
        assert set(state.completed) == {1}  # the healthy shard survived

        resumed = fresh_design()
        result = legalize_sharded(
            resumed, CFG, EngineConfig(**ENG),
            checkpoint=CheckpointManager(path, resume=True),
        )
        assert result.supervision.skipped_shards == [1]
        assert "resumed=1" in result.supervision.summary()
        assert verify_placement(resumed) == []
        assert coords(resumed) == ref_coords
        assert design_state_digest(resumed) == ref_digest

    def test_resume_refuses_different_run(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        design = fresh_design()
        legalize_sharded(
            design, CFG, EngineConfig(**ENG),
            checkpoint=CheckpointManager(path),
        )
        other = fresh_design()
        with pytest.raises(ResumeMismatchError):
            legalize_sharded(
                other, LegalizerConfig(seed=2), EngineConfig(**ENG),
                checkpoint=CheckpointManager(path, resume=True),
            )

    def test_resume_missing_file_raises(self, tmp_path):
        design = fresh_design()
        with pytest.raises(CheckpointError):
            legalize_sharded(
                design, CFG, EngineConfig(**ENG),
                checkpoint=CheckpointManager(
                    str(tmp_path / "absent.ckpt"), resume=True
                ),
            )

    def test_checkpoint_records_telemetry_watermark(self, tmp_path):
        from repro.core.instrumentation import MllTelemetry

        path = str(tmp_path / "run.ckpt")
        design = fresh_design()
        telemetry = MllTelemetry()
        legalize_sharded(
            design, CFG, EngineConfig(**ENG),
            telemetry=telemetry,
            checkpoint=CheckpointManager(path),
        )
        state = load_checkpoint(path)
        assert state.telemetry_watermark > 0
        # Watermark counts shard-phase records only (seam pass excluded).
        assert state.telemetry_watermark <= len(telemetry.records)
