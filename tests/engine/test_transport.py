"""Transport seam: selection, injection, and LocalTransport parity.

PR 8 put a :class:`~repro.engine.transport.ShardTransport` between the
executor and the CPUs.  The contract under test here: the default
``LocalTransport`` is a zero-behavior refactor of the old executor
paths, ``make_transport`` selects by config, and an injected transport
is actually the one the executor uses.
"""

import pytest

from repro.bench import GeneratorConfig, generate_design
from repro.core import LegalizerConfig
from repro.engine import (
    EngineConfig,
    LocalTransport,
    ShardTransport,
    TransportResult,
    legalize_sharded,
    make_transport,
)
from repro.engine.supervisor import SupervisionReport
from repro.testing import design_state_digest

GEN = GeneratorConfig(num_cells=900, target_density=0.5, seed=6)
CFG = LegalizerConfig(seed=1)
ENG = dict(
    workers=2, shards=2, serial_threshold=0,
    backoff_base_s=0.01, backoff_max_s=0.05,
)


def fresh_design():
    return generate_design(GEN)


class CapturingTransport(ShardTransport):
    """Delegates to LocalTransport but records what it was handed."""

    name = "capture"

    def __init__(self, engine):
        self.inner = LocalTransport(engine)
        self.calls = 0
        self.tasks = []

    def execute(self, tasks, *, workers, on_outcome=None, completed=None):
        self.calls += 1
        self.tasks = list(tasks)
        return self.inner.execute(
            tasks,
            workers=workers,
            on_outcome=on_outcome,
            completed=completed,
        )


# ----------------------------------------------------------------------
class TestSelection:
    def test_default_is_local(self):
        transport = make_transport(EngineConfig())
        assert isinstance(transport, LocalTransport)
        assert transport.name == "local"

    def test_tcp_is_selected_and_binds_eagerly(self):
        from repro.engine.remote import TcpTransport

        engine = EngineConfig(transport="tcp", bind_port=0)
        transport = make_transport(engine)
        try:
            assert isinstance(transport, TcpTransport)
            assert transport.name == "tcp"
            # Port is known before any worker starts.
            assert transport.port > 0
            assert transport.host == "127.0.0.1"
        finally:
            transport.close()

    def test_engine_result_reports_transport(self):
        result = legalize_sharded(fresh_design(), CFG, EngineConfig(**ENG))
        assert result.parallel
        assert result.transport == "local"


# ----------------------------------------------------------------------
class TestInjection:
    def test_injected_transport_is_used_and_byte_identical(self):
        baseline = fresh_design()
        legalize_sharded(baseline, CFG, EngineConfig(**ENG))

        design = fresh_design()
        engine = EngineConfig(**ENG)
        transport = CapturingTransport(engine)
        result = legalize_sharded(design, CFG, engine, transport=transport)
        assert result.transport == "capture"
        assert transport.calls == 1
        assert sorted(t.shard_id for t in transport.tasks) == [0, 1]
        assert design_state_digest(design) == design_state_digest(baseline)


# ----------------------------------------------------------------------
class TestLocalPaths:
    @pytest.fixture(scope="class")
    def tasks(self):
        """Real shard tasks, captured from a real partitioned run."""
        engine = EngineConfig(**ENG)
        transport = CapturingTransport(engine)
        legalize_sharded(fresh_design(), CFG, engine, transport=transport)
        return transport.tasks

    def test_inprocess_honors_completed_and_hook(self, tasks):
        engine = EngineConfig(**ENG)
        local = LocalTransport(engine)
        first = local.execute(tasks, workers=1)
        assert first.workers == 1
        assert first.supervision is None  # unsupervised by construction

        done = {tasks[0].shard_id: first.outcomes[0]}
        fired = []
        second = local.execute(
            tasks, workers=1, on_outcome=fired.append, completed=done
        )
        # The completed shard is returned verbatim, never recomputed,
        # and the hook fires only for newly computed outcomes.
        assert [o.shard_id for o in fired] == [tasks[1].shard_id]
        assert second.outcomes[0] is first.outcomes[0]
        assert [
            o.placements for o in second.outcomes
        ] == [o.placements for o in first.outcomes]

    def test_supervised_path_reports(self, tasks):
        engine = EngineConfig(**ENG)
        result = LocalTransport(engine).execute(tasks, workers=2)
        assert result.supervision is not None
        assert result.workers == 2
        assert not result.serial_fallback
        serial = LocalTransport(engine).execute(tasks, workers=1)
        assert [o.placements for o in result.outcomes] == [
            o.placements for o in serial.outcomes
        ]


# ----------------------------------------------------------------------
class TestTransportResult:
    def test_serial_fallback_defaults_false(self):
        assert TransportResult().serial_fallback is False

    def test_serial_fallback_follows_supervision(self):
        report = SupervisionReport()
        assert TransportResult(supervision=report).serial_fallback is False
        report.serial_fallback = True
        assert TransportResult(supervision=report).serial_fallback is True
