"""TCP transport chaos suite: leases, dedupe, recovery, byte-identity.

The contract under test is the distributed twin of the supervisor's:
*any* schedule of worker deaths, reconnects, stalls, and duplicate
deliveries yields a final placement byte-identical to a fault-free
serial run — remote execution decides only where a shard runs, never
what it computes.  Faults are injected with
:mod:`repro.testing.netfaults`; workers run as real child processes
speaking the real NDJSON wire over localhost.
"""

import threading

import pytest

from repro.bench import GeneratorConfig, generate_design
from repro.checker import verify_placement
from repro.core import LegalizerConfig
from repro.engine import (
    EngineConfig,
    RemoteProtocolError,
    TcpTransport,
    TransportError,
    WorkerConfig,
    WorkerUnavailableError,
    legalize_sharded,
    spawn_worker_process,
)
from repro.engine.remote import _connect, lease_id
from repro.engine.wire import (
    decode_message,
    encode_message,
    message_float,
    message_int,
    message_str,
    pack_payload,
    unpack_payload,
)
from repro.testing import NetFaultSpec, design_state_digest, netfault_from_env

GEN = GeneratorConfig(num_cells=700, target_density=0.5, seed=9)
CFG = LegalizerConfig(seed=1)


def fresh_design():
    return generate_design(GEN)


def remote_engine(**overrides):
    base = dict(
        workers=2, shards=2, serial_threshold=0,
        transport="tcp", bind_host="127.0.0.1", bind_port=0,
        lease_ttl_s=0.5, heartbeat_interval_s=0.1,
        worker_wait_s=20.0, drain_grace_s=2.0,
        backoff_base_s=0.01, backoff_max_s=0.05,
    )
    base.update(overrides)
    return EngineConfig(**base)


def worker_cfg(transport, name, fault=None):
    return WorkerConfig(
        host=transport.host,
        port=transport.port,
        name=name,
        connect_retries=5,
        connect_backoff_s=0.05,
        netfault=fault,
    )


def run_remote(engine, faults, design):
    """Coordinate *design* over TCP with one worker per fault entry."""
    transport = TcpTransport(engine)
    procs = [
        spawn_worker_process(worker_cfg(transport, f"w{i}", fault))
        for i, fault in enumerate(faults)
    ]
    try:
        result = legalize_sharded(design, CFG, engine, transport=transport)
    finally:
        for proc in procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
    return result


@pytest.fixture(scope="module")
def reference():
    """Coordinates and digest of a fault-free serial (workers=1) run."""
    design = fresh_design()
    legalize_sharded(
        design, CFG,
        EngineConfig(workers=1, shards=2, serial_threshold=0),
    )
    coords = [(c.name, c.x, c.y) for c in design.cells]
    return coords, design_state_digest(design)


def assert_identical(design, reference):
    ref_coords, ref_digest = reference
    assert verify_placement(design) == []
    assert [(c.name, c.x, c.y) for c in design.cells] == ref_coords
    assert design_state_digest(design) == ref_digest


# ----------------------------------------------------------------------
# Wire codec
# ----------------------------------------------------------------------
class TestWireCodec:
    def test_message_roundtrip(self):
        message = {"op": "steal", "n": 3, "f": 0.5, "s": "x"}
        assert decode_message(encode_message(message)) == message

    def test_decode_rejects_malformed_lines(self):
        with pytest.raises(RemoteProtocolError, match="not NDJSON"):
            decode_message(b"\xff\xfe not json\n")
        with pytest.raises(RemoteProtocolError, match="JSON object"):
            decode_message(b"[1,2,3]\n")
        with pytest.raises(RemoteProtocolError, match="op"):
            decode_message(b'{"shard": 1}\n')

    def test_payload_roundtrip(self):
        spec = NetFaultSpec(shard_id=3, mode="stall", sleep_s=0.25)
        assert unpack_payload(pack_payload(spec)) == spec

    def test_unpack_rejects_garbage(self):
        with pytest.raises(RemoteProtocolError, match="base64"):
            unpack_payload("!!! not base64 !!!")
        import base64

        with pytest.raises(RemoteProtocolError, match="unpickle"):
            unpack_payload(base64.b64encode(b"not a pickle").decode())

    def test_typed_field_access(self):
        message = {"op": "task", "shard": 1, "delay": 0.5, "flag": True}
        assert message_str(message, "op") == "task"
        assert message_int(message, "shard") == 1
        assert message_float(message, "delay") == 0.5
        assert message_float(message, "shard") == 1.0
        with pytest.raises(RemoteProtocolError):
            message_str(message, "shard")
        with pytest.raises(RemoteProtocolError):
            message_int(message, "flag")  # bool is not an int here
        with pytest.raises(RemoteProtocolError):
            message_int(message, "missing")

    def test_lease_id_roundtrip(self):
        from repro.engine.remote import _lease_attempt

        assert lease_id(3, 2) == "s3a2"
        assert _lease_attempt(lease_id(3, 2)) == 2
        assert _lease_attempt("garbage") == 0


# ----------------------------------------------------------------------
# Dial cleanup
# ----------------------------------------------------------------------
class TestConnectCleanup:
    def test_setup_failure_closes_the_dialed_socket(self, monkeypatch):
        """A post-dial setup failure in the worker's ``_connect`` must
        close the socket rather than leak it (dial errors retry; setup
        errors propagate)."""
        import socket as socket_module

        import repro.engine.remote as remote_module

        dialed = []
        real_create = socket_module.create_connection

        def recording_create(*args, **kwargs):
            sock = real_create(*args, **kwargs)
            dialed.append(sock)
            return sock

        class ExplodingChannel:
            def __init__(self, sock):
                raise RuntimeError("channel setup exploded")

        monkeypatch.setattr(
            remote_module.socket, "create_connection", recording_create
        )
        monkeypatch.setattr(
            remote_module, "LineChannel", ExplodingChannel
        )
        listener = socket_module.create_server(("127.0.0.1", 0))
        try:
            config = WorkerConfig(
                host="127.0.0.1",
                port=listener.getsockname()[1],
                connect_retries=1,
            )
            with pytest.raises(RuntimeError, match="channel setup"):
                _connect(config)
            assert len(dialed) == 1
            assert dialed[0].fileno() == -1  # closed, not leaked
        finally:
            listener.close()


# ----------------------------------------------------------------------
# Chaos spec parsing (mirrors REPRO_WORKER_FAULT)
# ----------------------------------------------------------------------
class TestNetFaultParsing:
    def test_env_roundtrip(self):
        spec = netfault_from_env("stall,shard=2,attempts=3,sleep=0.5")
        assert spec == NetFaultSpec(
            shard_id=2, mode="stall", attempts=3, sleep_s=0.5
        )
        assert netfault_from_env("") is None
        kill = netfault_from_env("kill,shard=0,exitcode=7")
        assert kill.mode == "kill" and kill.exitcode == 7

    def test_env_rejects_malformed(self):
        with pytest.raises(ValueError):
            netfault_from_env("drop")  # no shard
        with pytest.raises(ValueError):
            netfault_from_env("drop,shard=0,bogus=1")
        with pytest.raises(ValueError):
            netfault_from_env("meltdown,shard=0")

    def test_armed_bounds(self):
        spec = NetFaultSpec(shard_id=1, mode="dup", attempts=2)
        assert spec.armed_for(1, 1) and spec.armed_for(1, 2)
        assert not spec.armed_for(1, 3)
        assert not spec.armed_for(0, 1)

    def test_kill_is_inert_outside_a_child_process(self):
        # Guarded exactly like ShardFaultSpec: firing it here, in the
        # test runner itself, must be a no-op.
        NetFaultSpec(shard_id=0, mode="kill").kill_now()


# ----------------------------------------------------------------------
# Clean distribution
# ----------------------------------------------------------------------
class TestCleanDistribution:
    def test_two_workers_byte_identical_to_serial(self, reference):
        design = fresh_design()
        result = run_remote(remote_engine(), [None, None], design)
        assert result.transport == "tcp"
        report = result.supervision
        assert report.remote_workers == 2
        assert report.crashes == 0 and report.remote_fallbacks == 0
        remote_ok = [
            a for a in report.attempts
            if a.rung == "remote" and a.status == "ok"
        ]
        assert sorted(a.shard_id for a in remote_ok) == [0, 1]
        assert "remote_workers=2" in report.summary()
        assert_identical(design, reference)


# ----------------------------------------------------------------------
# Chaos: every fault mode recovers byte-identical
# ----------------------------------------------------------------------
class TestChaosRecovery:
    def test_connection_drop_requeues_and_recovers(self, reference):
        """The worker computes shard 0 then RSTs the link instead of
        delivering; the coordinator books a crash, requeues, and the
        reconnected worker finishes the job."""
        design = fresh_design()
        result = run_remote(
            remote_engine(),
            [NetFaultSpec(shard_id=0, mode="drop", attempts=1)],
            design,
        )
        report = result.supervision
        assert report.crashes == 1
        assert report.retries >= 1
        assert report.remote_fallbacks == 0
        crash = [a for a in report.attempts if a.status == "crash"]
        assert crash and crash[0].shard_id == 0
        assert crash[0].rung == "remote"
        assert_identical(design, reference)

    def test_stalled_heartbeat_expires_the_lease(self, reference):
        """A worker that goes silent mid-shard loses its lease; its
        eventual late delivery is still safe (pure function of the
        task) and the run converges byte-identical."""
        design = fresh_design()
        result = run_remote(
            remote_engine(),
            [NetFaultSpec(shard_id=0, mode="stall", attempts=1, sleep_s=2.0)],
            design,
        )
        report = result.supervision
        assert report.lease_expiries >= 1
        assert report.timeouts >= 1
        expired = [a for a in report.attempts if a.status == "timeout"]
        assert expired and "lease" in expired[0].detail
        assert_identical(design, reference)

    def test_duplicate_delivery_is_deduped(self, reference):
        """A retransmitted result must count as a duplicate, never get
        applied twice."""
        design = fresh_design()
        result = run_remote(
            remote_engine(),
            [NetFaultSpec(shard_id=1, mode="dup", attempts=1)],
            design,
        )
        report = result.supervision
        assert report.duplicate_results == 1
        dup = [a for a in report.attempts if a.status == "duplicate"]
        assert dup and dup[0].shard_id == 1
        assert "duplicates=1" in report.summary()
        assert_identical(design, reference)

    def test_mid_shard_kill_recovers_on_a_fresh_worker(self, reference):
        """A worker that dies mid-shard (os._exit, lease live) is
        detected by the dropped connection; a replacement worker picks
        the shard back up — no local fallback needed."""
        engine = remote_engine()
        transport = TcpTransport(engine)
        doomed = spawn_worker_process(
            worker_cfg(
                transport, "doomed",
                NetFaultSpec(shard_id=0, mode="kill", attempts=1),
            )
        )
        relief = []

        def send_relief():
            doomed.join(timeout=20)
            relief.append(
                spawn_worker_process(worker_cfg(transport, "relief"))
            )

        spawner = threading.Thread(target=send_relief, daemon=True)
        spawner.start()
        design = fresh_design()
        try:
            result = legalize_sharded(
                design, CFG, engine, transport=transport
            )
        finally:
            spawner.join(timeout=30)
            for proc in [doomed, *relief]:
                proc.join(timeout=30)
        report = result.supervision
        assert report.crashes == 1
        assert report.remote_workers == 2
        assert report.remote_fallbacks == 0
        assert_identical(design, reference)

    def test_total_fleet_death_degrades_to_local_ladder(self, reference):
        """Every worker is gone and none returns: after worker_wait_s
        the whole queue escalates to the local supervisor and the run
        still finishes byte-identical."""
        design = fresh_design()
        result = run_remote(
            remote_engine(worker_wait_s=0.5),
            [NetFaultSpec(shard_id=0, mode="kill", attempts=1)],
            design,
        )
        report = result.supervision
        assert report.crashes == 1
        assert report.remote_fallbacks == 2  # both shards escalated
        rungs = {a.rung for a in report.attempts}
        assert "remote" in rungs and rungs - {"remote"}  # ladder ran
        assert "remote_fallbacks=2" in report.summary()
        assert_identical(design, reference)


# ----------------------------------------------------------------------
# Fallback policy
# ----------------------------------------------------------------------
class TestFallbackPolicy:
    def test_no_worker_degrades_to_local(self, reference):
        design = fresh_design()
        result = run_remote(
            remote_engine(worker_wait_s=0.4), [], design
        )
        report = result.supervision
        assert report.remote_workers == 0
        assert report.remote_fallbacks == 2
        assert_identical(design, reference)

    def test_no_worker_strict_raises(self):
        engine = remote_engine(worker_wait_s=0.3, remote_fallback=False)
        transport = TcpTransport(engine)
        with pytest.raises(WorkerUnavailableError, match="no remote worker"):
            legalize_sharded(
                fresh_design(), CFG, engine, transport=transport
            )

    def test_drain_request_aborts_with_resume_hint(self):
        engine = remote_engine()
        transport = TcpTransport(engine)
        transport.request_drain()  # as the CLI's SIGTERM hook would
        with pytest.raises(TransportError, match="--resume"):
            legalize_sharded(
                fresh_design(), CFG, engine, transport=transport
            )
