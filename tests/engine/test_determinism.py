"""Bit-reproducibility regression tests (the RL2 contract).

The ``engine``/``core`` packages are contractually deterministic: two
``workers=2`` runs of the same design and config must produce a
byte-identical placement — the property the chaos CI job (and the
checkpoint/resume splice) depends on, and the one repro-lint's RL2 rule
guards statically.  These tests pin it dynamically with the SHA-256
state digest, so a regression (an unsorted set creeping into the
enumeration order, an ambient ``random.*`` call) fails loudly even when
both runs happen to pass the legality checker.
"""

from repro.bench import GeneratorConfig, generate_design
from repro.core import Legalizer, LegalizerConfig
from repro.engine import EngineConfig, legalize_sharded
from repro.testing.faults import design_state_digest

GEN = GeneratorConfig(num_cells=1200, target_density=0.5, seed=4)
CFG = LegalizerConfig(seed=1)
ENG = EngineConfig(workers=2, shards=2, serial_threshold=0)


def fresh_design():
    return generate_design(GEN)


class TestParallelDeterminism:
    def test_workers2_twice_identical_digest(self):
        """Two independent workers=2 runs yield the same state digest."""
        a = fresh_design()
        ra = legalize_sharded(a, CFG, ENG)
        b = fresh_design()
        rb = legalize_sharded(b, CFG, ENG)

        assert ra.parallel and rb.parallel
        assert design_state_digest(a) == design_state_digest(b)

    def test_sequential_twice_identical_digest(self):
        """The plain sequential path is deterministic too."""
        a = fresh_design()
        Legalizer(a, CFG).run()
        b = fresh_design()
        Legalizer(b, CFG).run()

        assert design_state_digest(a) == design_state_digest(b)

    def test_parallel_digest_stable_across_shard_schedules(self):
        """Shard completion order must not leak into the result.

        ``workers=1`` with the same shard count forces a fully serial
        shard schedule; the reconciler applies deltas in shard-id order,
        so the merged placement must match the concurrent run exactly.
        """
        conc = fresh_design()
        legalize_sharded(conc, CFG, ENG)
        serial = fresh_design()
        legalize_sharded(
            serial,
            CFG,
            EngineConfig(workers=1, shards=2, serial_threshold=0),
        )

        assert design_state_digest(conc) == design_state_digest(serial)
