"""Transactional reconciliation and the ``--workers 2`` fault sweep.

The ISSUE acceptance criterion: raising at every journaled mutation
site must leave ``Design.snapshot_positions()`` and all segment cell
orderings byte-identical to the pre-call state *on a ``--workers 2``
engine run* as well as the serial driver.  Shard workers mutate
subprocess copies only, so every master-design mutation of an engine
run happens inside :func:`repro.engine.reconcile.reconcile` — which is
transactional by default, making the whole merge atomic.
"""

import random

import pytest

from repro.core import LegalizationError, LegalizationResult, LegalizerConfig
from repro.engine import (
    EngineConfig,
    ShardOutcome,
    legalize_sharded,
    reconcile,
)
from repro.testing.faults import (
    FaultInjector,
    InjectedFault,
    count_journaled_mutations,
    design_state,
    design_state_digest,
    fault_sweep,
)
from tests.conftest import add_placed, add_unplaced, make_design


def outcome(shard_id, placements, unplaced=()):
    return ShardOutcome(
        shard_id=shard_id,
        placements=tuple(placements),
        unplaced_cell_ids=tuple(unplaced),
        stats=LegalizationResult(placed=len(placements)),
    )


def build_engine_design():
    """A small spread-out design that partitions into two real shards."""
    rng = random.Random(21)
    d = make_design(num_rows=4, row_width=60)
    for i in range(12):
        w, h = rng.choice([(2, 1), (3, 1), (4, 1), (2, 2)])
        add_unplaced(d, w, h, rng.uniform(0, 60 - w), rng.uniform(0, 3),
                     name=f"c{i}")
    return d


ENGINE_CFG = EngineConfig(
    workers=2, shards=2, halo_sites=8, serial_threshold=0
)
LEGAL_CFG = LegalizerConfig(rx=6, ry=1, seed=5)


def engine_factory():
    """A full ``workers=2`` sharded run as a fault-sweep action.

    Shard legalization happens in worker subprocesses on shard-view
    copies; the parent design is mutated only during reconciliation,
    inside its transaction — so a fault at any journaled site unwinds
    the entire engine run.
    """
    d = build_engine_design()
    return d, lambda: legalize_sharded(d, LEGAL_CFG, ENGINE_CFG)


class TestWorkersTwoSweep:
    def test_engine_runs_sharded_with_two_workers(self):
        d, action = engine_factory()
        res = action()
        assert res.parallel and res.workers == 2 and res.num_shards == 2
        assert all(c.is_placed for c in d.cells)

    def test_full_sweep_restores_state(self):
        """Acceptance: every journaled site of a workers=2 run restores
        the master design byte-identically on injection."""
        report = fault_sweep(engine_factory)
        assert report.sites >= 12  # at least one delta apply per cell
        assert "design.place" in set(report.tripped)

    def test_snapshot_positions_identical_mid_merge(self):
        """Spell the criterion out: trip mid-reconcile, compare
        snapshot_positions, orderings and the state digest directly."""
        d, action = engine_factory()
        positions = d.snapshot_positions()
        orderings = [
            tuple(c.id for c in seg.cells) for seg in d.floorplan.segments
        ]
        digest = design_state_digest(d)
        with FaultInjector(d, trip_at=5):
            with pytest.raises(InjectedFault):
                action()
        assert d.snapshot_positions() == positions
        assert [
            tuple(c.id for c in seg.cells) for seg in d.floorplan.segments
        ] == orderings
        assert design_state_digest(d) == digest
        # The design is still fully usable: the same run now succeeds.
        assert action().parallel

    def test_sweep_is_deterministic_across_runs(self):
        d1, a1 = engine_factory()
        d2, a2 = engine_factory()
        assert count_journaled_mutations(d1, a1) == count_journaled_mutations(
            d2, a2
        )


class TestReconcileSweep:
    """Subprocess-free sweep over reconcile with synthetic seam conflicts,
    covering the conflict-diversion and seam-pass sites cheaply."""

    def factory(self):
        d = make_design(num_rows=4, row_width=40)
        a = add_unplaced(d, 4, 1, 10.0, 1.0, name="a")
        b = add_unplaced(d, 4, 1, 10.0, 1.0, name="b")
        c = add_unplaced(d, 4, 1, 30.0, 2.0, name="c")
        outs = [
            outcome(0, [(a.id, 10, 1)]),
            outcome(1, [(b.id, 10, 1), (c.id, 30, 2)]),  # b conflicts
        ]
        cfg = LegalizerConfig(rx=6, ry=1, seed=0)
        return d, lambda: reconcile(d, outs, config=cfg)

    def test_reconcile_sweep_restores_state(self):
        report = fault_sweep(self.factory)
        # 3 applied/seam placements minimum: apply a, apply c, seam b.
        assert report.sites >= 3
        assert "design.place" in set(report.tripped)


class TestReconcileRollback:
    def build_jammed(self):
        """A seam conflict whose loser cannot be placed anywhere: the
        single row is fixed solid except one 4-wide gap both cells want."""
        d = make_design(num_rows=1, row_width=12)
        add_placed(d, 4, 1, 0, 0, fixed=True)
        add_placed(d, 4, 1, 4, 0, fixed=True)
        a = add_unplaced(d, 4, 1, 8.0, 0.0, name="a")
        b = add_unplaced(d, 4, 1, 8.0, 0.0, name="b")
        outs = [outcome(0, [(a.id, 8, 0)]), outcome(1, [(b.id, 8, 0)])]
        return d, a, b, outs

    def test_failed_seam_pass_rolls_back_applied_deltas(self):
        """When the seam pass cannot clear a conflict, the transaction
        unwinds the deltas that *were* applied: no half-merged design."""
        d, a, b, outs = self.build_jammed()
        before = design_state(d)
        cfg = LegalizerConfig(rx=4, ry=0, max_rounds=3, seed=0)
        with pytest.raises(LegalizationError):
            reconcile(d, outs, config=cfg)
        assert design_state(d) == before
        assert not a.is_placed and not b.is_placed

    def test_non_transactional_keeps_committed_prefix(self):
        """``transactional=False`` documents the old behavior: the
        applied deltas survive a failed seam pass."""
        d, a, b, outs = self.build_jammed()
        cfg = LegalizerConfig(rx=4, ry=0, max_rounds=3, seed=0)
        with pytest.raises(LegalizationError):
            reconcile(d, outs, config=cfg, transactional=False)
        assert a.is_placed and (a.x, a.y) == (8, 0)
        assert not b.is_placed

    def test_successful_reconcile_detaches_journal(self):
        d = make_design(num_rows=2, row_width=20)
        a = add_unplaced(d, 3, 1, 2.0, 0.0, name="a")
        reconcile(d, [outcome(0, [(a.id, 2, 0)])])
        assert d.journal is None
        assert a.is_placed
