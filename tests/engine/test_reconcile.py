"""Seam reconciliation (repro.engine.reconcile)."""

import pytest

from repro.checker import verify_placement
from repro.core import LegalizationResult, LegalizerConfig
from repro.engine import ReconcileError, ShardOutcome, apply_shard_outcomes, reconcile
from tests.conftest import add_unplaced, make_design


def outcome(shard_id, placements, unplaced=()):
    return ShardOutcome(
        shard_id=shard_id,
        placements=tuple(placements),
        unplaced_cell_ids=tuple(unplaced),
        stats=LegalizationResult(placed=len(placements)),
    )


class TestSeamConflicts:
    def test_injected_same_site_conflict_is_cleared(self):
        """Two shards claim the same seam site; the reconciler keeps the
        lower shard's delta and re-legalizes the other cell."""
        design = make_design(num_rows=4, row_width=40)
        a = add_unplaced(design, 4, 1, 10.0, 1.0, name="a")
        b = add_unplaced(design, 4, 1, 10.0, 1.0, name="b")

        report = reconcile(
            design,
            [outcome(0, [(a.id, 10, 1)]), outcome(1, [(b.id, 10, 1)])],
            config=LegalizerConfig(seed=0),
        )

        assert report.applied == 1
        assert report.conflicts == 1
        assert report.seam_stats.placed == 1
        assert (a.x, a.y) == (10, 1)  # shard-id order: shard 0 wins
        assert b.is_placed and (b.x, b.y) != (10, 1)
        assert verify_placement(design) == []

    def test_partial_overlap_conflict_is_cleared(self):
        design = make_design(num_rows=4, row_width=40)
        a = add_unplaced(design, 4, 1, 10.0, 1.0, name="a")
        b = add_unplaced(design, 4, 1, 12.0, 1.0, name="b")
        report = reconcile(
            design,
            [outcome(0, [(a.id, 10, 1)]), outcome(1, [(b.id, 8, 1)])],
            config=LegalizerConfig(seed=0),
        )
        assert report.conflicts == 1
        assert verify_placement(design) == []

    def test_conflict_free_merge_applies_everything_verbatim(self):
        design = make_design(num_rows=4, row_width=40)
        a = add_unplaced(design, 4, 1, 2.0, 0.0, name="a")
        b = add_unplaced(design, 4, 1, 30.0, 2.0, name="b")
        report = reconcile(
            design,
            [outcome(0, [(a.id, 2, 0)]), outcome(1, [(b.id, 30, 2)])],
        )
        assert (report.applied, report.conflicts) == (2, 0)
        assert report.seam_stats.placed == 0
        assert [(a.x, a.y), (b.x, b.y)] == [(2, 0), (30, 2)]
        assert verify_placement(design) == []

    def test_shard_failures_are_retried_on_the_full_design(self):
        design = make_design(num_rows=4, row_width=40)
        a = add_unplaced(design, 4, 1, 10.0, 1.0, name="a")
        b = add_unplaced(design, 4, 1, 10.0, 1.0, name="b")
        report = reconcile(
            design,
            [outcome(0, [(a.id, 10, 1)]), outcome(1, [], unplaced=[b.id])],
        )
        assert report.shard_failures == 1
        assert b.is_placed
        assert verify_placement(design) == []


class TestDefensiveChecks:
    def test_double_ownership_is_an_error(self):
        design = make_design(num_rows=4, row_width=40)
        a = add_unplaced(design, 4, 1, 10.0, 1.0, name="a")
        with pytest.raises(ReconcileError, match="two shards"):
            reconcile(
                design,
                [outcome(0, [(a.id, 10, 1)]), outcome(1, [(a.id, 20, 1)])],
            )

    def test_apply_is_shard_id_ordered_not_list_ordered(self):
        design = make_design(num_rows=4, row_width=40)
        a = add_unplaced(design, 4, 1, 10.0, 1.0, name="a")
        b = add_unplaced(design, 4, 1, 10.0, 1.0, name="b")
        # Pass outcomes out of order: shard 0's delta must still win.
        conflicts, report = apply_shard_outcomes(
            design,
            [outcome(1, [(b.id, 10, 1)]), outcome(0, [(a.id, 10, 1)])],
        )
        assert (a.x, a.y) == (10, 1)
        assert conflicts == [b]
        assert report.applied == 1
