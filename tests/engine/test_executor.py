"""End-to-end engine runs (repro.engine.executor)."""

import pytest

from repro.bench import GeneratorConfig, generate_design
from repro.checker import displacement_stats, verify_placement
from repro.core import Legalizer, LegalizerConfig, MllTelemetry
from repro.engine import EngineConfig, ShardedLegalizer, legalize_sharded

GEN = GeneratorConfig(num_cells=1200, target_density=0.5, seed=4)
CFG = LegalizerConfig(seed=1)


def fresh_design():
    return generate_design(GEN)


def coords(design):
    return [(c.name, c.x, c.y) for c in design.cells]


class TestEndToEnd:
    def test_workers2_passes_checker_and_matches_sequential(self):
        seq = fresh_design()
        seq_result = Legalizer(seq, CFG).run()
        seq_disp = displacement_stats(seq).avg_sites

        par = fresh_design()
        engine_result = legalize_sharded(
            par, CFG, EngineConfig(workers=2, shards=2, serial_threshold=0)
        )

        assert engine_result.parallel
        assert engine_result.workers == 2
        assert verify_placement(par) == []
        assert engine_result.result.placed == seq_result.placed
        assert engine_result.result.failed_cells == []
        par_disp = displacement_stats(par).avg_sites
        assert par_disp == pytest.approx(seq_disp, rel=0.05)

    def test_workers2_is_bit_reproducible(self):
        runs = []
        for _ in range(2):
            design = fresh_design()
            legalize_sharded(
                design, CFG, EngineConfig(workers=2, shards=2, serial_threshold=0)
            )
            runs.append(coords(design))
        assert runs[0] == runs[1]

    def test_worker_count_does_not_change_coordinates(self):
        """Only the shard count shapes the result; worker scheduling
        must not (workers=1 runs the same shards in-process)."""
        serial = fresh_design()
        legalize_sharded(
            serial, CFG, EngineConfig(workers=1, shards=3, serial_threshold=0)
        )
        parallel = fresh_design()
        legalize_sharded(
            parallel, CFG, EngineConfig(workers=2, shards=3, serial_threshold=0)
        )
        assert coords(serial) == coords(parallel)

    def test_fenced_design_end_to_end(self):
        design = generate_design(
            GeneratorConfig(
                num_cells=900, target_density=0.5, seed=6, fence_count=2
            )
        )
        engine_result = legalize_sharded(
            design, CFG, EngineConfig(workers=1, shards=3, serial_threshold=0)
        )
        assert engine_result.seam.deferred > 0
        assert verify_placement(design) == []


class TestFallbacks:
    def test_small_designs_fall_back_to_sequential(self):
        design = fresh_design()
        engine_result = legalize_sharded(
            design, CFG, EngineConfig(workers=4, serial_threshold=10_000)
        )
        assert not engine_result.parallel
        assert engine_result.num_shards == 1
        assert verify_placement(design) == []

    def test_fallback_matches_plain_sequential_exactly(self):
        ref = fresh_design()
        Legalizer(ref, CFG).run()
        via_engine = fresh_design()
        engine_result = legalize_sharded(
            via_engine, CFG, EngineConfig(workers=1, shards=1)
        )
        assert not engine_result.parallel
        assert coords(ref) == coords(via_engine)

    def test_single_shard_request_falls_back(self):
        design = fresh_design()
        engine_result = legalize_sharded(
            design, CFG, EngineConfig(workers=1, shards=1, serial_threshold=0)
        )
        assert not engine_result.parallel


class TestAccounting:
    def test_placed_count_is_exact_not_double_counted(self):
        design = fresh_design()
        engine_result = legalize_sharded(
            design, CFG, EngineConfig(workers=1, shards=4, serial_threshold=0)
        )
        movable = sum(1 for _ in design.movable_cells())
        actually_placed = sum(1 for c in design.movable_cells() if c.is_placed)
        assert engine_result.result.placed == actually_placed == movable
        assert engine_result.seam.applied + engine_result.seam.conflicts == sum(
            s.placed for s in engine_result.shard_stats
        )

    def test_merged_telemetry_matches_merged_result(self):
        design = fresh_design()
        telemetry = MllTelemetry()
        sharded = ShardedLegalizer(
            design, CFG, EngineConfig(workers=1, shards=3, serial_threshold=0)
        )
        sharded.telemetry = telemetry
        engine_result = sharded.run()
        summary = telemetry.summary()
        assert summary.calls == engine_result.result.mll_calls
        assert summary.successes == engine_result.result.mll_successes
