"""Supervisor paths: crash, timeout, escalation, fallback, quarantine.

Every recovery scenario must satisfy the engine's determinism contract:
a run that survives injected faults produces coordinates byte-identical
to a fault-free run (retried shards reuse their derived seeds).
"""

import pytest

from repro.bench import GeneratorConfig, generate_design
from repro.checker import verify_placement
from repro.core import Legalizer, LegalizerConfig
from repro.engine import (
    EngineConfig,
    ShardRetriesExhaustedError,
    legalize_sharded,
)
from repro.testing import ShardFaultSpec, design_state_digest

GEN = GeneratorConfig(num_cells=1200, target_density=0.5, seed=4)
CFG = LegalizerConfig(seed=1)

#: Fast-retry supervision knobs so the suite does not sleep for real.
ENG = dict(
    workers=2, shards=2, serial_threshold=0,
    backoff_base_s=0.01, backoff_max_s=0.05,
)


def fresh_design():
    return generate_design(GEN)


def coords(design):
    return [(c.name, c.x, c.y) for c in design.cells]


@pytest.fixture(scope="module")
def reference():
    """Coordinates and digest of the fault-free workers=2 run."""
    design = fresh_design()
    result = legalize_sharded(design, CFG, EngineConfig(**ENG))
    assert result.parallel
    return coords(design), design_state_digest(design)


class TestCrashRecovery:
    def test_worker_crash_is_contained_and_retried(self, reference):
        """A child that os._exit()s mid-shard is detected as a crash,
        the shard is retried, and the final placement is byte-identical
        to the fault-free run."""
        ref_coords, ref_digest = reference
        design = fresh_design()
        result = legalize_sharded(
            design, CFG, EngineConfig(**ENG),
            fault=ShardFaultSpec(shard_id=0, mode="crash", attempts=1),
        )
        assert result.parallel
        report = result.supervision
        assert report.crashes == 1
        assert report.retries == 1
        assert not report.serial_fallback
        # The crash attempt is in the log with its exit code.
        crash = [a for a in report.attempts if a.status == "crash"]
        assert len(crash) == 1 and crash[0].shard_id == 0
        assert "exitcode 13" in crash[0].detail
        assert verify_placement(design) == []
        assert coords(design) == ref_coords
        assert design_state_digest(design) == ref_digest

    def test_crash_attempt_records_backoff(self):
        design = fresh_design()
        result = legalize_sharded(
            design, CFG, EngineConfig(**ENG),
            fault=ShardFaultSpec(shard_id=1, mode="crash", attempts=1),
        )
        assert result.supervision.backoff_total_s > 0

    def test_worker_exception_is_retried_with_traceback(self, reference):
        """A worker that *raises* (rather than dies) ships its traceback
        home and is retried the same way."""
        ref_coords, _ = reference
        design = fresh_design()
        result = legalize_sharded(
            design, CFG, EngineConfig(**ENG),
            fault=ShardFaultSpec(shard_id=0, mode="raise", attempts=1),
        )
        report = result.supervision
        assert report.errors == 1 and report.retries == 1
        errors = [a for a in report.attempts if a.status == "error"]
        assert "WorkerFault" in errors[0].detail  # the remote traceback
        assert coords(design) == ref_coords


class TestTimeouts:
    def test_hung_worker_is_killed_and_retried(self, reference):
        """A wedged worker exceeds shard_timeout_s, is terminated, and
        the retry produces the byte-identical placement."""
        ref_coords, ref_digest = reference
        design = fresh_design()
        result = legalize_sharded(
            design, CFG,
            EngineConfig(**ENG, shard_timeout_s=1.5),
            fault=ShardFaultSpec(
                shard_id=1, mode="hang", attempts=1, sleep_s=60.0
            ),
        )
        report = result.supervision
        assert report.timeouts == 1
        assert report.retries == 1
        timeouts = [a for a in report.attempts if a.status == "timeout"]
        assert timeouts[0].shard_id == 1
        assert coords(design) == ref_coords
        assert design_state_digest(design) == ref_digest

    def test_no_timeout_by_default(self):
        assert EngineConfig().shard_timeout_s is None

    def test_timeout_must_be_positive(self):
        with pytest.raises(ValueError):
            EngineConfig(shard_timeout_s=0)


class TestDegradationLadder:
    def test_persistent_crash_escalates_in_process(self, reference):
        """crash fires only in worker processes: when every pool attempt
        dies, the in-process rung runs the shard clean — and still
        byte-identical (same derived seed)."""
        ref_coords, _ = reference
        design = fresh_design()
        result = legalize_sharded(
            design, CFG,
            EngineConfig(**ENG, max_shard_retries=1),
            fault=ShardFaultSpec(shard_id=0, mode="crash", attempts=99),
        )
        report = result.supervision
        assert report.crashes == 2  # initial + 1 retry
        assert report.inprocess_escalations == 1
        assert not report.serial_fallback
        assert result.parallel
        ok_inproc = [
            a for a in report.attempts
            if a.rung == "inprocess" and a.status == "ok"
        ]
        assert len(ok_inproc) == 1
        assert coords(design) == ref_coords

    def test_unrecoverable_shard_degrades_to_serial(self):
        """raise fires on every rung: pool retries and the in-process
        re-run all fail, so the run degrades to the plain sequential
        driver — and matches it exactly."""
        sequential = fresh_design()
        Legalizer(sequential, CFG).run()

        design = fresh_design()
        result = legalize_sharded(
            design, CFG,
            EngineConfig(**ENG, max_shard_retries=1),
            fault=ShardFaultSpec(shard_id=0, mode="raise", attempts=99),
        )
        report = result.supervision
        assert report.serial_fallback
        assert report.failed_shards == [0]
        assert result.degraded and not result.parallel
        assert verify_placement(design) == []
        assert coords(design) == coords(sequential)

    def test_serial_fallback_disabled_raises(self):
        design = fresh_design()
        with pytest.raises(ShardRetriesExhaustedError):
            legalize_sharded(
                design, CFG,
                EngineConfig(**ENG, max_shard_retries=0,
                             serial_fallback=False),
                fault=ShardFaultSpec(shard_id=0, mode="raise", attempts=99),
            )

    def test_summary_mentions_the_ladder(self):
        design = fresh_design()
        result = legalize_sharded(
            design, CFG, EngineConfig(**ENG),
            fault=ShardFaultSpec(shard_id=0, mode="crash", attempts=1),
        )
        text = result.supervision.summary()
        assert "crashes=1" in text and "retries=1" in text


class TestUnsupervised:
    def test_bare_pool_still_works_fault_free(self, reference):
        ref_coords, _ = reference
        design = fresh_design()
        result = legalize_sharded(
            design, CFG, EngineConfig(**ENG, supervise=False)
        )
        assert result.parallel
        assert result.supervision is None
        assert coords(design) == ref_coords


class TestQuarantine:
    @staticmethod
    def _impossible_design():
        """A design with one cell wider than the die: never placeable."""
        from tests.conftest import add_unplaced, make_design

        design = make_design(num_rows=2, row_width=12, name="jam")
        add_unplaced(design, 3, 1, 0.0, 0.0, name="ok0")
        add_unplaced(design, 20, 1, 4.0, 1.0, name="giant")
        add_unplaced(design, 3, 1, 8.0, 1.0, name="ok1")
        return design

    @staticmethod
    def _blocked_design():
        """Blockages leave a 4-site gap: the 10-wide cell can never fit,
        but it is narrower than a stripe, so the partitioner still
        yields two shards (unlike a wider-than-die cell, which caps the
        shard count at 1)."""
        from repro.geometry import Rect
        from tests.conftest import add_unplaced, make_design

        design = make_design(
            num_rows=2, row_width=40,
            blockages=[Rect(0, 1, 40, 1), Rect(0, 0, 36, 1)],
            name="blocked",
        )
        add_unplaced(design, 2, 1, 37.0, 0.0, name="ok0")
        add_unplaced(design, 10, 1, 10.0, 0.0, name="giant")
        return design

    def test_serial_quarantine_completes_with_report(self):
        design = self._impossible_design()
        cfg = LegalizerConfig(rx=4, ry=1, max_rounds=3, quarantine=True)
        result = Legalizer(design, cfg).run()
        assert result.stuck.names == ["giant"]
        entry = result.stuck.cells[0]
        assert entry.origin == "serial"
        assert entry.rounds == 3
        assert entry.width == 20
        assert result.failed_cells == ["giant"]
        # Partial legality: the placeable cells are placed and legal.
        assert result.placed == 2
        assert verify_placement(design, require_all_placed=False) == []

    def test_quarantine_off_still_raises(self):
        from repro.core import LegalizationError

        design = self._impossible_design()
        cfg = LegalizerConfig(rx=4, ry=1, max_rounds=3)
        with pytest.raises(LegalizationError):
            Legalizer(design, cfg).run()

    def test_engine_seam_quarantine(self):
        """The engine completes with the stuck cell on EngineResult.stuck
        (origin 'seam') instead of raising mid-run."""
        design = self._blocked_design()
        cfg = LegalizerConfig(rx=4, ry=1, max_rounds=3, quarantine=True)
        result = legalize_sharded(
            design, cfg,
            EngineConfig(workers=1, shards=2, serial_threshold=0,
                         halo_sites=4),
        )
        assert result.parallel
        assert result.stuck.names == ["giant"]
        assert result.stuck.cells[0].origin == "seam"
        assert result.result.placed == 1
        assert verify_placement(design, require_all_placed=False) == []

    def test_stuck_report_summary(self):
        design = self._impossible_design()
        cfg = LegalizerConfig(rx=4, ry=1, max_rounds=3, quarantine=True)
        result = Legalizer(design, cfg).run()
        assert "quarantined 1 cells" in result.stuck.summary()
        assert "giant" in result.stuck.summary()

    def test_clean_run_has_empty_report(self):
        design = fresh_design()
        cfg = LegalizerConfig(seed=1, quarantine=True)
        result = legalize_sharded(design, cfg, EngineConfig(**ENG))
        assert not result.stuck
        assert len(result.stuck) == 0
        assert result.stuck.summary() == "quarantined 0 cells"


class TestFaultSpecParsing:
    def test_env_roundtrip(self):
        from repro.testing import worker_fault_from_env

        spec = worker_fault_from_env("crash,shard=3,attempts=2,exitcode=7")
        assert spec == ShardFaultSpec(
            shard_id=3, mode="crash", attempts=2, exitcode=7
        )
        assert worker_fault_from_env("") is None
        hang = worker_fault_from_env("hang,shard=0,sleep=1.5")
        assert hang.mode == "hang" and hang.sleep_s == 1.5

    def test_env_rejects_malformed(self):
        from repro.testing import worker_fault_from_env

        with pytest.raises(ValueError):
            worker_fault_from_env("crash")  # no shard
        with pytest.raises(ValueError):
            worker_fault_from_env("crash,shard=0,bogus=1")
        with pytest.raises(ValueError):
            worker_fault_from_env("meltdown,shard=0")

    def test_disarmed_attempt_runs_clean(self):
        spec = ShardFaultSpec(shard_id=0, mode="raise", attempts=1)
        assert spec.armed_for(0, 1)
        assert not spec.armed_for(0, 2)
        assert not spec.armed_for(1, 1)


# ----------------------------------------------------------------------
# Backoff policy (shared by the supervisor and the TCP transport)
# ----------------------------------------------------------------------
class TestBackoffPolicy:
    def test_jitter_is_seed_deterministic(self):
        """Same (engine, seed, attempt) always yields the same delay —
        a retry schedule must replay identically across runs."""
        from repro.engine import backoff_delay_s

        engine = EngineConfig(backoff_base_s=0.1, backoff_max_s=10.0)
        for attempt in (1, 2, 3, 7):
            first = backoff_delay_s(engine, seed=42, attempt=attempt)
            again = backoff_delay_s(engine, seed=42, attempt=attempt)
            assert first == again

    def test_delay_never_exceeds_cap(self):
        """Even with maximal jitter, the cap bounds every delay."""
        from repro.engine import backoff_delay_s

        engine = EngineConfig(
            backoff_base_s=1.0, backoff_max_s=3.0, backoff_jitter=1.0
        )
        for seed in range(25):
            for attempt in range(1, 12):
                delay = backoff_delay_s(engine, seed, attempt)
                assert 0.0 <= delay <= 3.0

    def test_delays_grow_then_saturate(self):
        from repro.engine import backoff_delay_s

        engine = EngineConfig(
            backoff_base_s=0.5, backoff_max_s=4.0, backoff_jitter=0.0
        )
        delays = [
            backoff_delay_s(engine, seed=1, attempt=k) for k in (1, 2, 3, 4, 5)
        ]
        assert delays == [0.5, 1.0, 2.0, 4.0, 4.0]

    def test_seeds_decorrelate_retry_storms(self):
        """Shards retried at the same moment must not thunder in
        lockstep: with jitter on, distinct shard seeds draw distinct
        delays for the same attempt number."""
        from repro.engine import backoff_delay_s

        engine = EngineConfig(
            backoff_base_s=1.0, backoff_max_s=60.0, backoff_jitter=0.5
        )
        delays = {backoff_delay_s(engine, seed, attempt=2) for seed in range(8)}
        assert len(delays) > 1


class TestSpawnCleanup:
    def test_pipe_close_failure_reaps_the_started_child(self):
        """If closing the parent's copy of the write end fails after
        ``process.start()``, the just-started child must be terminated
        and joined instead of orphaned."""
        from dataclasses import dataclass as _dataclass
        from types import SimpleNamespace

        from repro.engine.supervisor import ShardSupervisor

        @_dataclass
        class FakeTask:
            shard_id: int = 0
            attempt: int = 0

        class FakeProcess:
            def __init__(self):
                self.started = False
                self.terminated = False
                self.joined = False

            def start(self):
                self.started = True

            def terminate(self):
                self.terminated = True

            def join(self, timeout=None):
                self.joined = True

        class BadSend:
            def close(self):
                raise OSError("pipe close failed")

        proc = FakeProcess()

        class FakeCtx:
            def Pipe(self, duplex=False):
                return object(), BadSend()

            def Process(self, **kwargs):
                return proc

        fake = SimpleNamespace(
            _ctx=FakeCtx(),
            engine=SimpleNamespace(shard_timeout_s=None),
        )
        with pytest.raises(OSError, match="pipe close failed"):
            ShardSupervisor._spawn(fake, FakeTask(), attempt=1)
        assert proc.started
        assert proc.terminated
        assert proc.joined
