"""Partitioner invariants (repro.engine.partition)."""

import pytest

from repro.bench import GeneratorConfig, generate_design
from repro.core import LegalizerConfig
from repro.engine import EngineConfig, derive_halo_sites, partition_design


@pytest.fixture(scope="module")
def design():
    return generate_design(
        GeneratorConfig(num_cells=800, target_density=0.5, seed=9)
    )


@pytest.fixture(scope="module")
def fenced_design():
    return generate_design(
        GeneratorConfig(num_cells=800, target_density=0.5, seed=9, fence_count=2)
    )


class TestOwnership:
    @pytest.mark.parametrize("shards", [1, 2, 4, 7])
    def test_every_movable_cell_in_exactly_one_shard(self, design, shards):
        part = partition_design(
            design, engine=EngineConfig(shards=shards)
        )
        owned: dict[int, int] = {}
        for shard in part.shards:
            for cid in shard.cell_ids:
                assert cid not in owned, "cell owned by two shards"
                owned[cid] = shard.id
        movable = {c.id for c in design.movable_cells() if not c.is_placed}
        assert set(owned) | set(part.deferred_cell_ids) == movable
        assert not set(owned) & set(part.deferred_cell_ids)

    def test_fenced_cells_are_deferred_not_sharded(self, fenced_design):
        part = partition_design(
            fenced_design, engine=EngineConfig(shards=4)
        )
        fenced = {
            c.id
            for c in fenced_design.movable_cells()
            if c.region is not None and not c.is_placed
        }
        assert fenced == set(part.deferred_cell_ids)
        for shard in part.shards:
            assert not fenced & set(shard.cell_ids)

    def test_owner_interior_contains_gp_center(self, design):
        part = partition_design(design, engine=EngineConfig(shards=4))
        by_id = {c.id: c for c in design.cells}
        width = design.floorplan.row_width
        for shard in part.shards:
            for cid in shard.cell_ids:
                c = by_id[cid]
                center = min(max(c.gp_x + c.width / 2, 0.0), width - 1e-9)
                assert shard.owns_x(center)


class TestGeometry:
    def test_interiors_tile_the_die(self, design):
        part = partition_design(design, engine=EngineConfig(shards=4))
        assert part.shards[0].interior_x0 == 0
        assert part.shards[-1].interior_x1 == design.floorplan.row_width
        for a, b in zip(part.shards, part.shards[1:]):
            assert a.interior_x1 == b.interior_x0
            assert b.id == a.id + 1

    @pytest.mark.parametrize("halo", [0, 7, 40])
    def test_halo_width_honored(self, design, halo):
        part = partition_design(
            design, engine=EngineConfig(shards=3, halo_sites=halo)
        )
        width = design.floorplan.row_width
        assert part.halo_sites == halo
        for shard in part.shards:
            assert shard.slice_x0 == max(0, shard.interior_x0 - halo)
            assert shard.slice_x1 == min(width, shard.interior_x1 + halo)

    def test_derived_halo_covers_window_and_retries(self, design):
        config = LegalizerConfig(rx=30, ry=5)
        engine = EngineConfig(shards=2, halo_retry_rounds=3)
        part = partition_design(design, config, engine)
        max_w = max(c.width for c in design.movable_cells())
        assert part.halo_sites == 2 * 30 + max_w + 30 * 3
        assert part.halo_sites == derive_halo_sites(config, max_w, 3)


class TestDegenerateCases:
    def test_single_shard(self, design):
        part = partition_design(design, engine=EngineConfig(shards=1))
        assert len(part.shards) == 1
        only = part.shards[0]
        assert (only.interior_x0, only.interior_x1) == (
            0,
            design.floorplan.row_width,
        )
        movable = sum(
            1 for c in design.movable_cells() if not c.is_placed
        )
        assert len(only.cell_ids) + len(part.deferred_cell_ids) == movable

    def test_more_shards_than_die_width_is_capped(self, design):
        width = design.floorplan.row_width
        part = partition_design(
            design, engine=EngineConfig(shards=width * 3)
        )
        max_w = max(c.width for c in design.movable_cells())
        assert len(part.shards) <= max(1, width // max_w)
        for shard in part.shards:
            assert shard.interior_width >= 1
        # ownership invariant survives the cap
        owned = [cid for s in part.shards for cid in s.cell_ids]
        assert len(owned) == len(set(owned))

    def test_balanced_stripes_have_similar_populations(self, design):
        part = partition_design(design, engine=EngineConfig(shards=4))
        sizes = [len(s.cell_ids) for s in part.shards]
        assert max(sizes) <= 2 * max(1, min(sizes))

    def test_partition_is_deterministic(self, design):
        a = partition_design(design, engine=EngineConfig(shards=4))
        b = partition_design(design, engine=EngineConfig(shards=4))
        assert a == b
