#!/usr/bin/env python
"""The complete placement flow: netlist → global placement → MLL
legalization → detailed placement → sign-off files.

This is the pipeline the paper's legalizer sits inside.  The quadratic
global placer stands in for the contest placers the paper took its
inputs from (DESIGN.md, substitutions).

Run::

    python examples/full_flow.py [output_dir]
"""

import sys
import tempfile

from repro import LegalizerConfig, legalize
from repro.apps import improve_hpwl
from repro.bench import GeneratorConfig, generate_design
from repro.checker import assert_legal, displacement_stats
from repro.gp import GlobalPlacerConfig, global_place
from repro.io import write_lefdef


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp()

    # 1. A netlisted design.  The generator's synthetic GP is discarded —
    #    this flow derives placement from the netlist alone.
    design = generate_design(
        GeneratorConfig(
            num_cells=1500,
            target_density=0.45,
            double_row_fraction=0.12,
            nets_per_cell=1.3,
            seed=77,
            name="fullflow",
        )
    )
    for cell in design.cells:
        cell.gp_x = cell.gp_y = 0.0
    print(f"netlist: {len(design.cells)} cells, {len(design.netlist)} nets")

    # 2. Global placement.
    global_place(design, GlobalPlacerConfig(seed=77))
    print(f"global placement HPWL: {design.hpwl_um(use_gp=True) / 1e4:.3f} cm")

    # 3. Legalization (the paper's algorithm).
    config = LegalizerConfig(seed=77)
    result = legalize(design, config)
    assert_legal(design)
    disp = displacement_stats(design)
    print(
        f"legalized in {result.runtime_s:.2f}s: "
        f"disp {disp.avg_sites:.2f} sites, "
        f"HPWL {design.hpwl_um() / 1e4:.3f} cm "
        f"({result.mll_successes} MLL calls, {result.rounds} retry rounds)"
    )

    # 4. One detailed-placement pass with instant legalization.
    stats = improve_hpwl(design, config, passes=1)
    assert_legal(design)
    print(
        f"detailed placement: {stats.moves_kept}/{stats.moves_tried} moves "
        f"kept, HPWL {design.hpwl_um() / 1e4:.3f} cm "
        f"({stats.improvement_pct:+.1f}%)"
    )

    # 5. Sign-off: write LEF/DEF.
    lef, def_ = write_lefdef(design, out_dir)
    print(f"wrote {lef}")
    print(f"wrote {def_}")


if __name__ == "__main__":
    main()
