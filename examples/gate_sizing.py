#!/usr/bin/env python
"""Gate sizing with local re-legalization (paper Section 1).

Emulates a timing-driven sizing loop: cells on the longest nets (a proxy
for critical paths) are up-sized; each swap re-legalizes the cell's
neighborhood through MLL and rolls back when the upsize does not fit.
Some upsizes convert a single-row cell to a double-row master — the
multi-row library migration the paper's introduction motivates.

Run::

    python examples/gate_sizing.py
"""

from repro import LegalizerConfig, legalize
from repro.apps import resize_cell
from repro.bench import GeneratorConfig, generate_design
from repro.checker import assert_legal, displacement_stats


def main() -> None:
    design = generate_design(
        GeneratorConfig(
            num_cells=1200,
            target_density=0.6,
            double_row_fraction=0.10,
            seed=11,
            name="sizing",
        )
    )
    config = LegalizerConfig(seed=11)
    legalize(design, config)
    assert_legal(design)

    # "Critical" cells: members of the longest 5% of nets.
    nets = sorted(design.netlist, key=lambda n: -sum(n.hpwl_sites()))
    critical = []
    seen = set()
    for net in nets[: max(1, len(nets) // 20)]:
        for pin in net.pins:
            if pin.cell.id not in seen and not pin.cell.fixed:
                seen.add(pin.cell.id)
                critical.append(pin.cell)

    upsized = failed = to_multi_row = 0
    for cell in critical:
        if cell.height == 1 and cell.width >= 6:
            # Big single-row drivers migrate to a double-row master of
            # the same area (paper's height-doubling protocol).
            new_master = design.library.get_or_create(
                max(1, cell.width // 2), 2
            )
        else:
            new_master = design.library.get_or_create(
                cell.width + 1, cell.height, cell.master.bottom_rail
            )
        was_single = cell.height == 1
        if resize_cell(design, cell, new_master, config):
            upsized += 1
            if was_single and cell.height == 2:
                to_multi_row += 1
        else:
            failed += 1
        assert_legal(design)  # legal after every single swap

    disp = displacement_stats(design)
    print(f"critical cells considered: {len(critical)}")
    print(f"upsized: {upsized} ({to_multi_row} became double-row)")
    print(f"rolled back (no room):    {failed}")
    print(f"avg displacement now:     {disp.avg_sites:.2f} sites")


if __name__ == "__main__":
    main()
