#!/usr/bin/env python
"""Detailed placement with instant legalization (paper Section 1).

Legalizes a design, then runs a greedy HPWL-improvement pass where each
cell is moved toward the median of its nets' bounding boxes through MLL
— every intermediate placement stays legal, the property the paper's
refs [11]/[12] call *instant legalization* and which MLL extends to
multi-row cells.

Run::

    python examples/detailed_placement.py
"""

from repro import LegalizerConfig, legalize
from repro.apps import improve_hpwl
from repro.bench import GeneratorConfig, generate_design
from repro.checker import assert_legal


def main() -> None:
    design = generate_design(
        GeneratorConfig(
            num_cells=1500,
            target_density=0.45,
            double_row_fraction=0.12,
            nets_per_cell=1.3,
            seed=7,
            name="detailed",
        )
    )
    config = LegalizerConfig(seed=7)
    result = legalize(design, config)
    assert_legal(design)
    print(
        f"legalized {result.placed} cells in {result.runtime_s:.2f}s, "
        f"HPWL = {design.hpwl_um() / 1e4:.3f} cm"
    )

    for p in range(1, 4):
        stats = improve_hpwl(design, config, passes=1)
        assert_legal(design)  # instant legalization: legal after every pass
        print(
            f"pass {p}: tried {stats.moves_tried} moves, kept "
            f"{stats.moves_kept}, HPWL {stats.hpwl_after_um / 1e4:.3f} cm "
            f"({stats.improvement_pct:+.2f}% vs pass start)"
        )


if __name__ == "__main__":
    main()
