#!/usr/bin/env python
"""Fence regions: legalization under DEF FENCE constraints.

The ISPD 2015 suite the paper evaluates on is the "Benchmarks with Fence
Regions and Routing Blockages" release: some cells are confined to fence
rectangles and all other cells are excluded from them.  This example
generates such a design, legalizes it, and verifies both directions of
the constraint — then shows what the fences cost in displacement by
legalizing the same logical design without them.

Run::

    python examples/fence_regions.py
"""

from repro import LegalizerConfig, legalize
from repro.bench import GeneratorConfig, generate_design
from repro.checker import assert_legal, displacement_stats


def build(fences: int):
    return generate_design(
        GeneratorConfig(
            num_cells=1200,
            target_density=0.5,
            double_row_fraction=0.10,
            fence_count=fences,
            fence_area_fraction=0.25,
            blockage_fraction=0.05,
            seed=17,
            name=f"fenced_{fences}",
        )
    )


def main() -> None:
    design = build(fences=3)
    fp = design.floorplan
    fenced_cells = [c for c in design.cells if c.region is not None]
    print(
        f"design: {len(design.cells)} cells, {len(fp.fences)} fences, "
        f"{len(fp.blockages)} blockages"
    )
    print(f"fenced cells: {len(fenced_cells)}")

    result = legalize(design, LegalizerConfig(seed=17))
    assert_legal(design)  # includes the region-membership check
    disp = displacement_stats(design)
    print(
        f"legalized in {result.runtime_s:.2f}s "
        f"({result.mll_successes} MLL calls), "
        f"avg displacement {disp.avg_sites:.2f} sites"
    )

    # Every fenced cell really is inside its fence, corners included.
    fences = {f.id: f for f in fp.fences}
    for cell in fenced_cells:
        fence = fences[cell.region]
        assert fence.contains_point(cell.x, cell.y)
        assert fence.contains_point(
            cell.x + cell.width - 1, cell.y + cell.height - 1
        )
    print("fence membership verified for all fenced cells")

    # The cost of fences: same generator, no fences.
    free = build(fences=0)
    result = legalize(free, LegalizerConfig(seed=17))
    assert_legal(free)
    free_disp = displacement_stats(free)
    print(
        f"without fences: avg displacement {free_disp.avg_sites:.2f} sites "
        f"(fences cost "
        f"{disp.avg_sites - free_disp.avg_sites:+.2f} sites per cell)"
    )


if __name__ == "__main__":
    main()
