#!/usr/bin/env python
"""Quickstart: generate a design, legalize it, verify, report.

Run::

    python examples/quickstart.py
"""

from repro import LegalizerConfig, legalize
from repro.bench import GeneratorConfig, generate_design
from repro.checker import assert_legal, make_report


def main() -> None:
    # A 2000-cell design at 50% density with the paper's 10% double-row
    # cells, plus an overlapping off-grid global placement.
    design = generate_design(
        GeneratorConfig(
            num_cells=2000,
            target_density=0.5,
            double_row_fraction=0.10,
            seed=42,
            name="quickstart",
        )
    )
    print(f"generated: {design}")
    print(f"  density:        {design.density():.2f}")
    print(f"  GP HPWL:        {design.hpwl_um(use_gp=True) / 1e4:.2f} cm")

    # Legalize with the paper's defaults (Rx=30, Ry=5, approximate
    # insertion point evaluation, power rails aligned).
    result = legalize(design, LegalizerConfig(seed=42))
    print(
        f"legalized {result.placed} cells: "
        f"{result.direct_placements} direct, {result.mll_successes} via MLL, "
        f"{result.rounds} retry rounds, {result.runtime_s:.2f}s"
    )

    # Independent verification of all four Section 2 constraints.
    assert_legal(design)
    print("placement verified legal")

    report = make_report(design, result.runtime_s)
    print(report.row())


if __name__ == "__main__":
    main()
