#!/usr/bin/env python
"""Buffer insertion with local legalization (paper Section 1).

Finds the longest nets of a legalized design and splits each with a
buffer placed at the sinks' centroid; MLL clears space for every new
buffer locally, so the placement never goes illegal and the rest of the
design barely moves.

Run::

    python examples/buffer_insertion.py
"""

from repro import LegalizerConfig, legalize
from repro.apps import insert_buffer
from repro.bench import GeneratorConfig, generate_design
from repro.checker import assert_legal


def main() -> None:
    design = generate_design(
        GeneratorConfig(
            num_cells=1500,
            target_density=0.55,
            nets_per_cell=1.4,
            max_net_degree=6,
            seed=23,
            name="buffering",
        )
    )
    config = LegalizerConfig(seed=23)
    legalize(design, config)
    assert_legal(design)
    hpwl_before = design.hpwl_um()
    cells_before = len(design.cells)

    buffer_master = design.library.get_or_create(1, 1)
    longest = sorted(design.netlist, key=lambda n: -sum(n.hpwl_sites()))[:25]
    inserted = 0
    for net in longest:
        result = insert_buffer(design, net, buffer_master, config)
        if result.success:
            inserted += 1
            assert_legal(design)  # legal after every insertion

    print(f"nets buffered:   {inserted}/25")
    print(f"cells added:     {len(design.cells) - cells_before}")
    print(f"HPWL before:     {hpwl_before / 1e4:.3f} cm")
    print(f"HPWL after:      {design.hpwl_um() / 1e4:.3f} cm")
    print("(buffers add pins; the point is legality, not HPWL gain)")


if __name__ == "__main__":
    main()
