#!/usr/bin/env python
"""Bookshelf interchange: persist a legalized design and reload it.

Writes a legalized design as a Bookshelf bundle
(.aux/.nodes/.nets/.pl/.scl), reads it back, verifies the placement
survived bit-exactly, then perturbs the reloaded copy and re-legalizes —
the round-trip a placement flow does between tool stages.

Run::

    python examples/bookshelf_roundtrip.py [output_dir]
"""

import sys
import tempfile

from repro import LegalizerConfig, legalize
from repro.bench import GeneratorConfig, generate_design
from repro.checker import assert_legal, displacement_stats
from repro.io import read_bookshelf, write_bookshelf


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp()

    design = generate_design(
        GeneratorConfig(num_cells=1000, target_density=0.5, seed=5,
                        name="roundtrip")
    )
    legalize(design, LegalizerConfig(seed=5))
    assert_legal(design)

    aux = write_bookshelf(design, out_dir)
    print(f"wrote {aux}")

    reloaded = read_bookshelf(aux)
    assert_legal(reloaded)
    positions_match = all(
        (a.x, a.y) == (b.x, b.y)
        for a, b in zip(design.cells, reloaded.cells)
    )
    hpwl_match = abs(design.hpwl_um() - reloaded.hpwl_um()) < 1e-6
    print(f"reloaded {len(reloaded.cells)} cells; "
          f"positions match: {positions_match}, HPWL match: {hpwl_match}")

    # A downstream tool nudges cells off-grid (e.g. a crude optimizer);
    # re-legalization restores legality with minimal displacement.
    import random

    rng = random.Random(5)
    for cell in reloaded.cells:
        cell.gp_x = cell.x + rng.gauss(0, 0.7)
        cell.gp_y = cell.y + rng.gauss(0, 0.1)
    reloaded.reset_placement()
    result = legalize(reloaded, LegalizerConfig(seed=6))
    assert_legal(reloaded)
    disp = displacement_stats(reloaded)
    print(
        f"re-legalized after perturbation in {result.runtime_s:.2f}s, "
        f"avg displacement {disp.avg_sites:.2f} sites"
    )


if __name__ == "__main__":
    main()
