"""Legalizer configuration.

The defaults mirror the paper's implementation choices: window half-sizes
``Rx = 30`` sites and ``Ry = 5`` rows (Section 3), approximate insertion
point evaluation using neighboring cells only (Section 5.2), and power
rail alignment enforced (the relaxation experiment of Section 6 turns it
off).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from enum import Enum


def _audit_default() -> bool:
    """Default of :attr:`LegalizerConfig.audit`.

    Reads the ``REPRO_AUDIT`` environment variable so test harnesses can
    switch the post-realization legality audit on globally (the repo's
    ``tests/conftest.py`` does) while production runs default to off.
    """
    return os.environ.get("REPRO_AUDIT", "").strip().lower() in (
        "1", "true", "yes", "on",
    )


def _coerce_site_count(name: str, value: object) -> int:
    """Normalize a window half-size to an ``int`` number of sites.

    ``random.Random.randint`` (used for the retry amplitudes of
    Algorithm 1, ``Rand_x(k) ∈ [-Rx·(k-1), Rx·(k-1)]``) requires integer
    bounds, so a float config like ``rx=30.5`` would crash in retry round
    k >= 2.  Integral floats (``30.0``) and other integral numbers are
    coerced; anything fractional is a configuration error reported at
    construction time instead.
    """
    if isinstance(value, bool):
        raise ValueError(f"{name} must be an integer number of sites")
    if isinstance(value, int):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    raise ValueError(
        f"{name} must be an integral number of sites (got {value!r}); "
        f"retry amplitudes Rx·(k-1)/Ry·(k-1) feed random integer draws"
    )


class CellOrder(Enum):
    """Order in which Algorithm 1 processes cells.

    The paper processes cells "in an arbitrary order" (INPUT).  On small,
    dense dies placing tall cells first avoids fragmenting the vertical
    space they need (TALL_FIRST), at a small displacement cost for the
    single-row majority.
    """

    INPUT = "input"
    TALL_FIRST = "tall_first"


class EvaluationMode(Enum):
    """How an insertion point's cost and target position are computed."""

    APPROX = "approx"
    """Neighbor-only critical positions (paper Section 5.2, last
    paragraph) — O(h_t) per insertion point; the paper's default."""

    EXACT = "exact"
    """Full critical positions via longest-path propagation over the push
    chains — O(|C_W|) per insertion point, exact cost."""


class Kernel(Enum):
    """Which implementation runs the MLL hot path.

    Both kernels produce bit-identical placements (the benchmark harness
    and the property tests assert it); the object kernel is retained as
    the differential oracle for the vectorized one.
    """

    OBJECT = "object"
    """The original pure-python object-traversal implementation."""

    SOA = "soa"
    """Vectorized struct-of-arrays sweeps over the numpy mirror
    (:mod:`repro.core.soa`) for bounds, enumeration, and evaluation."""


@dataclass(frozen=True, slots=True)
class LegalizerConfig:
    """Tunable parameters of Algorithm 1 and MLL."""

    rx: int = 30
    """Horizontal window half-size in sites (paper: Rx = 30)."""

    ry: int = 5
    """Vertical window half-size in rows (paper: Ry = 5)."""

    power_aligned: bool = True
    """Enforce power-rail alignment of even-height cells (constraint 4).

    ``False`` reproduces the "Power Line Not Aligned" experiment."""

    evaluation: EvaluationMode = EvaluationMode.APPROX
    """Insertion point evaluation mode."""

    seed: int = 0
    """Seed of the retry-perturbation RNG (Algorithm 1 lines 9-17)."""

    order: CellOrder = CellOrder.INPUT
    """Cell processing order of the first pass."""

    max_rounds: int = 200
    """Safety bound on retry rounds before giving up on a design."""

    double_row_parity: int | None = None
    """Emulate Wu & Chu's restriction (paper ref [10], TCAD'16): double-
    row-height cells may only start on rows whose index has this parity
    (0 = even rows).  ``None`` (default) is the paper's unrestricted
    algorithm; the ablation bench quantifies what the restriction costs."""

    max_target_displacement_um: float | None = None
    """Optional cap on the target cell's own displacement per MLL call
    — the displacement-constrained instant legalization of the paper's
    ref [11] (Chow et al., ISPD 2014).  Insertion points that would move
    the target farther than this are rejected; MLL fails when none
    remain.  ``None`` (default) disables the cap, matching the paper."""

    quarantine: bool = False
    """Quarantine cells that exhaust the retry budget instead of
    raising :class:`~repro.core.legalizer.LegalizationError`.

    The paper's Algorithm 1 retries "until everything is placed"; its
    benchmarks always converge, so exhaustion is an abort there.  In a
    long-running service one pathological cell must not discard an
    otherwise-finished run: with ``quarantine=True`` the driver
    completes normally, reports the stuck cells in
    ``LegalizationResult.stuck`` (a :class:`~repro.core.legalizer.
    StuckCellReport` with per-cell coordinates and retry counts), and
    leaves every successfully placed cell in place — partial legality
    the caller can audit, persist, or feed back to a placer."""

    kernel: Kernel | str = Kernel.OBJECT
    """Hot-path implementation: :attr:`Kernel.OBJECT` (the reference
    object-model loops) or :attr:`Kernel.SOA` (vectorized numpy sweeps
    over the :mod:`repro.core.soa` mirror).  A plain string (``"soa"``)
    is accepted and normalized at construction.  Placements are
    bit-identical either way; the switch only trades constant factors."""

    audit: bool = field(default_factory=_audit_default)
    """Run the independent legality checker over the realized region
    after every successful MLL insertion (:func:`repro.checker.
    verify_cells`).  A violation raises :class:`~repro.core.mll.
    AuditError` *after* the journal has rolled the insertion back, so a
    realization bug can never corrupt the design silently.  Defaults to
    the ``REPRO_AUDIT`` environment variable (the test suite switches it
    on); production runs default to off."""

    def __post_init__(self) -> None:
        # Normalize rx/ry first (frozen dataclass: go through the
        # descriptor machinery explicitly).
        object.__setattr__(self, "rx", _coerce_site_count("rx", self.rx))
        object.__setattr__(self, "ry", _coerce_site_count("ry", self.ry))
        if self.rx < 1 or self.ry < 0:
            raise ValueError("rx must be >= 1 and ry >= 0")
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be positive")
        if (
            self.max_target_displacement_um is not None
            and self.max_target_displacement_um < 0
        ):
            raise ValueError("max_target_displacement_um must be >= 0")
        if self.double_row_parity not in (None, 0, 1):
            raise ValueError("double_row_parity must be None, 0 or 1")
        if not isinstance(self.kernel, Kernel):
            # Accept the string spelling ("object" / "soa") from CLI
            # flags and config files; Kernel() raises ValueError on
            # anything unknown, which is the error we want here.
            object.__setattr__(self, "kernel", Kernel(self.kernel))
