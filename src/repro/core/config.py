"""Legalizer configuration.

The defaults mirror the paper's implementation choices: window half-sizes
``Rx = 30`` sites and ``Ry = 5`` rows (Section 3), approximate insertion
point evaluation using neighboring cells only (Section 5.2), and power
rail alignment enforced (the relaxation experiment of Section 6 turns it
off).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class CellOrder(Enum):
    """Order in which Algorithm 1 processes cells.

    The paper processes cells "in an arbitrary order" (INPUT).  On small,
    dense dies placing tall cells first avoids fragmenting the vertical
    space they need (TALL_FIRST), at a small displacement cost for the
    single-row majority.
    """

    INPUT = "input"
    TALL_FIRST = "tall_first"


class EvaluationMode(Enum):
    """How an insertion point's cost and target position are computed."""

    APPROX = "approx"
    """Neighbor-only critical positions (paper Section 5.2, last
    paragraph) — O(h_t) per insertion point; the paper's default."""

    EXACT = "exact"
    """Full critical positions via longest-path propagation over the push
    chains — O(|C_W|) per insertion point, exact cost."""


@dataclass(frozen=True, slots=True)
class LegalizerConfig:
    """Tunable parameters of Algorithm 1 and MLL."""

    rx: int = 30
    """Horizontal window half-size in sites (paper: Rx = 30)."""

    ry: int = 5
    """Vertical window half-size in rows (paper: Ry = 5)."""

    power_aligned: bool = True
    """Enforce power-rail alignment of even-height cells (constraint 4).

    ``False`` reproduces the "Power Line Not Aligned" experiment."""

    evaluation: EvaluationMode = EvaluationMode.APPROX
    """Insertion point evaluation mode."""

    seed: int = 0
    """Seed of the retry-perturbation RNG (Algorithm 1 lines 9-17)."""

    order: CellOrder = CellOrder.INPUT
    """Cell processing order of the first pass."""

    max_rounds: int = 200
    """Safety bound on retry rounds before giving up on a design."""

    double_row_parity: int | None = None
    """Emulate Wu & Chu's restriction (paper ref [10], TCAD'16): double-
    row-height cells may only start on rows whose index has this parity
    (0 = even rows).  ``None`` (default) is the paper's unrestricted
    algorithm; the ablation bench quantifies what the restriction costs."""

    max_target_displacement_um: float | None = None
    """Optional cap on the target cell's own displacement per MLL call
    — the displacement-constrained instant legalization of the paper's
    ref [11] (Chow et al., ISPD 2014).  Insertion points that would move
    the target farther than this are rejected; MLL fails when none
    remain.  ``None`` (default) disables the cap, matching the paper."""

    def __post_init__(self) -> None:
        if self.rx < 1 or self.ry < 0:
            raise ValueError("rx must be >= 1 and ry >= 0")
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be positive")
        if (
            self.max_target_displacement_um is not None
            and self.max_target_displacement_um < 0
        ):
            raise ValueError("max_target_displacement_um must be >= 0")
        if self.double_row_parity not in (None, 0, 1):
            raise ValueError("double_row_parity must be None, 0 or 1")
