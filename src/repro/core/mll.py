"""The Multi-row Local Legalization primitive (paper Section 4).

``MultiRowLocalLegalizer.try_place`` attempts to insert one unplaced
target cell near a desired position: it extracts a local region around
the position, enumerates every valid insertion point, evaluates them, and
realizes the cheapest one.  On failure (no feasible insertion point) the
design is left untouched — the abort semantics Algorithm 1 relies on.
The realization step runs inside a :class:`~repro.db.journal.Transaction`,
so the guarantee also holds under *exceptions*: a mid-flight
:class:`~repro.core.realization.RealizationError` (or any injected
fault) rolls back to the exact pre-call state before propagating.  With
``config.audit`` enabled the realized region is additionally re-checked
by the independent checker and rolled back on any violation
(:class:`AuditError`).

The same primitive powers the incremental use cases the paper motivates
(cell moves with instant legalization, gate sizing, buffer insertion);
see :mod:`repro.apps`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.bounds import compute_bounds
from repro.core.config import EvaluationMode, Kernel, LegalizerConfig
from repro.core.enumeration import enumerate_insertion_points
from repro.core.evaluation import EvaluatedPoint, evaluate_insertion_point
from repro.core.intervals import build_insertion_intervals
from repro.core.local_region import LocalRegion, extract_local_region
from repro.core.realization import realize_insertion
from repro.db.cell import Cell
from repro.db.design import Design
from repro.db.journal import Transaction
from repro.geometry import Rect

if TYPE_CHECKING:
    from repro.checker.legality import Violation
    from repro.core.soa import SoaKernel


class AuditError(Exception):
    """The post-realization legality audit found a violation.

    Raised only after the transactional journal has already rolled the
    offending insertion back: the design is in its pre-call state when
    this propagates.  Carries the checker's findings in ``violations``.
    """

    def __init__(
        self, message: str, violations: list["Violation"] | None = None
    ) -> None:
        super().__init__(message)
        self.violations = violations if violations is not None else []


@dataclass(frozen=True, slots=True)
class MllResult:
    """Outcome of one MLL invocation."""

    success: bool
    num_insertion_points: int = 0
    chosen: EvaluatedPoint | None = None

    @property
    def cost(self) -> float:
        """Estimated cost of the realized insertion (microns)."""
        return self.chosen.cost if self.chosen is not None else math.inf


class MultiRowLocalLegalizer:
    """MLL bound to one design and one configuration.

    Assign an :class:`~repro.core.instrumentation.MllTelemetry` to
    ``telemetry`` to record per-call observations; the default (``None``)
    costs nothing.
    """

    def __init__(self, design: Design, config: LegalizerConfig | None = None) -> None:
        self.design = design
        self.config = config if config is not None else LegalizerConfig()
        self.telemetry = None
        self._soa_kernel: "SoaKernel | None" = None
        if self.config.kernel is Kernel.SOA:
            # Lazy import: the object kernel must work without numpy.
            from repro.core.soa import SoaKernel as _SoaKernel

            self._soa_kernel = _SoaKernel(design)

    def window_for(self, target: Cell, x: float, y: float) -> Rect:
        """The local-region window of Section 3: lower-left corner at
        ``(x - Rx, y - Ry)``, size ``(2Rx + w_t) x (2Ry + h_t)``."""
        cfg = self.config
        return Rect(
            math.floor(x) - cfg.rx,
            math.floor(y) - cfg.ry,
            2 * cfg.rx + target.width,
            2 * cfg.ry + target.height,
        )

    def try_place(self, target: Cell, x: float, y: float) -> MllResult:
        """Insert *target* as close to ``(x, y)`` as possible.

        Returns a successful :class:`MllResult` and mutates the design
        when a feasible insertion point exists; otherwise returns a
        failure result and changes nothing.
        """
        if target.is_placed:
            raise ValueError(f"target {target.name!r} is already placed")
        if self.telemetry is not None:
            return self._try_place_instrumented(target, x, y)
        return self._try_place(target, x, y)

    def _try_place_instrumented(
        self, target: Cell, x: float, y: float
    ) -> MllResult:
        """try_place wrapped with telemetry recording."""
        import time

        from repro.core.instrumentation import MllCallRecord

        t0 = time.perf_counter()
        region_cells: list[tuple[Cell, int | None]] = []

        def capture(region: LocalRegion) -> None:
            region_cells.extend((c, c.x) for c in region.cells)

        result = self._try_place(target, x, y, on_region=capture)
        pushed = sum(1 for c, old_x in region_cells if c.x != old_x)
        self.telemetry.record(
            MllCallRecord(
                success=result.success,
                target_width=target.width,
                target_height=target.height,
                local_cells=len(region_cells),
                insertion_points=result.num_insertion_points,
                cells_pushed=pushed,
                cost_um=result.cost if result.success else float("nan"),
                runtime_s=time.perf_counter() - t0,
            )
        )
        return result

    def _try_place(
        self,
        target: Cell,
        x: float,
        y: float,
        on_region: Callable[[LocalRegion], None] | None = None,
    ) -> MllResult:
        design = self.design
        cfg = self.config

        region = extract_local_region(
            design, self.window_for(target, x, y), region_id=target.region
        )
        if on_region is not None:
            on_region(region)
        if not region.segments:
            return MllResult(success=False)
        evaluated = self._evaluate_region(region, target, x, y, cfg.evaluation)
        if not evaluated:
            return MllResult(success=False)

        best: EvaluatedPoint | None = None
        for ev in evaluated:
            if self._exceeds_displacement_cap(ev, x, y):
                continue
            if best is None or ev.cost < best.cost:
                best = ev
        if best is None:
            return MllResult(success=False, num_insertion_points=len(evaluated))
        # Transactional realization: any exception below (a
        # RealizationError, an audit violation, an injected fault, even a
        # KeyboardInterrupt) rolls the design back to the exact pre-call
        # state before propagating.
        with Transaction(design):
            realize_insertion(design, region, best.point, target, best.target_x)
            if cfg.audit:
                self._audit(region, target)
        return MllResult(
            success=True, num_insertion_points=len(evaluated), chosen=best
        )

    def _evaluate_region(
        self,
        region: LocalRegion,
        target: Cell,
        desired_x: float,
        desired_y: float,
        mode: EvaluationMode,
    ) -> list[EvaluatedPoint]:
        """bounds → intervals → enumeration → evaluation, one
        :class:`EvaluatedPoint` per insertion point in enumeration order,
        via the configured kernel.  The two kernels are bit-identical —
        the SoA path is a vectorized sweep over the numpy mirror, the
        object path doubles as its differential oracle."""
        fp = self.design.floorplan
        row_ok = self._row_predicate(target)
        if self._soa_kernel is not None:
            return self._soa_kernel.evaluate_region(
                region,
                target,
                desired_x,
                desired_y,
                fp.site_width_um,
                fp.site_height_um,
                mode,
                row_ok,
            )
        bounds = compute_bounds(region)
        feasible, discarded = build_insertion_intervals(
            region, bounds, target.width
        )
        points = enumerate_insertion_points(
            region, feasible, discarded, target.height, row_ok
        )
        return [
            evaluate_insertion_point(
                region,
                point,
                target,
                desired_x=desired_x,
                desired_y=desired_y,
                site_width_um=fp.site_width_um,
                site_height_um=fp.site_height_um,
                mode=mode,
            )
            for point in points
        ]

    def _audit(self, region: LocalRegion, target: Cell) -> None:
        """Re-check the realized region with the independent checker.

        Runs inside the realization transaction so a violation raises
        :class:`AuditError` *after* rollback restored the pre-call state.
        """
        from repro.checker.legality import verify_cells

        cells = [target]
        cells.extend(c for c in region.cells if c is not target)
        violations = verify_cells(
            self.design, cells, power_aligned=self.config.power_aligned
        )
        if violations:
            head = "; ".join(str(v) for v in violations[:5])
            raise AuditError(
                f"post-realization audit of {target.name!r} found "
                f"{len(violations)} violations (insertion rolled back): "
                f"{head}",
                violations,
            )

    def _row_predicate(
        self, target: Cell
    ) -> Callable[[int], bool] | None:
        """Bottom-row filter combining power alignment and the optional
        Wu & Chu double-row restriction; None when nothing applies."""
        cfg = self.config
        design = self.design
        checks: list[Callable[[int], bool]] = []
        if cfg.power_aligned and target.master.needs_rail_alignment:
            checks.append(lambda r: design.row_compatible(target, r))
        if cfg.double_row_parity is not None and target.height == 2:
            parity = cfg.double_row_parity
            checks.append(lambda r: r % 2 == parity)
        if not checks:
            return None
        return lambda r: all(check(r) for check in checks)

    def _exceeds_displacement_cap(
        self, ev: EvaluatedPoint, desired_x: float, desired_y: float
    ) -> bool:
        """True when the target's own displacement breaks the optional
        per-call cap (config.max_target_displacement_um)."""
        cap = self.config.max_target_displacement_um
        if cap is None:
            return False
        fp = self.design.floorplan
        own = fp.displacement_um(
            ev.target_x - desired_x, ev.bottom_row - desired_y
        )
        return own > cap

    def evaluate_candidates(
        self,
        target: Cell,
        x: float,
        y: float,
        mode: EvaluationMode | None = None,
        apply_displacement_cap: bool = True,
    ) -> list[EvaluatedPoint]:
        """All evaluated insertion points near ``(x, y)``, without placing.

        A read-only variant of :meth:`try_place` used by analyses and the
        figure benchmarks.  By default the optional per-call displacement
        cap (``config.max_target_displacement_um``) filters the candidate
        list exactly like :meth:`try_place` rejects points — so the two
        methods agree on feasibility.  Pass
        ``apply_displacement_cap=False`` to see the uncapped candidate
        set (the figure benchmarks sweep cost over *all* points).
        """
        if target.is_placed:
            raise ValueError(f"target {target.name!r} is already placed")
        design = self.design
        cfg = self.config
        region = extract_local_region(
            design, self.window_for(target, x, y), region_id=target.region
        )
        if not region.segments:
            return []
        evaluated = self._evaluate_region(
            region, target, x, y, mode if mode is not None else cfg.evaluation
        )
        if apply_displacement_cap:
            evaluated = [
                ev
                for ev in evaluated
                if not self._exceeds_displacement_cap(ev, x, y)
            ]
        return evaluated
