"""Legal placement realization (paper Section 5.3, Algorithm 2).

Given a chosen insertion point and target x, the target cell is inserted
into its gaps and overlapping cells are ripple-pushed away: a queue seeded
with the target pops cells and shifts any left neighbor that overlaps,
minimally, re-enqueueing it; then symmetrically to the right.  A multi-row
cell popped from the queue propagates the push into every row it spans —
this is the coupling that single-row legalizers cannot express.

The insertion interval bounds (built from the leftmost/rightmost
placements) guarantee every push stays inside the local segments and never
touches a non-local cell; a violation raises :class:`RealizationError`
and indicates a bug upstream, not a recoverable condition.

Every mutation performed here (the target's position assignment, each
segment cell-list insert, each ripple shift) is journaled when the design
has an active :class:`~repro.db.journal.Transaction`, so a mid-flight
exception rolls back to the exact pre-call state instead of corrupting
the design.  :meth:`MultiRowLocalLegalizer.try_place
<repro.core.mll.MultiRowLocalLegalizer.try_place>` always opens such a
transaction around this function.
"""

from __future__ import annotations

from collections import deque

from repro.core.enumeration import InsertionPoint
from repro.core.local_region import LocalRegion
from repro.db.cell import Cell
from repro.db.design import Design


class RealizationError(Exception):
    """An insertion that should have been feasible could not be realized."""


def realize_insertion(
    design: Design,
    region: LocalRegion,
    point: InsertionPoint,
    target: Cell,
    target_x: int,
) -> None:
    """Place *target* at ``(target_x, point.bottom_row)`` and legalize.

    Mutates the design in place: the target is registered in its segments
    at the gap positions of *point*, and local cells are shifted along x
    (their segment order never changes).
    """
    if target.is_placed:
        raise RealizationError(f"target {target.name!r} is already placed")
    if not point.x_lo <= target_x <= point.x_hi:
        raise RealizationError(
            f"target x {target_x} outside cutline range "
            f"[{point.x_lo},{point.x_hi}]"
        )

    journal = design.journal
    old_x, old_y = target.x, target.y
    target.x = target_x
    target.y = point.bottom_row
    if journal is not None:
        journal.note_set_pos(target, old_x, old_y, site="realize.target_pos")
    # Register the target in each row's DB segment at its gap slot and in
    # the local segment lists, so neighbor lookups below see it.
    for iv in point.intervals:
        local_seg = region.segments[iv.row_index]
        db_seg = local_seg.db_segment
        left_outside = sum(1 for c in db_seg.cells if c.x < local_seg.x0)  # type: ignore[operator]
        db_index = left_outside + iv.gap_index
        db_seg.cells.insert(db_index, target)
        if journal is not None:
            journal.note_list_insert(
                db_seg.cells, db_index, target, site="realize.db_segment_insert"
            )
        local_seg.cells.insert(iv.gap_index, target)
        if journal is not None:
            journal.note_list_insert(
                local_seg.cells, iv.gap_index, target,
                site="realize.local_segment_insert",
            )
    if target not in region.cells:
        region.cells.append(target)
        if journal is not None:
            journal.note_list_insert(
                region.cells, len(region.cells) - 1, target,
                site="realize.region_append",
            )

    _push_side(design, region, target, side=-1)
    _push_side(design, region, target, side=+1)


def _push_side(
    design: Design, region: LocalRegion, target: Cell, side: int
) -> None:
    """Ripple-push overlapping cells away from *target*.

    ``side`` is -1 for the left sweep (Algorithm 2 lines 2-11) and +1 for
    the right sweep (lines 12-21).
    """
    queue: deque[Cell] = deque([target])
    while queue:
        cell = queue.popleft()
        assert cell.x is not None
        for row in cell.rows_spanned():
            seg = region.segments.get(row)
            if seg is None:
                raise RealizationError(
                    f"cell {cell.name!r} spans row {row} outside the region"
                )
            idx = region.cell_index(row, cell)
            if side < 0:
                if idx == 0:
                    continue
                nb = seg.cells[idx - 1]
                assert nb.x is not None
                if nb.x + nb.width > cell.x:
                    new_x = cell.x - nb.width
                    if new_x < seg.x0:
                        raise RealizationError(
                            f"push drives {nb.name!r} past segment start "
                            f"{seg.x0} in row {row}"
                        )
                    design.shift_x(nb, new_x)
                    queue.append(nb)
            else:
                if idx == len(seg.cells) - 1:
                    continue
                nb = seg.cells[idx + 1]
                assert nb.x is not None
                if cell.x + cell.width > nb.x:
                    new_x = cell.x + cell.width
                    if new_x + nb.width > seg.x1:
                        raise RealizationError(
                            f"push drives {nb.name!r} past segment end "
                            f"{seg.x1} in row {row}"
                        )
                    design.shift_x(nb, new_x)
                    queue.append(nb)
