"""Leftmost / rightmost placements of a local region (paper Section 5.1.1,
Figure 6).

For every local cell we compute ``xL`` (its position when all local cells
are compacted as far left as possible, keeping per-segment cell order) and
``xR`` (compacted right).  A multi-row cell couples its rows: its bound is
the tightest over all segments it occupies.

Because the current placement is legal and order-preserving compaction
only relaxes it, ``xL <= x <= xR`` holds for every local cell — an
invariant the tests enforce.

Both sweeps are longest-path computations over the (implicit) adjacency
DAG.  Processing cells in current-x order is a valid topological order:
a cell's predecessor in any segment lies strictly left of it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.local_region import LocalRegion


@dataclass(frozen=True, slots=True)
class PlacementBounds:
    """``xL`` / ``xR`` per local cell id."""

    left: dict[int, int]
    right: dict[int, int]

    def x_left(self, cell_id: int) -> int:
        """Leftmost feasible x of the cell (lower-left corner)."""
        return self.left[cell_id]

    def x_right(self, cell_id: int) -> int:
        """Rightmost feasible x of the cell (lower-left corner)."""
        return self.right[cell_id]


def compute_bounds(region: LocalRegion) -> PlacementBounds:
    """Compute leftmost and rightmost placements for *region*.

    Raises :class:`ValueError` if the region's current placement is not
    legal (a bound crosses the cell's current position), which would
    indicate database corruption.
    """
    for cell in region.cells:
        if cell.x is None:
            raise ValueError(
                f"local cell {cell.name!r} is unplaced; "
                f"region placement is not legal"
            )

    cells = sorted(region.cells, key=lambda c: (c.x, c.id))  # type: ignore[arg-type,return-value]

    left: dict[int, int] = {}
    for cell in cells:
        assert cell.x is not None
        x = None
        for row in cell.rows_spanned():
            seg = region.segments[row]
            idx = region.cell_index(row, cell)
            if idx == 0:
                floor = seg.x0
            else:
                pred = seg.cells[idx - 1]
                if pred.id not in left:
                    raise ValueError(
                        f"cells {pred.name!r} and {cell.name!r} are out of "
                        f"order in row {row}; region placement is not legal"
                    )
                floor = left[pred.id] + pred.width
            x = floor if x is None else max(x, floor)
        assert x is not None
        if x > cell.x:
            raise ValueError(
                f"leftmost bound {x} of cell {cell.name!r} exceeds its "
                f"current x {cell.x}; region placement is not legal"
            )
        left[cell.id] = x

    right: dict[int, int] = {}
    for cell in reversed(cells):
        assert cell.x is not None
        x = None
        for row in cell.rows_spanned():
            seg = region.segments[row]
            idx = region.cell_index(row, cell)
            if idx == len(seg.cells) - 1:
                ceil = seg.x1 - cell.width
            else:
                nxt = seg.cells[idx + 1]
                if nxt.id not in right:
                    raise ValueError(
                        f"cells {cell.name!r} and {nxt.name!r} are out of "
                        f"order in row {row}; region placement is not legal"
                    )
                ceil = right[nxt.id] - cell.width
            x = ceil if x is None else min(x, ceil)
        assert x is not None
        if x < cell.x:
            raise ValueError(
                f"rightmost bound {x} of cell {cell.name!r} is below its "
                f"current x {cell.x}; region placement is not legal"
            )
        right[cell.id] = x

    return PlacementBounds(left=left, right=right)
