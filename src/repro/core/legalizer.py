"""The top-level legalization driver (paper Section 3, Algorithm 1).

Every movable cell is first tried at its global-placement position: if
the nearest site-aligned, rail-matching spot is free, the cell is placed
directly; otherwise MLL legalizes it locally.  Cells that fail (their
neighborhood is packed) are retried in later rounds at positions
perturbed by uniform random offsets whose amplitude grows with the round
number — ``Rand_x(k) ∈ [-Rx·(k-1), Rx·(k-1)]`` — until everything is
placed.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.core.config import CellOrder, LegalizerConfig
from repro.core.mll import MultiRowLocalLegalizer
from repro.db.cell import Cell
from repro.db.design import Design
from repro.db.journal import Transaction


class LegalizationError(Exception):
    """The driver exhausted its retry budget without placing every cell.

    Carries the partial :class:`LegalizationResult` in ``result`` so
    callers (the CLI, engine shard workers) can report placed counts and
    telemetry from the failed round instead of losing them; its
    ``failed_cells`` names the cells still unplaced.
    """

    def __init__(
        self, message: str, result: "LegalizationResult | None" = None
    ) -> None:
        super().__init__(message)
        self.result = result


@dataclass(slots=True)
class LegalizationResult:
    """Run statistics of one legalization."""

    placed: int = 0
    direct_placements: int = 0
    mll_successes: int = 0
    mll_failures: int = 0
    rounds: int = 0
    runtime_s: float = 0.0
    insertion_points_evaluated: int = 0
    failed_cells: list[str] = field(default_factory=list)

    @property
    def mll_calls(self) -> int:
        """Total MLL invocations."""
        return self.mll_successes + self.mll_failures

    def merge(self, other: "LegalizationResult") -> "LegalizationResult":
        """Fold *other* into this result in place (and return ``self``).

        Used to combine per-shard results of the parallel engine
        (:mod:`repro.engine`) and multi-run statistics.  Counters add up;
        ``rounds`` takes the maximum (shards run their retry rounds
        concurrently, so the slowest shard defines the round count);
        ``runtime_s`` accumulates *CPU* time — for a parallel run the
        wall-clock lives in :class:`repro.engine.EngineResult`;
        ``failed_cells`` concatenates.
        """
        self.placed += other.placed
        self.direct_placements += other.direct_placements
        self.mll_successes += other.mll_successes
        self.mll_failures += other.mll_failures
        self.rounds = max(self.rounds, other.rounds)
        self.runtime_s += other.runtime_s
        self.insertion_points_evaluated += other.insertion_points_evaluated
        self.failed_cells.extend(other.failed_cells)
        return self

    def __iadd__(self, other: "LegalizationResult") -> "LegalizationResult":
        """``result += other`` is :meth:`merge`."""
        if not isinstance(other, LegalizationResult):
            return NotImplemented
        return self.merge(other)


class Legalizer:
    """Algorithm 1 bound to one design and configuration."""

    def __init__(self, design: Design, config: LegalizerConfig | None = None) -> None:
        self.design = design
        self.config = config if config is not None else LegalizerConfig()
        self.mll = MultiRowLocalLegalizer(design, self.config)

    def run(self, cells: list[Cell] | None = None) -> LegalizationResult:
        """Legalize *cells* (default: all unplaced movable cells).

        Cells are processed in input order (the paper: "arbitrary
        order").  Raises :class:`LegalizationError` when
        ``config.max_rounds`` retry rounds do not suffice; the design is
        left with the successfully placed subset in place.
        """
        t0 = time.perf_counter()
        cfg = self.config
        rng = random.Random(cfg.seed)
        result = LegalizationResult()

        if cells is None:
            todo = [c for c in self.design.movable_cells() if not c.is_placed]
        else:
            todo = [c for c in cells if not c.is_placed]
        if cfg.order is CellOrder.TALL_FIRST:
            todo.sort(key=lambda c: (-c.height, -c.width, c.id))

        # First pass at the raw GP positions (Algorithm 1 lines 2-7).
        unplaced: list[Cell] = []
        for cell in todo:
            if not self._try_cell(cell, cell.gp_x, cell.gp_y, result):
                unplaced.append(cell)

        # Retry rounds with growing random perturbation (lines 8-17).
        k = 1
        while unplaced:
            if k > cfg.max_rounds:
                result.failed_cells = [c.name for c in unplaced]
                result.runtime_s = time.perf_counter() - t0
                raise LegalizationError(
                    f"{len(unplaced)} cells unplaced after {cfg.max_rounds} "
                    f"retry rounds on {self.design.name!r}",
                    result=result,
                )
            # Amplitudes follow the paper (Rx·(k-1), Ry·(k-1)) but are
            # capped at the die size: on small dies an unbounded amplitude
            # would concentrate every clamped retry position on the die
            # edges and never sample the interior.  LegalizerConfig
            # coerces rx/ry to ints, and int() guards against monkeypatched
            # configs — rng.randint rejects float bounds.
            amp_x = int(min(cfg.rx * (k - 1), self.design.floorplan.row_width))
            amp_y = int(min(cfg.ry * (k - 1), self.design.floorplan.num_rows))
            still: list[Cell] = []
            for cell in unplaced:
                tx = cell.gp_x + (rng.randint(-amp_x, amp_x) if amp_x else 0)
                ty = cell.gp_y + (rng.randint(-amp_y, amp_y) if amp_y else 0)
                if not self._try_cell(cell, tx, ty, result):
                    still.append(cell)
            unplaced = still
            result.rounds = k
            k += 1

        result.runtime_s = time.perf_counter() - t0
        return result

    def _try_cell(
        self, cell: Cell, tx: float, ty: float, result: LegalizationResult
    ) -> bool:
        """Direct placement at the nearest aligned free spot, else MLL.

        Both paths are transactional: the direct placement is journaled
        inside a :class:`~repro.db.journal.Transaction` (so an exception
        — e.g. an injected fault — restores the pre-call state), and
        :meth:`MultiRowLocalLegalizer.try_place` opens its own
        transaction around realization.
        """
        cfg = self.config
        pos = self.design.nearest_position(
            cell, tx, ty, power_aligned=cfg.power_aligned
        )
        if (
            pos is not None
            and cfg.double_row_parity is not None
            and cell.height == 2
            and pos[1] % 2 != cfg.double_row_parity
        ):
            pos = None  # Wu & Chu restriction: let MLL pick a legal row
        if pos is not None and self.design.can_place(
            cell, pos[0], pos[1], power_aligned=cfg.power_aligned
        ):
            with Transaction(self.design):
                self.design.place(
                    cell, pos[0], pos[1], power_aligned=cfg.power_aligned
                )
            result.direct_placements += 1
            result.placed += 1
            return True
        mll_result = self.mll.try_place(cell, tx, ty)
        result.insertion_points_evaluated += mll_result.num_insertion_points
        if mll_result.success:
            result.mll_successes += 1
            result.placed += 1
            return True
        result.mll_failures += 1
        return False


def legalize(
    design: Design, config: LegalizerConfig | None = None
) -> LegalizationResult:
    """One-call convenience wrapper around :class:`Legalizer`."""
    return Legalizer(design, config).run()
