"""The top-level legalization driver (paper Section 3, Algorithm 1).

Every movable cell is first tried at its global-placement position: if
the nearest site-aligned, rail-matching spot is free, the cell is placed
directly; otherwise MLL legalizes it locally.  Cells that fail (their
neighborhood is packed) are retried in later rounds at positions
perturbed by uniform random offsets whose amplitude grows with the round
number — ``Rand_x(k) ∈ [-Rx·(k-1), Rx·(k-1)]`` — until everything is
placed.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.core.config import CellOrder, LegalizerConfig
from repro.core.mll import MultiRowLocalLegalizer
from repro.db.cell import Cell
from repro.db.design import Design
from repro.db.journal import Transaction


class LegalizationError(Exception):
    """The driver exhausted its retry budget without placing every cell.

    Carries the partial :class:`LegalizationResult` in ``result`` so
    callers (the CLI, engine shard workers) can report placed counts and
    telemetry from the failed round instead of losing them; its
    ``failed_cells`` names the cells still unplaced.
    """

    def __init__(
        self, message: str, result: "LegalizationResult | None" = None
    ) -> None:
        super().__init__(message)
        self.result = result


@dataclass(frozen=True, slots=True)
class StuckCell:
    """One cell quarantined after exhausting Algorithm 1's retry budget."""

    name: str
    cell_id: int
    gp_x: float
    gp_y: float
    width: int
    height: int
    rounds: int
    """Retry rounds the cell survived before quarantine."""
    origin: str = "serial"
    """Where the budget ran out: ``"serial"`` (plain driver), ``"seam"``
    (the engine's final sequential pass), or a shard label."""


@dataclass(slots=True)
class StuckCellReport:
    """Quarantine manifest: cells legalization gave up on.

    Produced instead of a mid-run :class:`LegalizationError` when
    :attr:`~repro.core.config.LegalizerConfig.quarantine` is on; carried
    on :class:`LegalizationResult` (and, via it, on
    :class:`repro.engine.EngineResult`).  The run completes with partial
    legality — every *placed* cell still satisfies the checker — and the
    report tells the caller exactly what is missing and where it wanted
    to go.
    """

    cells: list[StuckCell] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.cells)

    def __len__(self) -> int:
        return len(self.cells)

    @property
    def names(self) -> list[str]:
        return [c.name for c in self.cells]

    def merge(self, other: "StuckCellReport") -> "StuckCellReport":
        """Concatenate *other*'s quarantined cells into this report."""
        self.cells.extend(other.cells)
        return self

    def summary(self, limit: int = 5) -> str:
        """One-line human-readable digest for logs and the CLI."""
        if not self.cells:
            return "quarantined 0 cells"
        head = ", ".join(
            f"{c.name}@({c.gp_x:.0f},{c.gp_y:.0f})" for c in self.cells[:limit]
        )
        more = f" (+{len(self.cells) - limit} more)" if len(self.cells) > limit else ""
        return f"quarantined {len(self.cells)} cells: {head}{more}"


@dataclass(slots=True)
class LegalizationResult:
    """Run statistics of one legalization."""

    placed: int = 0
    direct_placements: int = 0
    mll_successes: int = 0
    mll_failures: int = 0
    rounds: int = 0
    runtime_s: float = 0.0
    """*CPU-time-like* duration: the time this driver invocation spent
    working.  Under :meth:`merge` it **sums** across shards, so for a
    parallel run it approximates aggregate CPU seconds, not elapsed
    time — speedups must be computed from
    :attr:`repro.engine.EngineResult.wall_time_s` instead."""
    insertion_points_evaluated: int = 0
    failed_cells: list[str] = field(default_factory=list)
    stuck: StuckCellReport = field(default_factory=StuckCellReport)
    """Cells quarantined under ``LegalizerConfig.quarantine`` (empty on
    fully successful runs and whenever quarantine is off)."""

    @property
    def mll_calls(self) -> int:
        """Total MLL invocations."""
        return self.mll_successes + self.mll_failures

    def merge(self, other: "LegalizationResult") -> "LegalizationResult":
        """Fold *other* into this result in place (and return ``self``).

        Used to combine per-shard results of the parallel engine
        (:mod:`repro.engine`) and multi-run statistics.  Counters add up;
        ``rounds`` takes the maximum (shards run their retry rounds
        concurrently, so the slowest shard defines the round count);
        ``runtime_s`` accumulates *CPU* time — summed worker seconds,
        never wall-clock; for a parallel run the wall-clock lives in
        :attr:`repro.engine.EngineResult.wall_time_s` and is the only
        number speedups may be computed from; ``failed_cells`` and
        ``stuck`` concatenate.
        """
        self.placed += other.placed
        self.direct_placements += other.direct_placements
        self.mll_successes += other.mll_successes
        self.mll_failures += other.mll_failures
        self.rounds = max(self.rounds, other.rounds)
        self.runtime_s += other.runtime_s
        self.insertion_points_evaluated += other.insertion_points_evaluated
        self.failed_cells.extend(other.failed_cells)
        self.stuck.merge(other.stuck)
        return self

    def __iadd__(self, other: "LegalizationResult") -> "LegalizationResult":
        """``result += other`` is :meth:`merge`."""
        if not isinstance(other, LegalizationResult):
            return NotImplemented
        return self.merge(other)


class Legalizer:
    """Algorithm 1 bound to one design and configuration."""

    def __init__(self, design: Design, config: LegalizerConfig | None = None) -> None:
        self.design = design
        self.config = config if config is not None else LegalizerConfig()
        self.mll = MultiRowLocalLegalizer(design, self.config)

    def run(
        self, cells: list[Cell] | None = None, origin: str = "serial"
    ) -> LegalizationResult:
        """Legalize *cells* (default: all unplaced movable cells).

        Cells are processed in input order (the paper: "arbitrary
        order").  When ``config.max_rounds`` retry rounds do not
        suffice: raises :class:`LegalizationError` by default, or — with
        ``config.quarantine`` — completes normally with the stuck cells
        recorded in ``result.stuck`` (tagged *origin*, so engine callers
        can distinguish a seam-pass quarantine from a serial one).
        Either way the design is left with the successfully placed
        subset in place.
        """
        t0 = time.perf_counter()
        cfg = self.config
        rng = random.Random(cfg.seed)
        result = LegalizationResult()

        if cells is None:
            todo = [c for c in self.design.movable_cells() if not c.is_placed]
        else:
            todo = [c for c in cells if not c.is_placed]
        if cfg.order is CellOrder.TALL_FIRST:
            todo.sort(key=lambda c: (-c.height, -c.width, c.id))

        # First pass at the raw GP positions (Algorithm 1 lines 2-7).
        unplaced: list[Cell] = []
        for cell in todo:
            if not self._try_cell(cell, cell.gp_x, cell.gp_y, result):
                unplaced.append(cell)

        # Retry rounds with growing random perturbation (lines 8-17).
        k = 1
        while unplaced:
            if k > cfg.max_rounds:
                result.failed_cells = [c.name for c in unplaced]
                result.runtime_s = time.perf_counter() - t0
                if cfg.quarantine:
                    # repro-lint: disable=RL1 -- StuckCellReport is a
                    # result object, not journaled placement state
                    result.stuck.cells.extend(
                        StuckCell(
                            name=c.name,
                            cell_id=c.id,
                            gp_x=c.gp_x,
                            gp_y=c.gp_y,
                            width=c.width,
                            height=c.height,
                            rounds=cfg.max_rounds,
                            origin=origin,
                        )
                        for c in unplaced
                    )
                    return result
                raise LegalizationError(
                    f"{len(unplaced)} cells unplaced after {cfg.max_rounds} "
                    f"retry rounds on {self.design.name!r}",
                    result=result,
                )
            # Amplitudes follow the paper (Rx·(k-1), Ry·(k-1)) but are
            # capped at the die size: on small dies an unbounded amplitude
            # would concentrate every clamped retry position on the die
            # edges and never sample the interior.  LegalizerConfig
            # coerces rx/ry to ints, and int() guards against monkeypatched
            # configs — rng.randint rejects float bounds.
            amp_x = int(min(cfg.rx * (k - 1), self.design.floorplan.row_width))
            amp_y = int(min(cfg.ry * (k - 1), self.design.floorplan.num_rows))
            still: list[Cell] = []
            for cell in unplaced:
                tx = cell.gp_x + (rng.randint(-amp_x, amp_x) if amp_x else 0)
                ty = cell.gp_y + (rng.randint(-amp_y, amp_y) if amp_y else 0)
                if not self._try_cell(cell, tx, ty, result):
                    still.append(cell)
            unplaced = still
            result.rounds = k
            k += 1

        result.runtime_s = time.perf_counter() - t0
        return result

    def _try_cell(
        self, cell: Cell, tx: float, ty: float, result: LegalizationResult
    ) -> bool:
        """Direct placement at the nearest aligned free spot, else MLL.

        Both paths are transactional: the direct placement is journaled
        inside a :class:`~repro.db.journal.Transaction` (so an exception
        — e.g. an injected fault — restores the pre-call state), and
        :meth:`MultiRowLocalLegalizer.try_place` opens its own
        transaction around realization.
        """
        cfg = self.config
        pos = self.design.nearest_position(
            cell, tx, ty, power_aligned=cfg.power_aligned
        )
        if (
            pos is not None
            and cfg.double_row_parity is not None
            and cell.height == 2
            and pos[1] % 2 != cfg.double_row_parity
        ):
            pos = None  # Wu & Chu restriction: let MLL pick a legal row
        if pos is not None and self.design.can_place(
            cell, pos[0], pos[1], power_aligned=cfg.power_aligned
        ):
            with Transaction(self.design):
                self.design.place(
                    cell, pos[0], pos[1], power_aligned=cfg.power_aligned
                )
            result.direct_placements += 1
            result.placed += 1
            return True
        mll_result = self.mll.try_place(cell, tx, ty)
        result.insertion_points_evaluated += mll_result.num_insertion_points
        if mll_result.success:
            result.mll_successes += 1
            result.placed += 1
            return True
        result.mll_failures += 1
        return False


def legalize(
    design: Design, config: LegalizerConfig | None = None
) -> LegalizationResult:
    """One-call convenience wrapper around :class:`Legalizer`."""
    return Legalizer(design, config).run()
