"""Shared summary statistics.

One nearest-rank percentile implementation serves both the MLL
telemetry aggregates (:mod:`repro.core.instrumentation`) and the
perf-trajectory writer (``benchmarks/trajectory.py``).  Before this
module existed the two had diverged: telemetry used a homegrown
``int(0.95 * len)`` index (which returns the *maximum* for round
sample counts — ``int(0.95 * 20) == 19``, the last element) while the
benchmarks used proper nearest-rank.  Sharing the helper keeps serial
summaries, merged-shard summaries and benchmark reports on the same
definition.

Nearest-rank: the p-th percentile of ``n`` ascending samples is the
value at rank ``ceil(p/100 * n)`` (1-based), implemented here as
``round(p/100 * n) - 1`` clamped into ``[0, n-1]`` — exactly the math
``benchmarks/trajectory.py`` has always used.

No numpy here: the benchmarks import this from outside the package
tree and must not pull in heavyweight dependencies at import time.
"""

from __future__ import annotations

from typing import Sequence


def nearest_rank(ordered: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample.

    ``ordered`` must already be sorted ascending; an empty sample
    yields ``0.0`` (the convention of the trajectory files).
    """
    n = len(ordered)
    if n == 0:
        return 0.0
    rank = max(0, min(n - 1, int(round(pct / 100.0 * n)) - 1))
    return ordered[rank]


def percentiles(
    samples: Sequence[float], points: tuple[float, ...] = (50.0, 90.0, 99.0)
) -> dict[str, float]:
    """Nearest-rank percentiles keyed ``p50``/``p90``/... for *samples*."""
    ordered = sorted(samples)
    return {f"p{int(p)}": nearest_rank(ordered, p) for p in points}
