"""Insertion point enumeration (paper Section 5.1.2-5.1.3, Figure 8).

An *insertion point* for a target cell of height ``h_t`` is a combination
of ``h_t`` insertion intervals, one from each of ``h_t`` vertically
consecutive segments, sharing a common cutline (a common feasible target
x).  Not every such combination is valid: intervals on opposite sides of
a multi-row local cell cannot be combined (Figure 8), and for even-height
targets the bottom row must have the matching power rail.

Two enumerators are provided:

* :func:`enumerate_insertion_points` — the paper's scanline: interval
  endpoints are processed in non-decreasing x; pairwise queues ``Q_s^a``
  hold the currently active intervals of segment ``s`` available to
  combine with a newly-opened interval of segment ``a``.  When a gap
  whose *left* cell is a multi-row cell ``m`` opens, the queues ``Q_s^a``
  for the rows ``s`` spanned by ``m`` are cleared — everything still in
  them lies left of ``m`` and must not combine with gaps right of ``m``.
  (The clearing is applied for *discarded* negative-length gaps too;
  their left-cell blockage is real even when the gap itself cannot host
  the target.)  Each valid insertion point is emitted exactly once, when
  its last interval opens.
* :func:`enumerate_insertion_points_bruteforce` — a direct product over
  per-row interval lists with explicit filtering; used as the test oracle
  for the scanline.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Callable, Iterable

from repro.core.intervals import InsertionInterval
from repro.core.local_region import LocalRegion

RowPredicate = Callable[[int], bool]
"""Maps a candidate bottom row to "may the target start here" (power-rail
alignment and any extra constraints of the caller)."""


@dataclass(frozen=True, slots=True)
class InsertionPoint:
    """A valid combination of gaps for the target cell.

    ``intervals`` is ordered bottom row first; ``x_lo``/``x_hi`` is the
    common cutline range (intersection of the member intervals).
    """

    intervals: tuple[InsertionInterval, ...]
    x_lo: int
    x_hi: int

    @property
    def bottom_row(self) -> int:
        """Row of the target cell's lower edge."""
        return self.intervals[0].row_index

    def key(self) -> tuple[tuple[int, int], ...]:
        """Canonical identity for set comparisons in tests."""
        return tuple((iv.row_index, iv.gap_index) for iv in self.intervals)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IP(row={self.bottom_row}, x=[{self.x_lo},{self.x_hi}], "
            f"{list(self.intervals)})"
        )


def _multirow_indices(region: LocalRegion) -> dict[int, list[tuple[int, int]]]:
    """Per row: (cell id, index in the row's local cell list) of every
    multi-row local cell."""
    out: dict[int, list[tuple[int, int]]] = {}
    for row, seg in region.segments.items():
        entries = [
            (c.id, i) for i, c in enumerate(seg.cells) if c.is_multi_row
        ]
        if entries:
            out[row] = entries
    return out


def _combo_is_valid(
    intervals: Iterable[InsertionInterval],
    multirow: dict[int, list[tuple[int, int]]],
) -> bool:
    """Explicit Figure-8 check: all gaps on one side of each multi-row cell."""
    sides: dict[int, str] = {}
    for iv in intervals:
        for cell_id, idx in multirow.get(iv.row_index, ()):
            side = "L" if iv.gap_index <= idx else "R"
            if sides.setdefault(cell_id, side) != side:
                return False
    return True


def _window_rows(bottom: int, height: int) -> range:
    return range(bottom, bottom + height)


def enumerate_insertion_points_bruteforce(
    region: LocalRegion,
    feasible: list[InsertionInterval],
    target_height: int,
    row_ok: RowPredicate | None = None,
) -> list[InsertionPoint]:
    """Reference enumerator: full cartesian product plus filtering."""
    by_row: dict[int, list[InsertionInterval]] = {}
    for iv in feasible:
        by_row.setdefault(iv.row_index, []).append(iv)
    multirow = _multirow_indices(region)
    points: list[InsertionPoint] = []
    rows = region.rows()
    if not rows:
        return points
    for bottom in range(min(rows), max(rows) + 1):
        window = _window_rows(bottom, target_height)
        if any(r not in by_row for r in window):
            continue
        if row_ok is not None and not row_ok(bottom):
            continue
        for combo in product(*(by_row[r] for r in window)):
            lo = max(iv.x_lo for iv in combo)
            hi = min(iv.x_hi for iv in combo)
            if lo > hi:
                continue
            if not _combo_is_valid(combo, multirow):
                continue
            points.append(InsertionPoint(intervals=tuple(combo), x_lo=lo, x_hi=hi))
    return points


def enumerate_insertion_points(
    region: LocalRegion,
    feasible: list[InsertionInterval],
    discarded: list[InsertionInterval],
    target_height: int,
    row_ok: RowPredicate | None = None,
) -> list[InsertionPoint]:
    """The paper's scanline enumerator (Section 5.1.3).

    Events at equal x are ordered *clear* < *open* < *close* so that
    touching intervals still combine and a multi-row cell's own right
    gap survives the clearing it triggers.
    """
    ht = target_height
    rows_present = set(region.segments)
    multirow = _multirow_indices(region)

    # Queue keys (a, s): a = row of the interval being processed, s = row
    # of the stored partner intervals.
    queues: dict[tuple[int, int], list[InsertionInterval]] = {}
    for a in sorted(rows_present):
        for s in sorted(rows_present):
            if a != s and abs(a - s) <= ht - 1:
                queues[(a, s)] = []

    CLEAR, OPEN, CLOSE = 0, 1, 2
    events: list[tuple[int, int, InsertionInterval]] = []
    for iv in feasible:
        events.append((iv.x_lo, OPEN, iv))
        events.append((iv.x_hi, CLOSE, iv))
    for iv in feasible + discarded:
        if iv.left is not None and iv.left.is_multi_row:
            events.append((iv.x_lo, CLEAR, iv))
    events.sort(key=lambda e: (e[0], e[1]))

    points: list[InsertionPoint] = []
    for _x, kind, iv in events:
        a = iv.row_index
        if kind == CLEAR:
            blocker = iv.left
            assert blocker is not None
            for s in blocker.rows_spanned():
                q = queues.get((a, s))
                if q is not None:
                    q.clear()
        elif kind == OPEN:
            _generate_for(iv, ht, rows_present, queues, multirow, row_ok, points)
            for r in sorted(rows_present):
                q = queues.get((r, a))
                if q is not None:
                    q.append(iv)
        else:  # CLOSE
            for r in sorted(rows_present):
                q = queues.get((r, a))
                if q is not None:
                    try:
                        q.remove(iv)
                    except ValueError:
                        pass  # already removed by a clearing event
    return points


def _generate_for(
    iv: InsertionInterval,
    ht: int,
    rows_present: set[int],
    queues: dict[tuple[int, int], list[InsertionInterval]],
    multirow: dict[int, list[tuple[int, int]]],
    row_ok: RowPredicate | None,
    points: list[InsertionPoint],
) -> None:
    """Emit every insertion point whose last-opened interval is *iv*.

    Implements equation (2) of the paper: the union over all ``h_t``-row
    windows containing ``iv``'s row of the product of the partner queues.
    """
    a = iv.row_index
    for bottom in range(a - ht + 1, a + 1):
        window = _window_rows(bottom, ht)
        if any(r not in rows_present for r in window):
            continue
        if row_ok is not None and not row_ok(bottom):
            continue
        partner_lists = [queues[(a, s)] for s in window if s != a]
        if any(not lst for lst in partner_lists):
            continue
        # Partner lists are already in ascending row order (window order
        # minus row a); splice iv in at its row position instead of
        # sorting every combination.
        iv_slot = a - bottom
        for parts in product(*partner_lists):
            combo = list(parts)
            combo.insert(iv_slot, iv)
            if not _combo_is_valid(combo, multirow):
                continue
            lo = max(i.x_lo for i in combo)
            hi = min(i.x_hi for i in combo)
            # Members are all active at iv.x_lo, so the range is nonempty.
            points.append(
                InsertionPoint(intervals=tuple(combo), x_lo=lo, x_hi=hi)
            )
