"""Insertion intervals (paper Section 5.1.1, Figure 7).

For a target cell of width ``w_t``, every gap between horizontally
consecutive local cells of a segment (or between a cell and the segment
boundary) yields an interval ``[x_lo, x_hi]`` of feasible target-cell
x-coordinates:

* between cells ``i`` and ``j``:  ``[xL_i + w_i,  xR_j - w_t]``
* between the left boundary and ``j``:  ``[x0,  xR_j - w_t]``
* between ``i`` and the right boundary:  ``[xL_i + w_i,  x1 - w_t]``

where ``xL`` / ``xR`` come from the leftmost/rightmost placements.  An
interval with negative length admits no legal position and is discarded
(Figure 7(f)) — but a discarded gap whose left cell is multi-row still
matters to the enumeration scanline (it must clear queues), so
``build_insertion_intervals`` returns discarded gaps separately.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bounds import PlacementBounds
from repro.core.local_region import LocalRegion
from repro.db.cell import Cell


@dataclass(frozen=True, slots=True)
class InsertionInterval:
    """One gap of one segment, annotated with the feasible target range.

    ``left`` / ``right`` are the neighboring cells (``None`` encodes the
    segment boundary, the paper's ``L`` / ``R`` markers).  ``gap_index``
    is the slot position in the segment's ordered cell list: inserting at
    ``gap_index`` g places the target between ``cells[g-1]`` and
    ``cells[g]``.
    """

    row_index: int
    left: Cell | None
    right: Cell | None
    gap_index: int
    x_lo: int
    x_hi: int

    @property
    def length(self) -> int:
        """Signed length; negative means infeasible (Figure 7(f))."""
        return self.x_hi - self.x_lo

    @property
    def is_feasible(self) -> bool:
        """True when at least one target position exists in the gap."""
        return self.x_hi >= self.x_lo

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lname = self.left.name if self.left else "L"
        rname = self.right.name if self.right else "R"
        return (
            f"I(r{self.row_index},{lname},{rname},[{self.x_lo},{self.x_hi}])"
        )


def build_insertion_intervals(
    region: LocalRegion,
    bounds: PlacementBounds,
    target_width: int,
) -> tuple[list[InsertionInterval], list[InsertionInterval]]:
    """All insertion intervals of *region* for a target of *target_width*.

    Returns ``(feasible, discarded)`` where *discarded* holds the
    negative-length gaps (kept for the enumeration's queue-clearing
    rule — see :mod:`repro.core.enumeration`).
    """
    feasible: list[InsertionInterval] = []
    discarded: list[InsertionInterval] = []
    for row in region.rows():
        seg = region.segments[row]
        n = len(seg.cells)
        for g in range(n + 1):
            left = seg.cells[g - 1] if g > 0 else None
            right = seg.cells[g] if g < n else None
            x_lo = (
                seg.x0
                if left is None
                else bounds.x_left(left.id) + left.width
            )
            x_hi = (
                seg.x1 - target_width
                if right is None
                else bounds.x_right(right.id) - target_width
            )
            interval = InsertionInterval(
                row_index=row,
                left=left,
                right=right,
                gap_index=g,
                x_lo=x_lo,
                x_hi=x_hi,
            )
            (feasible if interval.is_feasible else discarded).append(interval)
    return feasible, discarded
