"""MLL telemetry.

Attach an :class:`MllTelemetry` to a
:class:`~repro.core.mll.MultiRowLocalLegalizer` (or to the legalizer's
``mll``) and every ``try_place`` call records what the algorithm saw:
local population, number of insertion points enumerated, cells actually
pushed, cost, and wall time.  ``summary()`` aggregates the records into
the quantities the paper reasons about — the O(|C_W|^h) enumeration
population and the O(|C_W|) realization work.

Telemetry is strictly opt-in; the hot path pays nothing when no
telemetry object is attached.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.stats import nearest_rank


@dataclass(frozen=True, slots=True)
class MllCallRecord:
    """One MLL invocation's observations."""

    success: bool
    target_width: int
    target_height: int
    local_cells: int
    insertion_points: int
    cells_pushed: int
    cost_um: float
    runtime_s: float


@dataclass(frozen=True, slots=True)
class TelemetrySummary:
    """Aggregates over all recorded calls.

    Two denominators are in play, deliberately and explicitly:

    * the structural means (``mean_local_cells``,
      ``mean_insertion_points``, ``mean_cells_pushed``) average over
      **all** ``calls`` records — a failed call observed a real local
      population and enumerated real insertion points, so it counts;
    * the cost aggregates (``mean_cost_um``, ``p95_cost_um``) average
      over the ``cost_records`` records with a **finite** cost.  Failed
      calls record ``cost_um = NaN`` by contract (there is no realized
      insertion to cost), so cost statistics are per *successful* call.

    ``p95_cost_um`` is the nearest-rank 95th percentile
    (:func:`repro.core.stats.nearest_rank` — the same math the
    ``BENCH_*.json`` trajectory files use), so serial summaries,
    merged-shard summaries and benchmark reports agree on one
    percentile definition.
    """

    calls: int
    successes: int
    mean_local_cells: float
    mean_insertion_points: float
    max_insertion_points: int
    mean_cells_pushed: float
    mean_cost_um: float
    p95_cost_um: float
    total_runtime_s: float
    cost_records: int = 0
    """Denominator of the cost aggregates: records with a finite
    ``cost_um`` (successful calls).  Everything else divides by
    ``calls``."""

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"MLL calls={self.calls} ok={self.successes} "
            f"|C_W|~{self.mean_local_cells:.1f} "
            f"points~{self.mean_insertion_points:.1f} "
            f"(max {self.max_insertion_points}) "
            f"pushed~{self.mean_cells_pushed:.1f} "
            f"cost~{self.mean_cost_um:.3f}um "
            f"t={self.total_runtime_s:.2f}s"
        )


@dataclass(slots=True)
class MllTelemetry:
    """Collects :class:`MllCallRecord` objects."""

    records: list[MllCallRecord] = field(default_factory=list)

    def record(self, rec: MllCallRecord) -> None:
        """Append one call record."""
        self.records.append(rec)

    def clear(self) -> None:
        """Drop all records."""
        self.records.clear()

    def merge(self, other: "MllTelemetry") -> "MllTelemetry":
        """Fold *other*'s records into this telemetry (returns ``self``).

        This is the process-safe aggregation path of the parallel engine
        (:mod:`repro.engine`): each worker records into its own
        :class:`MllTelemetry` (records are immutable value objects, so
        they pickle across process boundaries), and the parent merges the
        worker telemetries.  Merging is order-insensitive for every
        :meth:`summary` aggregate.
        """
        self.records.extend(other.records)
        return self

    def __iadd__(self, other: "MllTelemetry") -> "MllTelemetry":
        """``telemetry += other`` is :meth:`merge`."""
        if not isinstance(other, MllTelemetry):
            return NotImplemented
        return self.merge(other)

    def histogram(self, attr: str, bins: int = 10) -> list[tuple[float, int]]:
        """(bin lower edge, count) pairs for one numeric record field."""
        values = [float(getattr(r, attr)) for r in self.records]
        if not values:
            return []
        lo, hi = min(values), max(values)
        if hi == lo:
            return [(lo, len(values))]
        width = (hi - lo) / bins
        counts = [0] * bins
        for v in values:
            idx = min(bins - 1, int((v - lo) / width))
            counts[idx] += 1
        return [(lo + i * width, c) for i, c in enumerate(counts)]

    def summary(self) -> TelemetrySummary:
        """Aggregate statistics over all records.

        See :class:`TelemetrySummary` for the two denominators:
        structural means are over all records, cost statistics are over
        the finite-cost (successful) records only.  Both are pure
        functions of the record multiset, so merged-shard summaries
        equal single-process summaries exactly.
        """
        n = len(self.records)
        if n == 0:
            return TelemetrySummary(0, 0, 0.0, 0.0, 0, 0.0, 0.0, 0.0, 0.0)

        def mean(attr: str) -> float:
            return sum(getattr(r, attr) for r in self.records) / n

        costs = sorted(
            r.cost_um for r in self.records if math.isfinite(r.cost_um)
        )
        return TelemetrySummary(
            calls=n,
            successes=sum(1 for r in self.records if r.success),
            mean_local_cells=mean("local_cells"),
            mean_insertion_points=mean("insertion_points"),
            max_insertion_points=max(r.insertion_points for r in self.records),
            mean_cells_pushed=mean("cells_pushed"),
            mean_cost_um=sum(costs) / len(costs) if costs else 0.0,
            p95_cost_um=nearest_rank(costs, 95.0),
            total_runtime_s=sum(r.runtime_s for r in self.records),
            cost_records=len(costs),
        )
