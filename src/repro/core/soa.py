"""Struct-of-arrays mirror of the placement database + vectorized MLL
kernels (ROADMAP item 1).

The object model (:class:`~repro.db.design.Design`,
:class:`~repro.db.cell.Cell`, per-segment cell lists) stays
authoritative; this module maintains a numpy *mirror* of the placement
state — per-cell ``x``/``y``/``width``/``height`` int64 arrays indexed
by cell id, plus CSR-style segment→cell-id membership arrays — and
reimplements the three MLL inner loops as vectorized sweeps over it:

* :func:`soa_compute_bounds` — the leftmost/rightmost compaction of
  :mod:`repro.core.bounds` as per-row prefix scans iterated to a
  fixpoint (multi-row cells couple rows, so one pass per coupling
  level);
* :func:`soa_enumerate_insertion_points` — the scanline of
  :mod:`repro.core.enumeration` over integer interval indices and
  array-backed row lookups;
* :func:`soa_evaluate_points` — the median-of-criticals evaluation of
  :mod:`repro.core.evaluation` batched across *all* insertion points of
  one MLL call (one sort for every median, one broadcast for every
  candidate cost).

**Bit-identity contract.**  ``LegalizerConfig.kernel = Kernel.SOA``
must produce byte-identical placements to the object kernel; the
property tests and ``benchmarks/bench_mll_kernel.py`` enforce it via
``design_state_digest``.  Three properties make exact float equality
possible: every non-target critical-position pair has integer-valued
endpoints, so their cost contributions sum exactly in float64 in any
order; the target's (possibly fractional) ``|x - desired_x|`` term is
added last with a single rounding, exactly like the object kernel's
sequential sum; and the candidate tie-break is a lexicographic argmin
on ``(cost, |x - desired_x|, x)``, matching the object kernel's stable
``min`` over ascending candidates.

**Sync contract (the journal is the bus).**  The mirror attaches to a
design via :func:`attach_soa` (``design.soa``).  It is kept current by
O(1) notifications from the journaled primitives: the ``Design``
mutators (``place``/``unplace``/``shift_x``/``add_cell``) call
:meth:`SoaMirror.sync_cell` directly, and
:class:`~repro.db.journal.Journal` forwards every recorded entry
(:meth:`SoaMirror.on_journal_record`) and every undo
(:meth:`SoaMirror.on_journal_undo`) — which covers realization's raw
``note_set_pos``/``note_list_insert`` writes and transactional
rollback.  Whole-placement rewrites outside the journal
(``reset_placement``/``restore_positions``) call
:meth:`SoaMirror.invalidate`, and the mirror lazily rebuilds.  This is
why ``repro lint`` RL1 treats ``core/soa.py`` as a primitive home (like
``db/``) rather than a journal bypass — see docs/static_analysis.md.

**Error parity caveat.**  On corrupt input :func:`soa_compute_bounds`
raises the same ``ValueError`` messages as the object kernel, but when
a region exhibits *several distinct* corruption kinds at once the two
kernels may surface different (equally true) ones first: the object
sweep interleaves its checks per cell, the vectorized sweep validates
in phases (unplaced → row order → bound legality).
"""

from __future__ import annotations

import math
from itertools import product
from typing import TYPE_CHECKING, Final, Sequence

import numpy as np
from numpy.typing import NDArray

from repro.core.bounds import PlacementBounds
from repro.core.config import EvaluationMode
from repro.core.enumeration import InsertionPoint, RowPredicate, _combo_is_valid
from repro.core.evaluation import EvaluatedPoint
from repro.core.intervals import InsertionInterval
from repro.core.local_region import LocalRegion
from repro.db.cell import Cell

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.design import Design
    from repro.db.journal import JournalEntry

IntArray = NDArray[np.int64]
FloatArray = NDArray[np.float64]

#: Sentinel stored in the mirror's x/y arrays for unplaced cells.
UNPLACED: Final[int] = np.iinfo(np.int64).min

#: Longest-path sentinels of the bounds sweeps.  Far beyond any site
#: coordinate yet far from int64 overflow when widths are added.
_NEG: Final[int] = -(2**62)
_POS: Final[int] = 2**62

_INF = math.inf


def attach_soa(design: "Design") -> "SoaMirror":
    """The design's :class:`SoaMirror`, creating and attaching one if
    absent.  Attaching is idempotent; the mirror stays subscribed to the
    design's mutation primitives for the life of the design."""
    if design.soa is None:
        design.soa = SoaMirror(design)
    return design.soa


class SoaMirror:
    """Numpy mirror of one design's placement state.

    Arrays are indexed by **cell id** (they grow geometrically as ids
    appear).  ``epoch`` increments on every observed mutation; derived
    caches (the segment CSR, per-region views) key on it.
    """

    __slots__ = (
        "design", "x", "y", "w", "h", "epoch",
        "_stale", "_csr_epoch", "_csr_indptr", "_csr_cells",
    )

    def __init__(self, design: "Design") -> None:
        self.design = design
        self.x: IntArray = np.empty(0, dtype=np.int64)
        self.y: IntArray = np.empty(0, dtype=np.int64)
        self.w: IntArray = np.empty(0, dtype=np.int64)
        self.h: IntArray = np.empty(0, dtype=np.int64)
        self.epoch = 0
        self._stale = True
        self._csr_epoch = -1
        self._csr_indptr: IntArray = np.empty(0, dtype=np.int64)
        self._csr_cells: IntArray = np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Mark the whole mirror stale (a non-journaled bulk rewrite
        happened); the next :meth:`ensure` rebuilds from the objects."""
        self._stale = True
        self.epoch += 1

    def ensure(self) -> None:
        """Rebuild from the object model if stale; no-op otherwise."""
        if self._stale:
            self.rebuild()

    def rebuild(self) -> None:
        """Full resync from the design's cells."""
        cells = self.design.cells
        size = max((c.id for c in cells), default=-1) + 1
        self.x = np.full(size, UNPLACED, dtype=np.int64)
        self.y = np.full(size, UNPLACED, dtype=np.int64)
        self.w = np.zeros(size, dtype=np.int64)
        self.h = np.zeros(size, dtype=np.int64)
        for c in cells:
            cid = c.id
            self.w[cid] = c.width
            self.h[cid] = c.height
            if c.x is not None and c.y is not None:
                self.x[cid] = c.x
                self.y[cid] = c.y
        self._stale = False
        self.epoch += 1

    def _grow_to(self, cid: int) -> None:
        old = len(self.x)
        if cid < old:
            return
        size = max(cid + 1, 2 * old, 16)
        for name, fill in (("x", UNPLACED), ("y", UNPLACED), ("w", 0), ("h", 0)):
            arr: IntArray = getattr(self, name)
            grown = np.full(size, fill, dtype=np.int64)
            grown[:old] = arr
            setattr(self, name, grown)

    # ------------------------------------------------------------------
    # O(1) sync notifications (the journaled primitives call these)
    # ------------------------------------------------------------------
    def sync_cell(self, cell: Cell) -> None:
        """Refresh one cell's row from the object model."""
        if self._stale:
            return  # the pending rebuild will pick it up
        self._grow_to(cell.id)
        cid = cell.id
        self.w[cid] = cell.width
        self.h[cid] = cell.height
        if cell.x is not None and cell.y is not None:
            self.x[cid] = cell.x
            self.y[cid] = cell.y
        else:
            self.x[cid] = UNPLACED
            self.y[cid] = UNPLACED
        self.epoch += 1

    def forget_cell(self, cell: Cell) -> None:
        """The cell no longer exists (a ``CELL_ADD`` was undone)."""
        if self._stale or cell.id >= len(self.x):
            return
        cid = cell.id
        self.x[cid] = UNPLACED
        self.y[cid] = UNPLACED
        self.w[cid] = 0
        self.h[cid] = 0
        self.epoch += 1

    def on_journal_record(self, entry: "JournalEntry") -> None:
        """A journaled mutation was just applied (mutate-first,
        record-second, so the object model is already current)."""
        from repro.db.journal import Op

        if entry.op is Op.LIST_INSERT:
            # Segment membership changed (realization's raw insert);
            # coordinates are covered by the SET_POS entry next to it.
            self.epoch += 1
        elif entry.cell is not None:
            self.sync_cell(entry.cell)

    def on_journal_undo(self, entry: "JournalEntry") -> None:
        """A journal entry was just rolled back."""
        from repro.db.journal import Op

        if entry.op is Op.CELL_ADD:
            if entry.cell is not None:
                self.forget_cell(entry.cell)
        elif entry.op is Op.LIST_INSERT:
            self.epoch += 1
        elif entry.cell is not None:
            self.sync_cell(entry.cell)

    # ------------------------------------------------------------------
    # Segment membership (CSR)
    # ------------------------------------------------------------------
    def segment_csr(self) -> tuple[IntArray, IntArray]:
        """``(indptr, cell_ids)`` over ``floorplan.segments`` in order.

        ``cell_ids[indptr[s]:indptr[s+1]]`` are segment ``s``'s cells in
        their in-segment (x-sorted) order.  Rebuilt lazily, keyed on
        ``epoch`` — any placement mutation invalidates it.
        """
        self.ensure()
        if self._csr_epoch != self.epoch:
            segments = self.design.floorplan.segments
            indptr = np.zeros(len(segments) + 1, dtype=np.int64)
            chunks: list[int] = []
            for i, seg in enumerate(segments):
                chunks.extend(c.id for c in seg.cells)
                indptr[i + 1] = len(chunks)
            self._csr_indptr = indptr
            self._csr_cells = np.array(chunks, dtype=np.int64)
            self._csr_epoch = self.epoch
        return self._csr_indptr, self._csr_cells


class RegionSoA:
    """Dense per-call view of one :class:`LocalRegion`.

    Index space is the position in ``region.cells`` (the *dense* index);
    ``row_cells[row]`` lists dense indices in the row's in-segment
    order, and ``pos[row]`` maps cell id → position in that list — the
    O(1) replacement for ``LocalRegion.cell_index``'s linear scan.
    """

    __slots__ = (
        "cells", "ids", "x", "y", "w", "h", "dense",
        "rows", "row_cells", "_pos", "seg_x0", "seg_x1",
    )

    def __init__(
        self,
        cells: list[Cell],
        ids: IntArray,
        x: IntArray,
        y: IntArray,
        w: IntArray,
        h: IntArray,
        dense: dict[int, int],
        rows: list[int],
        row_cells: dict[int, IntArray],
        seg_x0: dict[int, int],
        seg_x1: dict[int, int],
    ) -> None:
        self.cells = cells
        self.ids = ids
        self.x = x
        self.y = y
        self.w = w
        self.h = h
        self.dense = dense
        self.rows = rows
        self.row_cells = row_cells
        self._pos: dict[int, dict[int, int]] | None = None
        self.seg_x0 = seg_x0
        self.seg_x1 = seg_x1

    @property
    def pos(self) -> dict[int, dict[int, int]]:
        """Per-row cell id → in-row index maps, built on first use
        (only the exact evaluation mode walks them)."""
        if self._pos is None:
            ids = self.ids
            self._pos = {
                row: {int(ids[d]): i for i, d in enumerate(idx.tolist())}
                for row, idx in self.row_cells.items()
            }
        return self._pos

    @classmethod
    def from_region(
        cls, region: LocalRegion, mirror: SoaMirror | None = None
    ) -> "RegionSoA":
        """Gather the region's cells into dense arrays.

        With *mirror* the coordinates come from one fancy-indexed gather
        on the mirror arrays; without, from the objects directly (the
        standalone path used by tests)."""
        cells = region.cells
        n = len(cells)
        ids = np.fromiter((c.id for c in cells), dtype=np.int64, count=n)
        if mirror is not None:
            mirror.ensure()
            x = mirror.x[ids]
            y = mirror.y[ids]
            w = mirror.w[ids]
            h = mirror.h[ids]
        else:
            x = np.fromiter(
                (UNPLACED if c.x is None else c.x for c in cells),
                dtype=np.int64, count=n,
            )
            y = np.fromiter(
                (UNPLACED if c.y is None else c.y for c in cells),
                dtype=np.int64, count=n,
            )
            w = np.fromiter((c.width for c in cells), dtype=np.int64, count=n)
            h = np.fromiter((c.height for c in cells), dtype=np.int64, count=n)
        dense = {c.id: i for i, c in enumerate(cells)}
        rows = region.rows()
        row_cells: dict[int, IntArray] = {}
        seg_x0: dict[int, int] = {}
        seg_x1: dict[int, int] = {}
        for row in rows:
            seg = region.segments[row]
            row_cells[row] = np.fromiter(
                (dense[c.id] for c in seg.cells),
                dtype=np.int64, count=len(seg.cells),
            )
            seg_x0[row] = seg.x0
            seg_x1[row] = seg.x1
        return cls(cells, ids, x, y, w, h, dense, rows, row_cells, seg_x0, seg_x1)

    def rows_of(self, d: int) -> range:
        """Rows spanned by the cell at dense index *d*."""
        lo = int(self.y[d])
        return range(lo, lo + int(self.h[d]))

    def multirow(self) -> dict[int, list[tuple[int, int]]]:
        """Per row: (cell id, in-row index) of every multi-row cell —
        the array-backed equivalent of ``enumeration._multirow_indices``."""
        out: dict[int, list[tuple[int, int]]] = {}
        ids = self.ids
        h = self.h
        for row in self.rows:
            idx = self.row_cells[row]
            multi = np.nonzero(h[idx] > 1)[0]
            if len(multi):
                out[row] = [(int(ids[idx[i]]), int(i)) for i in multi]
        return out


# ----------------------------------------------------------------------
# Kernel 1: leftmost/rightmost bounds
# ----------------------------------------------------------------------
def soa_compute_bounds(rsoa: RegionSoA) -> PlacementBounds:
    """Vectorized :func:`repro.core.bounds.compute_bounds`.

    Per row the longest-path relaxation collapses into one prefix scan:
    with ``P`` the exclusive prefix widths of the row's cells,
    ``maximum.accumulate(bound - P) + P`` relaxes every left-neighbor
    constraint of the row at once (symmetrically for the right sweep).
    Multi-row cells couple rows, so the row scans iterate to a fixpoint
    — at most one pass per coupling level, and a single pass (no
    confirm) when the region has no multi-row cells.

    Raises the same ``ValueError`` messages as the object kernel on
    illegal input (see the module docstring for the error-precedence
    caveat).
    """
    cells = rsoa.cells
    x = rsoa.x
    w = rsoa.w
    ids = rsoa.ids
    n = len(cells)
    if n == 0:
        return PlacementBounds(left={}, right={})

    unplaced = x == UNPLACED
    if bool(unplaced.any()):
        d = int(np.argmax(unplaced))
        raise ValueError(
            f"local cell {cells[d].name!r} is unplaced; "
            f"region placement is not legal"
        )

    # Row order must be strictly increasing by (x, id) — the order the
    # object kernel's topological sweep requires.  Report the first
    # violation in that sweep's own (x, id, row) order.
    worst: tuple[int, int, int, int, int] | None = None
    for row in rsoa.rows:
        idx = rsoa.row_cells[row]
        if len(idx) < 2:
            continue
        xs = x[idx]
        rid = ids[idx]
        bad = np.nonzero(
            (xs[:-1] > xs[1:]) | ((xs[:-1] == xs[1:]) & (rid[:-1] > rid[1:]))
        )[0]
        for j in bad:
            key = (int(xs[j + 1]), int(rid[j + 1]), row)
            if worst is None or key < worst[:3]:
                worst = (*key, int(idx[j]), int(idx[j + 1]))
    if worst is not None:
        _, _, row, pred_d, cell_d = worst
        raise ValueError(
            f"cells {cells[pred_d].name!r} and {cells[cell_d].name!r} are "
            f"out of order in row {row}; region placement is not legal"
        )

    # Without multi-row cells the rows are uncoupled and one prefix
    # scan per row is already the exact fixpoint — no confirm pass.
    has_multi = bool((rsoa.h > 1).any())
    max_iter = n + 2 if has_multi else 1
    rowdat: list[tuple[IntArray, IntArray, int, int]] = []
    for row in rsoa.rows:
        idx = rsoa.row_cells[row]
        if len(idx) == 0:
            continue
        wr = w[idx]
        prefix = np.zeros(len(idx), dtype=np.int64)
        np.cumsum(wr[:-1], out=prefix[1:])
        rowdat.append((idx, prefix, rsoa.seg_x0[row], int(rsoa.seg_x1[row])))

    # Left sweep: least fixpoint of bnd[i] >= bnd[i-1] + w[i-1] (per
    # row), bnd[first] >= seg.x0 — identical to the object kernel's
    # longest path over the adjacency DAG.
    bnd = np.full(n, _NEG, dtype=np.int64)
    for _ in range(max_iter):
        prev = bnd
        bnd = bnd.copy()
        for idx, prefix, sx0, _sx1 in rowdat:
            base = bnd[idx]
            if base[0] < sx0:
                base[0] = sx0
            row_bound = np.maximum.accumulate(base - prefix) + prefix
            np.maximum(bnd[idx], row_bound, out=base)
            bnd[idx] = base
        if not has_multi or np.array_equal(bnd, prev):
            break
    else:  # pragma: no cover - unreachable for a validated DAG
        raise ValueError(
            "leftmost-bound sweep did not converge; "
            "region placement is not legal"
        )
    bad_left = np.nonzero(bnd > x)[0]
    if len(bad_left):
        first = int(bad_left[np.lexsort((ids[bad_left], x[bad_left]))[0]])
        raise ValueError(
            f"leftmost bound {int(bnd[first])} of cell "
            f"{cells[first].name!r} exceeds its current x {int(x[first])}; "
            f"region placement is not legal"
        )
    left = dict(zip(ids.tolist(), bnd.tolist()))

    # Right sweep: the mirror image, via a reversed minimum.accumulate.
    bnd = np.full(n, _POS, dtype=np.int64)
    for _ in range(max_iter):
        prev = bnd
        bnd = bnd.copy()
        for idx, prefix, _sx0, sx1 in rowdat:
            base = bnd[idx]
            ceiling = sx1 - int(w[idx[-1]])
            if base[-1] > ceiling:
                base[-1] = ceiling
            shifted = base - prefix
            row_bound = np.minimum.accumulate(shifted[::-1])[::-1] + prefix
            np.minimum(bnd[idx], row_bound, out=base)
            bnd[idx] = base
        if not has_multi or np.array_equal(bnd, prev):
            break
    else:  # pragma: no cover - unreachable for a validated DAG
        raise ValueError(
            "rightmost-bound sweep did not converge; "
            "region placement is not legal"
        )
    bad_right = np.nonzero(bnd < x)[0]
    if len(bad_right):
        first = int(bad_right[np.lexsort((ids[bad_right], x[bad_right]))[-1]])
        raise ValueError(
            f"rightmost bound {int(bnd[first])} of cell "
            f"{cells[first].name!r} is below its current x {int(x[first])}; "
            f"region placement is not legal"
        )
    right = dict(zip(ids.tolist(), bnd.tolist()))
    return PlacementBounds(left=left, right=right)


# ----------------------------------------------------------------------
# Kernel 2: scanline insertion-point enumeration
# ----------------------------------------------------------------------
def soa_enumerate_insertion_points(
    rsoa: RegionSoA,
    feasible: list[InsertionInterval],
    discarded: list[InsertionInterval],
    target_height: int,
    row_ok: RowPredicate | None = None,
) -> list[InsertionPoint]:
    """Index-based scanline, emission-order identical to
    :func:`repro.core.enumeration.enumerate_insertion_points`.

    Queues hold integer indices into *feasible* (cheap compares, no
    attribute chasing); a blocker's spanned rows and the multi-row side
    map come from the region arrays instead of cell objects.
    """
    ht = target_height
    if ht == 1:
        # Single-row target: the scanline degenerates.  There are no
        # partner queues (every (a, s) pair needs |a - s| <= ht - 1 = 0
        # with a != s), so CLEAR and CLOSE events are no-ops and each
        # OPEN emits exactly its own interval; a one-interval combo can
        # set each multi-row cell's side at most once, so the Figure-8
        # check is vacuous.  Emission order is the stable (x_lo,
        # append-order) sort of the OPEN events.
        order = sorted(range(len(feasible)), key=lambda i: feasible[i].x_lo)
        return [
            InsertionPoint(
                intervals=(feasible[i],),
                x_lo=feasible[i].x_lo,
                x_hi=feasible[i].x_hi,
            )
            for i in order
            if row_ok is None or row_ok(feasible[i].row_index)
        ]
    rows_sorted = rsoa.rows
    rows_present = set(rows_sorted)
    multirow = rsoa.multirow()
    dense = rsoa.dense

    queues: dict[tuple[int, int], list[int]] = {}
    for a in rows_sorted:
        for s in rows_sorted:
            if a != s and abs(a - s) <= ht - 1:
                queues[(a, s)] = []

    # Same event stream and the same stable (x, kind) sort as the object
    # scanline: CLEAR(0) < OPEN(1) < CLOSE(2), ties in append order.
    clear, open_, close = 0, 1, 2
    events: list[tuple[int, int, int]] = []
    for i, iv in enumerate(feasible):
        events.append((iv.x_lo, open_, i))
        events.append((iv.x_hi, close, i))
    nfeas = len(feasible)
    for i, iv in enumerate(feasible + discarded):
        if iv.left is not None and iv.left.is_multi_row:
            events.append((iv.x_lo, clear, i))
    events.sort(key=lambda e: (e[0], e[1]))

    points: list[InsertionPoint] = []
    for _x, kind, i in events:
        iv = feasible[i] if i < nfeas else discarded[i - nfeas]
        a = iv.row_index
        if kind == clear:
            blocker = iv.left
            assert blocker is not None
            for s in rsoa.rows_of(dense[blocker.id]):
                q = queues.get((a, s))
                if q is not None:
                    q.clear()
        elif kind == open_:
            _soa_generate_for(
                i, feasible, ht, rows_present, queues, multirow, row_ok, points
            )
            for r in rows_sorted:
                q = queues.get((r, a))
                if q is not None:
                    q.append(i)
        else:  # close
            for r in rows_sorted:
                q = queues.get((r, a))
                if q is not None:
                    try:
                        q.remove(i)
                    except ValueError:
                        pass  # already removed by a clearing event
    return points


def _soa_generate_for(
    i: int,
    feasible: list[InsertionInterval],
    ht: int,
    rows_present: set[int],
    queues: dict[tuple[int, int], list[int]],
    multirow: dict[int, list[tuple[int, int]]],
    row_ok: RowPredicate | None,
    points: list[InsertionPoint],
) -> None:
    """Emit every insertion point whose last-opened interval is
    ``feasible[i]`` (the index twin of ``enumeration._generate_for``)."""
    iv = feasible[i]
    a = iv.row_index
    for bottom in range(a - ht + 1, a + 1):
        window = range(bottom, bottom + ht)
        if any(r not in rows_present for r in window):
            continue
        if row_ok is not None and not row_ok(bottom):
            continue
        partner_lists = [queues[(a, s)] for s in window if s != a]
        if any(not lst for lst in partner_lists):
            continue
        iv_slot = a - bottom
        for parts in product(*partner_lists):
            combo_idx = list(parts)
            combo_idx.insert(iv_slot, i)
            combo = [feasible[j] for j in combo_idx]
            if not _combo_is_valid(combo, multirow):
                continue
            lo = max(c.x_lo for c in combo)
            hi = min(c.x_hi for c in combo)
            points.append(
                InsertionPoint(intervals=tuple(combo), x_lo=lo, x_hi=hi)
            )


# ----------------------------------------------------------------------
# Kernel 3: batched insertion-point evaluation
# ----------------------------------------------------------------------
def _exact_pairs(
    rsoa: RegionSoA, point: InsertionPoint, target_width: int
) -> list[tuple[float, float]]:
    """Full critical positions via longest-path propagation.

    Structurally the twin of ``evaluation._critical_positions_exact``
    (same discovery order, same stable ``-x`` sort, same float
    arithmetic) with the O(n) ``cell_index`` scans replaced by the
    region's O(1) position maps.
    """
    x = rsoa.x
    w = rsoa.w
    ids = rsoa.ids
    row_cells = rsoa.row_cells
    pos = rsoa.pos
    dense = rsoa.dense
    pairs: list[tuple[float, float]] = []

    # --- left side: chain[d] = max total width from target to d inclusive.
    seeds = [dense[iv.left.id] for iv in point.intervals if iv.left is not None]
    seen: set[int] = set()
    order: list[int] = []
    for d in seeds:
        if d not in seen:
            seen.add(d)
            order.append(d)
    i = 0
    while i < len(order):
        d = order[i]
        i += 1
        cid = int(ids[d])
        for row in rsoa.rows_of(d):
            j = pos[row][cid]
            if j > 0:
                p = int(row_cells[row][j - 1])
                if p not in seen:
                    seen.add(p)
                    order.append(p)
    order.sort(key=lambda d: -int(x[d]))
    seed_set = set(seeds)
    pushers: dict[int, list[int]] = {}
    for d in order:
        cid = int(ids[d])
        for row in rsoa.rows_of(d):
            j = pos[row][cid]
            if j > 0:
                p = int(row_cells[row][j - 1])
                if p in seen:
                    pushers.setdefault(p, []).append(d)
    chain: dict[int, float] = {}
    for d in order:
        width = float(int(w[d]))
        base = width if d in seed_set else -_INF
        via = max(
            (chain[q] + width for q in pushers.get(d, ()) if q in chain),
            default=-_INF,
        )
        val = max(base, via)
        if val > -_INF:
            chain[d] = val
            pairs.append((int(x[d]) + val, _INF))

    # --- right side: chain'[d] = max width strictly between target and d.
    seeds_r = [
        dense[iv.right.id] for iv in point.intervals if iv.right is not None
    ]
    seen_r: set[int] = set()
    order_r: list[int] = []
    for d in seeds_r:
        if d not in seen_r:
            seen_r.add(d)
            order_r.append(d)
    i = 0
    while i < len(order_r):
        d = order_r[i]
        i += 1
        cid = int(ids[d])
        for row in rsoa.rows_of(d):
            j = pos[row][cid]
            nxt_row = row_cells[row]
            if j + 1 < len(nxt_row):
                nd = int(nxt_row[j + 1])
                if nd not in seen_r:
                    seen_r.add(nd)
                    order_r.append(nd)
    order_r.sort(key=lambda d: int(x[d]))
    seed_set_r = set(seeds_r)
    pushers_r: dict[int, list[int]] = {}
    for d in order_r:
        cid = int(ids[d])
        for row in rsoa.rows_of(d):
            j = pos[row][cid]
            nxt_row = row_cells[row]
            if j + 1 < len(nxt_row):
                nd = int(nxt_row[j + 1])
                if nd in seen_r:
                    pushers_r.setdefault(nd, []).append(d)
    chain_r: dict[int, float] = {}
    for d in order_r:
        base = 0.0 if d in seed_set_r else -_INF
        via = max(
            (
                chain_r[p] + float(int(w[p]))
                for p in pushers_r.get(d, ())
                if p in chain_r
            ),
            default=-_INF,
        )
        val = max(base, via)
        if val > -_INF:
            chain_r[d] = val
            pairs.append((-_INF, int(x[d]) - target_width - val))

    return pairs


def _approx_pair_matrices(
    rsoa: RegionSoA, points: Sequence[InsertionPoint], target_width: int
) -> tuple[FloatArray, FloatArray, NDArray[np.bool_], IntArray]:
    """Pair matrices for APPROX mode without per-point list building.

    A point contributes at most two pairs per interval slot (its left
    neighbor and its right neighbor), and interval objects are shared
    across points, so the per-interval values are computed once and
    scattered to (point, slot) through one fancy-indexed gather.  Pad
    slots hold the identity pair ``(-inf, +inf)`` (zero cost
    contribution) and are masked out of the endpoint multiset by the
    returned *valid* mask.  Pair order within a point differs from the
    object kernel's left/right interleaving, which is immaterial:
    costs are order-independent exact integer sums and the median only
    sees the sorted endpoint multiset.
    """
    npts = len(points)
    nslots = max(len(p.intervals) for p in points)
    x = rsoa.x
    w = rsoa.w
    dense = rsoa.dense

    iv_of: dict[int, int] = {}
    a_left: list[float] = []
    b_right: list[float] = []
    has_l: list[bool] = []
    has_r: list[bool] = []
    slot_idx = np.full((npts, nslots), -1, dtype=np.int64)
    for i, p in enumerate(points):
        for s, iv in enumerate(p.intervals):
            k = iv_of.get(id(iv))
            if k is None:
                k = iv_of[id(iv)] = len(a_left)
                left, right = iv.left, iv.right
                if left is not None:
                    d = dense[left.id]
                    a_left.append(float(int(x[d]) + int(w[d])))
                    has_l.append(True)
                else:
                    a_left.append(-np.inf)
                    has_l.append(False)
                if right is not None:
                    d = dense[right.id]
                    b_right.append(float(int(x[d]) - target_width))
                    has_r.append(True)
                else:
                    b_right.append(np.inf)
                    has_r.append(False)
            slot_idx[i, s] = k
    # Sentinel reached through index -1: a slot the point does not use.
    a_left.append(-np.inf)
    b_right.append(np.inf)
    has_l.append(False)
    has_r.append(False)

    aL = np.asarray(a_left, dtype=np.float64)[slot_idx]
    bR = np.asarray(b_right, dtype=np.float64)[slot_idx]
    width = 2 * nslots
    a_mat = np.full((npts, width), -np.inf, dtype=np.float64)
    b_mat = np.full((npts, width), np.inf, dtype=np.float64)
    valid = np.empty((npts, width), dtype=bool)
    a_mat[:, 0::2] = aL
    b_mat[:, 1::2] = bR
    valid[:, 0::2] = np.asarray(has_l, dtype=bool)[slot_idx]
    valid[:, 1::2] = np.asarray(has_r, dtype=bool)[slot_idx]
    counts = valid.sum(axis=1, dtype=np.int64)
    return a_mat, b_mat, valid, counts


def soa_evaluate_points(
    rsoa: RegionSoA,
    points: Sequence[InsertionPoint],
    target: Cell,
    desired_x: float,
    desired_y: float,
    site_width_um: float,
    site_height_um: float,
    mode: EvaluationMode = EvaluationMode.APPROX,
) -> list[EvaluatedPoint]:
    """Evaluate *all* insertion points of one MLL call in one batch.

    Bit-identical to mapping ``evaluate_insertion_point`` over *points*:
    medians come from one row-wise sort of the (+inf-padded) endpoint
    matrix at index ``m-1`` (``m`` = pairs incl. the target, i.e. the
    object kernel's ``endpoints[(2m-1)//2]``); candidate costs decompose
    into an exactly-summable integer part (non-target pairs) plus the
    target's fractional ``|x - desired_x|`` term added last with one
    rounding; the winner is the lexicographic argmin on
    ``(cost, |x - desired_x|, x)``.
    """
    npts = len(points)
    if npts == 0:
        return []
    tw = target.width

    if mode is EvaluationMode.EXACT:
        pair_lists = [_exact_pairs(rsoa, p, tw) for p in points]
        counts = np.fromiter(
            (len(pr) for pr in pair_lists), dtype=np.int64, count=npts
        )
        width = int(counts.max()) if npts else 0
        a_mat = np.full((npts, width), -np.inf, dtype=np.float64)
        b_mat = np.full((npts, width), np.inf, dtype=np.float64)
        for i, pr in enumerate(pair_lists):
            if pr:
                arr = np.array(pr, dtype=np.float64)
                a_mat[i, : len(pr)] = arr[:, 0]
                b_mat[i, : len(pr)] = arr[:, 1]
        valid = np.arange(width, dtype=np.int64)[None, :] < counts[:, None]
    else:
        a_mat, b_mat, valid, counts = _approx_pair_matrices(rsoa, points, tw)

    x_lo = np.fromiter((p.x_lo for p in points), dtype=np.float64, count=npts)
    x_hi = np.fromiter((p.x_hi for p in points), dtype=np.float64, count=npts)
    dx_col = np.full((npts, 1), desired_x, dtype=np.float64)

    # Median of the endpoint multiset.  Pad slots become +inf so they
    # sort past every real endpoint (real -inf/+inf entries are kept —
    # the object kernel's multiset has them too); the lower median of
    # the 2m real endpoints sits at sorted index m-1 = len(non-target).
    endpoints = np.concatenate(
        [
            np.where(valid, a_mat, np.inf),
            np.where(valid, b_mat, np.inf),
            dx_col,
            dx_col,
        ],
        axis=1,
    )
    endpoints.sort(axis=1)
    med = np.take_along_axis(endpoints, counts[:, None], axis=1)[:, 0]
    med = np.where(med == -np.inf, x_lo, med)
    med = np.where(med == np.inf, x_hi, med)
    clamped = np.minimum(np.maximum(med, x_lo), x_hi)

    cand = np.stack(
        [x_lo, x_hi, np.floor(clamped), np.ceil(clamped)], axis=1
    )
    # Integer-valued contributions sum exactly in float64; the target's
    # fractional term is added last (one rounding), matching the object
    # kernel's sequential sum with the target pair appended last.
    int_cost = (
        np.clip(a_mat[:, :, None] - cand[:, None, :], 0.0, None).sum(axis=1)
        + np.clip(cand[:, None, :] - b_mat[:, :, None], 0.0, None).sum(axis=1)
    )
    absdx = np.abs(cand - desired_x)
    cost = int_cost + absdx

    best_cost = cost.min(axis=1, keepdims=True)
    tie1 = np.where(cost == best_cost, absdx, np.inf)
    best_tie1 = tie1.min(axis=1, keepdims=True)
    tie2 = np.where(tie1 == best_tie1, cand, np.inf)
    best_x = tie2.min(axis=1)

    rows_arr = np.fromiter(
        (p.bottom_row for p in points), dtype=np.float64, count=npts
    )
    cost_um = (
        best_cost[:, 0] * site_width_um
        + np.abs(rows_arr - desired_y) * site_height_um
    )
    return [
        EvaluatedPoint(
            point=points[i], target_x=int(best_x[i]), cost=float(cost_um[i])
        )
        for i in range(npts)
    ]


class SoaKernel:
    """The SoA hot path bound to one design — what
    :class:`~repro.core.mll.MultiRowLocalLegalizer` dispatches to when
    ``config.kernel is Kernel.SOA``."""

    __slots__ = ("mirror",)

    def __init__(self, design: "Design") -> None:
        self.mirror = attach_soa(design)

    def evaluate_region(
        self,
        region: LocalRegion,
        target: Cell,
        desired_x: float,
        desired_y: float,
        site_width_um: float,
        site_height_um: float,
        mode: EvaluationMode,
        row_ok: RowPredicate | None,
    ) -> list[EvaluatedPoint]:
        """bounds → intervals → scanline → batched evaluation."""
        from repro.core.intervals import build_insertion_intervals

        rsoa = RegionSoA.from_region(region, self.mirror)
        bounds = soa_compute_bounds(rsoa)
        feasible, discarded = build_insertion_intervals(
            region, bounds, target.width
        )
        points = soa_enumerate_insertion_points(
            rsoa, feasible, discarded, target.height, row_ok
        )
        return soa_evaluate_points(
            rsoa,
            points,
            target,
            desired_x,
            desired_y,
            site_width_um,
            site_height_um,
            mode,
        )
