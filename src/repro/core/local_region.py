"""Local region extraction (paper Sections 2.1.3 and 3, Figure 3).

Given a rectangular window, we carve out one *local segment* per row —
a run of sites bounded by the window, by blockages/segment ends, and by
*non-local* cells — and classify the cells completely contained in the
local segments as *local cells*.  Local cells are the only cells MLL may
move (and only horizontally).

The paper omits the extraction algorithm ("due to page limit").  We use a
fixed-point construction that matches every property stated in the paper:

1. Cells not completely inside the window are non-local.
2. Non-local cells split each row's span into candidate runs; the run
   closest to the window center becomes the row's local segment.
3. A cell is local iff it is completely contained in the local segment of
   *every* row it spans; a cell inside the window that fails this (e.g. a
   single-row cell in a non-chosen run, or a multi-row cell whose rows
   chose incompatible runs — cells ``i`` and ``c`` of Figure 3) becomes
   non-local, and extraction repeats with it as a blocker.

The non-local set only grows, so the iteration terminates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.cell import Cell
from repro.db.design import Design
from repro.db.floorplan import Floorplan
from repro.db.segment import Segment
from repro.geometry import Rect


@dataclass(slots=True)
class LocalSegment:
    """One row's slice of the local region.

    ``cells`` holds the local cells overlapping the slice, ordered by x —
    the order MLL will preserve.
    """

    row_index: int
    x0: int
    x1: int
    db_segment: Segment
    cells: list[Cell] = field(default_factory=list)

    @property
    def width(self) -> int:
        """Number of sites in the local segment."""
        return self.x1 - self.x0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LocalSegment(row={self.row_index}, x=[{self.x0},{self.x1}), "
            f"cells=[{', '.join(c.name for c in self.cells)}])"
        )


@dataclass(slots=True)
class LocalRegion:
    """The extracted local placement problem.

    ``segments`` maps row index to the row's local segment; rows of the
    window without a usable run are absent.  ``cells`` lists each local
    cell once.
    """

    window: Rect
    segments: dict[int, LocalSegment]
    cells: list[Cell]

    def rows(self) -> list[int]:
        """Sorted row indices that have a local segment."""
        return sorted(self.segments)

    def cell_index(self, row_index: int, cell: Cell) -> int:
        """Index of *cell* in the local segment of ``row_index``."""
        seg = self.segments[row_index]
        for i, c in enumerate(seg.cells):
            if c is cell:
                return i
        raise ValueError(f"cell {cell.name!r} not local in row {row_index}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LocalRegion(window={self.window}, rows={self.rows()}, "
            f"{len(self.cells)} local cells)"
        )


def extract_local_region(
    design: Design, window: Rect, region_id: int | None = None
) -> LocalRegion:
    """Extract the local region for *window* (integer site coordinates).

    ``region_id`` restricts the extraction to segments of one fence
    region (the target cell's); segments are disjoint in x, so cells of
    other regions can neither move for nor block the target and are
    simply outside the local region.

    See the module docstring for the construction.  The returned region
    references the design's :class:`~repro.db.cell.Cell` objects directly;
    realization mutates their positions in place.
    """
    fp = design.floorplan
    row_lo = max(0, int(window.y))
    row_hi = min(fp.num_rows, int(window.y1))
    wx0 = max(0, int(window.x))
    wx1 = min(fp.row_width, int(window.x1))
    center_x = (wx0 + wx1) / 2

    # Cells intersecting the window area at all (placed ones only).
    touching: list[Cell] = design.cells_overlapping_rect(
        Rect(wx0, row_lo, wx1 - wx0, row_hi - row_lo)
    )
    window_box = Rect(wx0, row_lo, wx1 - wx0, row_hi - row_lo)
    non_local_ids: set[int] = set()
    for cell in touching:
        if cell.fixed or not window_box.contains_rect(cell.rect):
            non_local_ids.add(cell.id)

    while True:
        segments = _choose_local_segments(
            fp, touching, non_local_ids, row_lo, row_hi, wx0, wx1, center_x,
            region_id,
        )
        local, rejected = _classify_cells(touching, non_local_ids, segments)
        if not rejected:
            for cell in local:
                for row in cell.rows_spanned():
                    # repro-lint: disable=RL1 -- LocalSegment is a scratch
                    # copy of the window, not journaled DB state
                    segments[row].cells.append(cell)
            for seg in segments.values():
                # repro-lint: disable=RL1 -- scratch LocalSegment list
                seg.cells.sort(key=lambda c: c.x)  # type: ignore[arg-type,return-value]
            return LocalRegion(window=window_box, segments=segments, cells=local)
        non_local_ids.update(c.id for c in rejected)


def _choose_local_segments(
    fp: Floorplan,
    touching: list[Cell],
    non_local_ids: set[int],
    row_lo: int,
    row_hi: int,
    wx0: int,
    wx1: int,
    center_x: float,
    region_id: int | None = None,
) -> dict[int, LocalSegment]:
    """Pick, per row, the candidate run closest to the window center."""
    segments: dict[int, LocalSegment] = {}
    for row in range(row_lo, row_hi):
        best: tuple[float, int, int, Segment] | None = None
        for db_seg in fp.segments_in_row(row):
            if db_seg.region != region_id:
                continue
            lo = max(db_seg.x0, wx0)
            hi = min(db_seg.x1, wx1)
            if lo >= hi:
                continue
            # Blockers: non-local cells overlapping this run.
            spans = sorted(
                (max(int(c.x), lo), min(int(c.x) + c.width, hi))  # type: ignore[arg-type]
                for c in db_seg.cells
                if c.id in non_local_ids and c.x is not None and c.x < hi
                and c.x + c.width > lo
            )
            x = lo
            for b_lo, b_hi in spans:
                if b_lo > x:
                    best = _better(best, x, b_lo, center_x, db_seg)
                x = max(x, b_hi)
            if x < hi:
                best = _better(best, x, hi, center_x, db_seg)
        if best is not None:
            _, lo, hi, db_seg = best
            segments[row] = LocalSegment(
                row_index=row, x0=lo, x1=hi, db_segment=db_seg
            )
    return segments


def _better(
    best: tuple[float, int, int, Segment] | None,
    lo: int,
    hi: int,
    center_x: float,
    db_seg: Segment,
) -> tuple[float, int, int, Segment]:
    """Keep the run closest to the window center (ties: wider, leftmost)."""
    if lo <= center_x <= hi:
        dist = 0.0
    else:
        dist = min(abs(lo - center_x), abs(hi - center_x))
    cand = (dist, lo, hi, db_seg)
    if best is None:
        return cand
    if (dist, -(hi - lo), lo) < (best[0], -(best[2] - best[1]), best[1]):
        return cand
    return best


def _classify_cells(
    touching: list[Cell],
    non_local_ids: set[int],
    segments: dict[int, LocalSegment],
) -> tuple[list[Cell], list[Cell]]:
    """Split window cells into local and newly-rejected (non-local).

    A cell is local iff every row it spans has a local segment that fully
    contains the cell's span.
    """
    local: list[Cell] = []
    rejected: list[Cell] = []
    for cell in touching:
        if cell.id in non_local_ids:
            continue
        assert cell.x is not None
        ok = all(
            row in segments
            and cell.x >= segments[row].x0
            and cell.x + cell.width <= segments[row].x1
            for row in cell.rows_spanned()
        )
        if ok:
            local.append(cell)
        else:
            rejected.append(cell)
    return local, rejected
