"""Insertion point evaluation (paper Section 5.2, Figure 9).

Fixing an insertion point fixes every cell's relative position; only the
target's exact x remains free.  Each local cell's displacement as a
function of the target x is the V-with-flat-bottom curve of equation (3),
characterized by two *critical positions* ``x_a`` (below which the cell
is pushed left… actually: below which the target pushes the cell) and
``x_b``:

* a cell on the target's **left** is displaced iff the target x drops
  below ``x_a = x_c + chain``, where ``chain`` is the largest total width
  of cells on a push path from the target to the cell (inclusive);
* a cell on the target's **right** is displaced iff the target x exceeds
  ``x_b = x_c - w_t - chain'``, where ``chain'`` sums the widths of the
  cells strictly between the target and the cell on the worst path;
* the target itself contributes the degenerate curve
  ``x_a = x_b = desired x``.

The total displacement is convex piecewise-linear; its minimum is attained
at the median of the multiset of critical positions (left cells contribute
``x_b = +inf``, right cells ``x_a = -inf``).  The push paths form a DAG —
multi-row cells fan a push out into every row they span — and the chain
maxima are longest paths, computable in one sweep over cells ordered by x
(paper: "values of all critical positions can be found in O(|C_W|)").

The *approximate* mode (the paper's default) only uses the ≤ 2·h_t cells
adjacent to the chosen gaps: ``x_a = x_i + w_i`` for a left neighbor,
``x_b = x_j - w_t`` for a right neighbor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import EvaluationMode
from repro.core.enumeration import InsertionPoint
from repro.core.local_region import LocalRegion
from repro.db.cell import Cell

_INF = math.inf


@dataclass(frozen=True, slots=True)
class EvaluatedPoint:
    """An insertion point with its chosen target x and estimated cost.

    ``cost`` is in *micron* units so that horizontal (site width) and
    vertical (row height) displacement combine consistently.
    """

    point: InsertionPoint
    target_x: int
    cost: float

    @property
    def bottom_row(self) -> int:
        """Row of the target's lower edge."""
        return self.point.bottom_row


def _critical_positions_exact(
    region: LocalRegion,
    point: InsertionPoint,
    target_width: int,
) -> list[tuple[float, float]]:
    """(x_a, x_b) pairs of every local cell displaced by some target x.

    Longest-path propagation over the push DAG, left side and right side
    independently.  Cells unreachable from the target never move and are
    omitted (their curve is identically zero).
    """
    pairs: list[tuple[float, float]] = []

    # --- left side: chain[c] = max total width from target to c inclusive.
    chain: dict[int, float] = {}
    seeds: list[Cell] = [iv.left for iv in point.intervals if iv.left is not None]
    order: list[Cell] = []
    seen: set[int] = set()
    # Work right-to-left: a push goes from a cell to its left neighbors.
    stack = list(seeds)
    for c in stack:
        if c.id not in seen:
            seen.add(c.id)
            order.append(c)
    i = 0
    while i < len(order):
        c = order[i]
        i += 1
        for row in c.rows_spanned():
            seg = region.segments[row]
            idx = region.cell_index(row, c)
            if idx > 0:
                p = seg.cells[idx - 1]
                if p.id not in seen:
                    seen.add(p.id)
                    order.append(p)
    # Longest path: process in decreasing current-x order (topological).
    order.sort(key=lambda c: -(c.x or 0))
    seed_ids = {c.id for c in seeds}
    pushers: dict[int, list[Cell]] = {}
    for c in order:
        for row in c.rows_spanned():
            seg = region.segments[row]
            idx = region.cell_index(row, c)
            if idx > 0:
                p = seg.cells[idx - 1]
                if p.id in seen:
                    pushers.setdefault(p.id, []).append(c)
    for c in order:
        base = c.width if c.id in seed_ids else -_INF
        via = max(
            (chain[q.id] + c.width for q in pushers.get(c.id, ()) if q.id in chain),
            default=-_INF,
        )
        val = max(base, via)
        if val > -_INF:
            chain[c.id] = val
            assert c.x is not None
            pairs.append((c.x + val, _INF))

    # --- right side: chain'[c] = max width strictly between target and c.
    chain_r: dict[int, float] = {}
    seeds_r = [iv.right for iv in point.intervals if iv.right is not None]
    seen_r: set[int] = set()
    order_r: list[Cell] = []
    for c in seeds_r:
        if c.id not in seen_r:
            seen_r.add(c.id)
            order_r.append(c)
    i = 0
    while i < len(order_r):
        c = order_r[i]
        i += 1
        for row in c.rows_spanned():
            seg = region.segments[row]
            idx = region.cell_index(row, c)
            if idx + 1 < len(seg.cells):
                nxt = seg.cells[idx + 1]
                if nxt.id not in seen_r:
                    seen_r.add(nxt.id)
                    order_r.append(nxt)
    order_r.sort(key=lambda c: (c.x or 0))
    seed_ids_r = {c.id for c in seeds_r}
    pushers_r: dict[int, list[Cell]] = {}
    for c in order_r:
        for row in c.rows_spanned():
            seg = region.segments[row]
            idx = region.cell_index(row, c)
            if idx + 1 < len(seg.cells):
                nxt = seg.cells[idx + 1]
                if nxt.id in seen_r:
                    pushers_r.setdefault(nxt.id, []).append(c)
    for c in order_r:
        base = 0.0 if c.id in seed_ids_r else -_INF
        via = max(
            (
                chain_r[p.id] + p.width
                for p in pushers_r.get(c.id, ())
                if p.id in chain_r
            ),
            default=-_INF,
        )
        val = max(base, via)
        if val > -_INF:
            chain_r[c.id] = val
            assert c.x is not None
            pairs.append((-_INF, c.x - target_width - val))

    return pairs


def _critical_positions_approx(
    point: InsertionPoint,
    target_width: int,
) -> list[tuple[float, float]]:
    """Neighbor-only critical positions (paper Section 5.2 last para)."""
    pairs: list[tuple[float, float]] = []
    for iv in point.intervals:
        if iv.left is not None:
            assert iv.left.x is not None
            pairs.append((iv.left.x + iv.left.width, _INF))
        if iv.right is not None:
            assert iv.right.x is not None
            pairs.append((-_INF, iv.right.x - target_width))
    return pairs


def _total_cost(pairs: list[tuple[float, float]], x: float) -> float:
    """Sum of equation-(3) curves at target position *x*, in sites."""
    total = 0.0
    for a, b in pairs:
        if x < a:
            total += a - x
        elif x > b:
            total += x - b
    return total


def _optimal_x(
    pairs: list[tuple[float, float]],
    x_lo: int,
    x_hi: int,
    desired_x: float,
) -> int:
    """Integer x in [x_lo, x_hi] minimizing the summed curves.

    The median of the critical-position multiset minimizes the sum; we
    clamp it into the feasible range and round to the site grid, picking
    the better of floor/ceil (the objective is convex).
    """
    endpoints = sorted(v for pair in pairs for v in pair)
    n = len(endpoints)
    if n == 0:
        # No curves: every x costs 0, so only the desired-x tie-break
        # matters.  Fall through to the shared floor/ceil candidate
        # selection — `int(round(...))` here would banker's-round x.5
        # to the even neighbor, diverging from the main path's snap.
        med = desired_x
    else:
        # Lower median; any point of [endpoints[n//2-1], endpoints[n//2]]
        # is optimal for even n, and endpoints[n//2] for odd n.
        med = endpoints[(n - 1) // 2]
    if med == -_INF:
        med = x_lo
    elif med == _INF:
        med = x_hi
    clamped = min(max(med, x_lo), x_hi)
    raw = (x_lo, x_hi, int(math.floor(clamped)), int(math.ceil(clamped)))
    candidates = sorted({x for x in raw if x_lo <= x <= x_hi})
    return min(candidates, key=lambda x: (_total_cost(pairs, x), abs(x - desired_x)))


def evaluate_insertion_point(
    region: LocalRegion,
    point: InsertionPoint,
    target: Cell,
    desired_x: float,
    desired_y: float,
    site_width_um: float,
    site_height_um: float,
    mode: EvaluationMode = EvaluationMode.APPROX,
) -> EvaluatedPoint:
    """Choose the target x for *point* and estimate its total cost.

    The cost combines the local cells' x-displacement (sites × site
    width) with the target's displacement from its desired position
    (Manhattan, in microns).  In :data:`EvaluationMode.EXACT` the cost is
    the true total displacement of the realized placement; in
    :data:`EvaluationMode.APPROX` only gap-adjacent cells contribute.
    """
    if mode is EvaluationMode.EXACT:
        pairs = _critical_positions_exact(region, point, target.width)
    else:
        pairs = _critical_positions_approx(point, target.width)
    # The target's own displacement curve: x_a = x_b = desired_x.
    pairs.append((desired_x, desired_x))
    x = _optimal_x(pairs, point.x_lo, point.x_hi, desired_x)
    cost_sites = _total_cost(pairs, x)
    cost = cost_sites * site_width_um + abs(point.bottom_row - desired_y) * site_height_um
    return EvaluatedPoint(point=point, target_x=x, cost=cost)
