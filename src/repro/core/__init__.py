"""The paper's contribution: Multi-row Local Legalization (MLL).

Pipeline (paper Sections 3-5)::

    window --> LocalRegion --> leftmost/rightmost bounds
           --> insertion intervals --> insertion points (scanline)
           --> evaluation (median of critical positions)
           --> realization (two-queue ripple push)

:class:`~repro.core.legalizer.Legalizer` is the top-level Algorithm 1
driver; :class:`~repro.core.mll.MultiRowLocalLegalizer` is the MLL
primitive usable on its own for incremental legalization (local moves,
gate sizing, buffer insertion).
"""

from repro.core.bounds import PlacementBounds, compute_bounds
from repro.core.config import EvaluationMode, Kernel, LegalizerConfig
from repro.core.enumeration import (
    InsertionPoint,
    enumerate_insertion_points,
    enumerate_insertion_points_bruteforce,
)
from repro.core.evaluation import EvaluatedPoint, evaluate_insertion_point
from repro.core.instrumentation import MllTelemetry
from repro.core.intervals import InsertionInterval, build_insertion_intervals
from repro.core.legalizer import (
    LegalizationError,
    LegalizationResult,
    Legalizer,
    StuckCell,
    StuckCellReport,
    legalize,
)
from repro.core.local_region import LocalRegion, LocalSegment, extract_local_region
from repro.core.mll import AuditError, MllResult, MultiRowLocalLegalizer
from repro.core.realization import RealizationError, realize_insertion

__all__ = [
    "AuditError",
    "EvaluatedPoint",
    "EvaluationMode",
    "InsertionInterval",
    "InsertionPoint",
    "Kernel",
    "LegalizationError",
    "LegalizationResult",
    "Legalizer",
    "LegalizerConfig",
    "LocalRegion",
    "LocalSegment",
    "MllResult",
    "MllTelemetry",
    "MultiRowLocalLegalizer",
    "PlacementBounds",
    "RealizationError",
    "StuckCell",
    "StuckCellReport",
    "build_insertion_intervals",
    "compute_bounds",
    "enumerate_insertion_points",
    "enumerate_insertion_points_bruteforce",
    "evaluate_insertion_point",
    "extract_local_region",
    "legalize",
    "realize_insertion",
]
