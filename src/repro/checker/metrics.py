"""Quality metrics: displacement and HPWL (paper Table 1 columns).

The paper reports

* average cell displacement in *number of site widths* — micron
  displacement divided by the site width,
* HPWL change relative to the input global placement, in percent,
* wall-clock runtime.

``make_report`` bundles all three for one legalization run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.design import Design


@dataclass(frozen=True, slots=True)
class DisplacementStats:
    """Displacement aggregates over all placed movable cells."""

    total_um: float
    avg_um: float
    max_um: float
    avg_sites: float
    """Average displacement divided by the site width (Table 1 unit)."""
    num_cells: int


@dataclass(frozen=True, slots=True)
class HpwlStats:
    """HPWL before (global placement) and after legalization."""

    gp_um: float
    legal_um: float

    @property
    def delta_pct(self) -> float:
        """Percent HPWL change caused by legalization (Table 1 ΔHPWL)."""
        if self.gp_um == 0:
            return 0.0
        return 100.0 * (self.legal_um - self.gp_um) / self.gp_um


@dataclass(frozen=True, slots=True)
class LegalizationReport:
    """One Table 1 row: displacement, ΔHPWL and runtime for a run."""

    design_name: str
    displacement: DisplacementStats
    hpwl: HpwlStats
    runtime_s: float

    def row(self) -> str:
        """Human-readable one-line summary."""
        return (
            f"{self.design_name:<18s} disp={self.displacement.avg_sites:7.3f} sites  "
            f"dHPWL={self.hpwl.delta_pct:+6.2f}%  t={self.runtime_s:8.3f}s"
        )


def displacement_stats(design: Design) -> DisplacementStats:
    """Displacement of every placed movable cell vs. its GP position."""
    fp = design.floorplan
    total = 0.0
    peak = 0.0
    n = 0
    for cell in design.movable_cells():
        if not cell.is_placed:
            continue
        dx, dy = cell.displacement_sites()
        d_um = fp.displacement_um(dx, dy)
        total += d_um
        peak = max(peak, d_um)
        n += 1
    avg = total / n if n else 0.0
    return DisplacementStats(
        total_um=total,
        avg_um=avg,
        max_um=peak,
        avg_sites=avg / fp.site_width_um if fp.site_width_um else 0.0,
        num_cells=n,
    )


def hpwl_stats(design: Design) -> HpwlStats:
    """HPWL at the GP positions and at the current positions."""
    return HpwlStats(
        gp_um=design.hpwl_um(use_gp=True),
        legal_um=design.hpwl_um(use_gp=False),
    )


def make_report(design: Design, runtime_s: float) -> LegalizationReport:
    """Bundle displacement + HPWL + runtime for the current placement."""
    return LegalizationReport(
        design_name=design.name,
        displacement=displacement_stats(design),
        hpwl=hpwl_stats(design),
        runtime_s=runtime_s,
    )
