"""Independent legality checking and quality metrics.

The checker re-validates the four constraints of paper Section 2 from
scratch (it does not trust the legalizer's own bookkeeping), plus the
database invariant that placed cells are registered in exactly the
segment lists they overlap.
"""

from repro.checker.legality import (
    Violation,
    ViolationKind,
    assert_legal,
    verify_cells,
    verify_placement,
)
from repro.checker.metrics import (
    DisplacementStats,
    HpwlStats,
    LegalizationReport,
    displacement_stats,
    hpwl_stats,
    make_report,
)

__all__ = [
    "DisplacementStats",
    "HpwlStats",
    "LegalizationReport",
    "Violation",
    "ViolationKind",
    "assert_legal",
    "displacement_stats",
    "hpwl_stats",
    "make_report",
    "verify_cells",
    "verify_placement",
]
