"""Legality verification (paper Section 2, constraints 1-4).

``verify_placement`` walks the whole design and returns every violation it
finds.  It deliberately avoids the :class:`~repro.db.design.Design`
occupancy helpers for the overlap check — a plane-sweep over cell
rectangles is used instead — so that a bug in the segment bookkeeping
cannot mask itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.db.cell import Cell
from repro.db.design import Design


class ViolationKind(Enum):
    """The legality rule a violation breaks."""

    UNPLACED = "unplaced"
    OUT_OF_BOUNDS = "out_of_bounds"
    NOT_IN_SEGMENT = "not_in_segment"
    RAIL_MISALIGNED = "rail_misaligned"
    OVERLAP = "overlap"
    BAD_REGISTRATION = "bad_registration"
    WRONG_REGION = "wrong_region"


@dataclass(frozen=True, slots=True)
class Violation:
    """One legality violation, naming the offending cell(s)."""

    kind: ViolationKind
    cells: tuple[str, ...]
    message: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"[{self.kind.value}] {self.message}"


def verify_placement(
    design: Design,
    power_aligned: bool = True,
    require_all_placed: bool = True,
    check_registration: bool = True,
) -> list[Violation]:
    """All legality violations of the current placement.

    Parameters
    ----------
    power_aligned:
        When True (default), constraint 4 (rail parity of even-height
        cells) is enforced; the paper's second experiment relaxes it.
    require_all_placed:
        When True, unplaced movable cells are violations.
    check_registration:
        Also verify the segment cell-list invariant of Section 2.1.2.
    """
    violations: list[Violation] = []
    fp = design.floorplan
    placed: list[Cell] = []

    for cell in design.cells:
        if not cell.is_placed:
            if require_all_placed and not cell.fixed:
                violations.append(
                    Violation(
                        ViolationKind.UNPLACED,
                        (cell.name,),
                        f"cell {cell.name!r} has no position",
                    )
                )
            continue
        placed.append(cell)
        assert cell.x is not None and cell.y is not None
        if cell.y < 0 or cell.y + cell.height > fp.num_rows:
            violations.append(
                Violation(
                    ViolationKind.OUT_OF_BOUNDS,
                    (cell.name,),
                    f"cell {cell.name!r} rows [{cell.y},{cell.y + cell.height})"
                    f" outside [0,{fp.num_rows})",
                )
            )
            continue
        # Constraint 3: contained in a segment in every row it spans —
        # and, with fence regions, in a segment of the cell's region.
        for row in cell.rows_spanned():
            seg = fp.segment_containing_span(row, cell.x, cell.width)
            if seg is None:
                violations.append(
                    Violation(
                        ViolationKind.NOT_IN_SEGMENT,
                        (cell.name,),
                        f"cell {cell.name!r} span [{cell.x},{cell.x + cell.width})"
                        f" not inside a segment of row {row}",
                    )
                )
            elif seg.region != cell.region:
                violations.append(
                    Violation(
                        ViolationKind.WRONG_REGION,
                        (cell.name,),
                        f"cell {cell.name!r} (region {cell.region}) occupies "
                        f"a region-{seg.region} segment in row {row}",
                    )
                )
        # Constraint 4: power-rail alignment for even-height cells.
        if power_aligned and not design.row_compatible(cell, cell.y):
            violations.append(
                Violation(
                    ViolationKind.RAIL_MISALIGNED,
                    (cell.name,),
                    f"even-height cell {cell.name!r} starts on row {cell.y} "
                    f"with mismatched bottom rail",
                )
            )

    violations.extend(_find_overlaps(placed))
    if check_registration:
        violations.extend(_check_registration(design, placed))
    return violations


def _find_overlaps(placed: list[Cell]) -> list[Violation]:
    """Constraint 1: pairwise overlap check via a per-row sweep."""
    violations: list[Violation] = []
    by_row: dict[int, list[Cell]] = {}
    for cell in placed:
        for row in cell.rows_spanned():
            by_row.setdefault(row, []).append(cell)
    reported: set[tuple[int, int]] = set()
    for row, cells in by_row.items():
        cells.sort(key=lambda c: (c.x, c.id))
        for a, b in zip(cells, cells[1:]):
            assert a.x is not None and b.x is not None
            if a.x + a.width > b.x:
                key = (min(a.id, b.id), max(a.id, b.id))
                if key not in reported:
                    reported.add(key)
                    violations.append(
                        Violation(
                            ViolationKind.OVERLAP,
                            (a.name, b.name),
                            f"cells {a.name!r} and {b.name!r} overlap in row {row}",
                        )
                    )
    return violations


def _check_registration(design: Design, placed: list[Cell]) -> list[Violation]:
    """Database invariant: height-h cell in exactly its h segment lists."""
    violations: list[Violation] = []
    expected: dict[int, set[int]] = {c.id: set() for c in placed}
    for cell in placed:
        assert cell.x is not None
        for row in cell.rows_spanned():
            seg = design.floorplan.segment_containing_span(row, cell.x, cell.width)
            if seg is not None:
                expected[cell.id].add(seg.id)
    actual: dict[int, set[int]] = {c.id: set() for c in placed}
    names = {c.id: c.name for c in placed}
    for seg in design.floorplan.segments:
        last_x = None
        for c in seg.cells:
            if c.id in actual:
                actual[c.id].add(seg.id)
            if c.x is None or (last_x is not None and c.x < last_x):
                violations.append(
                    Violation(
                        ViolationKind.BAD_REGISTRATION,
                        (c.name,),
                        f"segment {seg.id} cell list is not x-sorted at "
                        f"{c.name!r}",
                    )
                )
            last_x = c.x
    for cid, segs in expected.items():
        if actual.get(cid, set()) != segs:
            violations.append(
                Violation(
                    ViolationKind.BAD_REGISTRATION,
                    (names[cid],),
                    f"cell {names[cid]!r} registered in segments "
                    f"{sorted(actual.get(cid, set()))}, expected {sorted(segs)}",
                )
            )
    return violations


def verify_cells(
    design: Design,
    cells: list[Cell],
    power_aligned: bool = True,
) -> list[Violation]:
    """Legality audit restricted to *cells* and their segment neighborhood.

    The local counterpart of :func:`verify_placement`, used by the MLL
    post-realization audit (``LegalizerConfig.audit``): it re-checks, for
    every given cell, constraints 2-4 (containment, fence region, rail
    alignment) and, for every segment such a cell spans, that the ordered
    cell list is x-sorted, overlap-free and consistent with the cells'
    coordinates — which covers every neighbor a ripple push may have
    moved.  Cost is proportional to the touched segments' cell lists, not
    the design.
    """
    violations: list[Violation] = []
    fp = design.floorplan
    involved: dict[int, object] = {}
    audited: list[Cell] = []
    seen_ids: set[int] = set()
    for cell in cells:
        if cell.id in seen_ids:
            continue
        seen_ids.add(cell.id)
        if not cell.is_placed:
            violations.append(
                Violation(
                    ViolationKind.UNPLACED,
                    (cell.name,),
                    f"cell {cell.name!r} has no position",
                )
            )
            continue
        audited.append(cell)
        assert cell.x is not None and cell.y is not None
        if cell.y < 0 or cell.y + cell.height > fp.num_rows:
            violations.append(
                Violation(
                    ViolationKind.OUT_OF_BOUNDS,
                    (cell.name,),
                    f"cell {cell.name!r} rows [{cell.y},{cell.y + cell.height})"
                    f" outside [0,{fp.num_rows})",
                )
            )
            continue
        for row in cell.rows_spanned():
            seg = fp.segment_containing_span(row, cell.x, cell.width)
            if seg is None:
                violations.append(
                    Violation(
                        ViolationKind.NOT_IN_SEGMENT,
                        (cell.name,),
                        f"cell {cell.name!r} span [{cell.x},{cell.x + cell.width})"
                        f" not inside a segment of row {row}",
                    )
                )
                continue
            if seg.region != cell.region:
                violations.append(
                    Violation(
                        ViolationKind.WRONG_REGION,
                        (cell.name,),
                        f"cell {cell.name!r} (region {cell.region}) occupies "
                        f"a region-{seg.region} segment in row {row}",
                    )
                )
            involved[seg.id] = seg
        if power_aligned and not design.row_compatible(cell, cell.y):
            violations.append(
                Violation(
                    ViolationKind.RAIL_MISALIGNED,
                    (cell.name,),
                    f"even-height cell {cell.name!r} starts on row {cell.y} "
                    f"with mismatched bottom rail",
                )
            )

    # Segment-list invariants over every touched segment: x-sorted,
    # pairwise non-overlapping, and each audited cell registered exactly
    # once per row it spans.
    counts: dict[int, int] = {c.id: 0 for c in audited}
    reported: set[tuple[int, int]] = set()
    for seg in involved.values():
        prev = None
        for c in seg.cells:
            if c.id in counts:
                counts[c.id] += 1
            if c.x is None:
                violations.append(
                    Violation(
                        ViolationKind.BAD_REGISTRATION,
                        (c.name,),
                        f"unplaced cell {c.name!r} registered in segment "
                        f"{seg.id}",
                    )
                )
                prev = None
                continue
            if prev is not None:
                assert prev.x is not None
                if c.x < prev.x:
                    violations.append(
                        Violation(
                            ViolationKind.BAD_REGISTRATION,
                            (c.name,),
                            f"segment {seg.id} cell list is not x-sorted at "
                            f"{c.name!r}",
                        )
                    )
                elif prev.x + prev.width > c.x:
                    key = (min(prev.id, c.id), max(prev.id, c.id))
                    if key not in reported:
                        reported.add(key)
                        violations.append(
                            Violation(
                                ViolationKind.OVERLAP,
                                (prev.name, c.name),
                                f"cells {prev.name!r} and {c.name!r} overlap "
                                f"in row {seg.row_index}",
                            )
                        )
            prev = c
    for cell in audited:
        if counts.get(cell.id, 0) != cell.height and cell.y is not None \
                and 0 <= cell.y and cell.y + cell.height <= fp.num_rows:
            violations.append(
                Violation(
                    ViolationKind.BAD_REGISTRATION,
                    (cell.name,),
                    f"cell {cell.name!r} registered {counts.get(cell.id, 0)} "
                    f"times, expected {cell.height}",
                )
            )
    return violations


def assert_legal(
    design: Design, power_aligned: bool = True, require_all_placed: bool = True
) -> None:
    """Raise :class:`AssertionError` listing violations, if any."""
    violations = verify_placement(
        design,
        power_aligned=power_aligned,
        require_all_placed=require_all_placed,
    )
    if violations:
        head = "\n".join(str(v) for v in violations[:20])
        more = "" if len(violations) <= 20 else f"\n... and {len(violations) - 20} more"
        raise AssertionError(
            f"placement of {design.name!r} has {len(violations)} violations:\n"
            f"{head}{more}"
        )
