"""Greedy non-displacing legalizer ("Tetris", after Hill's patent [7]).

Cells are processed once, in x order, and each is placed at the nearest
free legal position — *placed cells never move* to accommodate later
ones.  This is the mixed-size greedy extension the paper's Section 1
criticizes: it is fast, but at high design density the lack of
give-and-take inflates displacement, which the baseline ablation
(``benchmarks/bench_baselines.py``) quantifies against MLL.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.db.cell import Cell
from repro.db.design import Design


@dataclass(slots=True)
class TetrisResult:
    """Run statistics of a greedy legalization."""

    placed: int = 0
    failed_cells: list[str] = field(default_factory=list)
    runtime_s: float = 0.0


def find_nearest_free(
    design: Design,
    cell: Cell,
    tx: float,
    ty: float,
    power_aligned: bool = True,
    max_candidates_per_row: int = 256,
) -> tuple[int, int] | None:
    """Nearest free legal position to ``(tx, ty)`` without moving anyone.

    Rows are scanned nearest-first; within a row the candidate positions
    are the rounded target plus the boundaries of nearby occupied spans,
    tested with :meth:`~repro.db.design.Design.can_place`.  The search
    stops once no untried row can beat the best found cost.
    """
    fp = design.floorplan
    best: tuple[float, int, int] | None = None
    for y in design.candidate_rows(cell, ty, power_aligned=power_aligned):
        y_cost = abs(y - ty) * fp.site_height_um
        if best is not None and y_cost >= best[0]:
            break  # rows are sorted by |y - ty|; nothing better remains
        x = _nearest_free_x_in_rows(
            design, cell, tx, y, max_candidates_per_row
        )
        if x is None:
            continue
        cost = y_cost + abs(x - tx) * fp.site_width_um
        if best is None or cost < best[0]:
            best = (cost, x, y)
    if best is None:
        return None
    return best[1], best[2]


def _nearest_free_x_in_rows(
    design: Design,
    cell: Cell,
    tx: float,
    y: int,
    max_candidates: int,
) -> int | None:
    """Nearest x at bottom row *y* where the cell's footprint is free."""
    fp = design.floorplan
    candidates: set[int] = set()
    base = int(round(tx))
    lo_bound = 0
    hi_bound = fp.row_width - cell.width
    if hi_bound < lo_bound:
        return None
    candidates.add(min(max(base, lo_bound), hi_bound))
    for row in range(y, y + cell.height):
        for seg in fp.segments_in_row(row):
            candidates.add(min(max(seg.x0, lo_bound), hi_bound))
            candidates.add(min(max(seg.x1 - cell.width, lo_bound), hi_bound))
            for c in seg.cells:
                assert c.x is not None
                for cand in (c.x - cell.width, c.x + c.width):
                    if lo_bound <= cand <= hi_bound:
                        candidates.add(cand)
    ordered = sorted(candidates, key=lambda x: (abs(x - tx), x))
    for x in ordered[:max_candidates]:
        if design.can_place(cell, x, y, power_aligned=False):
            return x
    return None


class TetrisLegalizer:
    """Greedy left-to-right nearest-free legalizer."""

    def __init__(self, design: Design, power_aligned: bool = True) -> None:
        self.design = design
        self.power_aligned = power_aligned

    def run(self) -> TetrisResult:
        """Legalize all unplaced movable cells; never moves placed cells.

        Cells that find no free position are recorded in
        ``failed_cells`` (greedy legalizers can strand cells at high
        density — that failure mode is part of what the baseline
        comparison demonstrates).
        """
        t0 = time.perf_counter()
        result = TetrisResult()
        todo = [c for c in self.design.movable_cells() if not c.is_placed]
        todo.sort(key=lambda c: (c.gp_x, c.id))
        for cell in todo:
            pos = find_nearest_free(
                self.design,
                cell,
                cell.gp_x,
                cell.gp_y,
                power_aligned=self.power_aligned,
            )
            if pos is None:
                result.failed_cells.append(cell.name)
                continue
            self.design.place(
                cell, pos[0], pos[1], power_aligned=self.power_aligned
            )
            result.placed += 1
        result.runtime_s = time.perf_counter() - t0
        return result


def tetris_legalize(design: Design, power_aligned: bool = True) -> TetrisResult:
    """One-call wrapper around :class:`TetrisLegalizer`."""
    return TetrisLegalizer(design, power_aligned).run()
