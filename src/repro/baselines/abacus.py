"""Abacus single-row legalization [Spindler, Schlichtmann, Johannes,
ISPD 2008], extended to mixed heights the only way single-row methods
allow: the two-step "multi-row cells as macros" approach (paper Section 1,
refs [4]-[6]).

Step 1 places every multi-row cell greedily at the nearest free position
(macros are frozen from then on).  Step 2 runs classic Abacus on the
single-row cells over the remaining free intervals: cells are processed
in x order, appended to per-interval cluster chains, and clusters are
collapsed to their quadratic-optimal (mean) positions.

The point of carrying this baseline is the paper's motivating argument:
Abacus's intra-row shifting cannot coordinate across rows, so multi-row
cells must be frozen early, which inflates displacement as density grows
— measured in ``benchmarks/bench_baselines.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines.tetris import find_nearest_free
from repro.db.cell import Cell
from repro.db.design import Design


@dataclass(slots=True)
class AbacusResult:
    """Run statistics of an Abacus legalization."""

    placed: int = 0
    macro_placed: int = 0
    failed_cells: list[str] = field(default_factory=list)
    runtime_s: float = 0.0


@dataclass(slots=True)
class _Cluster:
    """A maximal run of abutting cells (Spindler's cluster record)."""

    x: float  # optimal (clamped) position of the cluster's left edge
    e: float  # total weight
    q: float  # Σ e_i · (x'_i − offset_i)
    w: int  # total width


@dataclass(slots=True)
class _IntervalState:
    """Abacus state of one free interval (sub-row between obstacles)."""

    row: int
    x0: int
    x1: int
    region: int | None = None
    clusters: list[_Cluster] = field(default_factory=list)
    cells: list[tuple[Cell, float]] = field(default_factory=list)
    used: int = 0

    @property
    def capacity(self) -> int:
        return (self.x1 - self.x0) - self.used


def _clamp(x: float, lo: float, hi: float) -> float:
    return min(max(x, lo), hi)


def _add_and_collapse(
    clusters: list[_Cluster], gx: float, width: int, x0: int, x1: int
) -> float:
    """Append one cell and re-collapse; returns the cell's final x.

    The appended cell is always the rightmost of the interval because
    Abacus processes cells in global x order.
    """
    last = clusters[-1] if clusters else None
    if last is not None and last.x + last.w > gx:
        # Append to the last cluster.
        last.q += gx - last.w
        last.e += 1.0
        last.w += width
    else:
        clusters.append(_Cluster(x=gx, e=1.0, q=gx, w=width))
    # Collapse rightmost cluster leftward while it overlaps predecessors.
    while True:
        cur = clusters[-1]
        cur.x = _clamp(cur.q / cur.e, x0, x1 - cur.w)
        if len(clusters) >= 2 and clusters[-2].x + clusters[-2].w > cur.x:
            prev = clusters.pop(-2)
            cur.q = prev.q + (cur.q - cur.e * prev.w)
            cur.e += prev.e
            cur.w += prev.w
            continue
        break
    cur = clusters[-1]
    return cur.x + cur.w - width


def _trial_position(
    state: _IntervalState, gx: float, width: int
) -> float:
    """Final x the cell would get, without mutating the state."""
    trial = [
        _Cluster(x=c.x, e=c.e, q=c.q, w=c.w) for c in state.clusters
    ]
    return _add_and_collapse(trial, gx, width, state.x0, state.x1)


class AbacusLegalizer:
    """Two-step Abacus for mixed-height designs."""

    def __init__(self, design: Design, power_aligned: bool = True) -> None:
        self.design = design
        self.power_aligned = power_aligned

    def run(self) -> AbacusResult:
        """Legalize all unplaced movable cells.

        Multi-row cells are frozen first (greedy nearest-free), then
        single-row cells are clustered per free interval.  Cells that fit
        nowhere are recorded in ``failed_cells``.
        """
        t0 = time.perf_counter()
        result = AbacusResult()
        self._place_macros(result)
        states = self._free_intervals()
        self._abacus_singles(states, result)
        self._commit(states, result)
        result.runtime_s = time.perf_counter() - t0
        return result

    # -- step 1: multi-row cells as macros ------------------------------
    def _place_macros(self, result: AbacusResult) -> None:
        macros = [
            c
            for c in self.design.movable_cells()
            if not c.is_placed and c.height > 1
        ]
        macros.sort(key=lambda c: (-c.height * c.width, c.id))
        for cell in macros:
            pos = find_nearest_free(
                self.design,
                cell,
                cell.gp_x,
                cell.gp_y,
                power_aligned=self.power_aligned,
            )
            if pos is None:
                result.failed_cells.append(cell.name)
                continue
            self.design.place(
                cell, pos[0], pos[1], power_aligned=self.power_aligned
            )
            result.macro_placed += 1
            result.placed += 1

    # -- step 2: free intervals after macro freeze ----------------------
    def _free_intervals(self) -> list[_IntervalState]:
        fp = self.design.floorplan
        states: list[_IntervalState] = []
        for row in range(fp.num_rows):
            for seg in fp.segments_in_row(row):
                x = seg.x0
                for c in sorted(seg.cells, key=lambda c: c.x):  # type: ignore[arg-type,return-value]
                    assert c.x is not None
                    if c.x > x:
                        states.append(
                            _IntervalState(
                                row=row, x0=x, x1=c.x, region=seg.region
                            )
                        )
                    x = max(x, c.x + c.width)
                if x < seg.x1:
                    states.append(
                        _IntervalState(
                            row=row, x0=x, x1=seg.x1, region=seg.region
                        )
                    )
        return states

    # -- step 3: classic Abacus over the intervals ----------------------
    def _abacus_singles(
        self, states: list[_IntervalState], result: AbacusResult
    ) -> None:
        fp = self.design.floorplan
        by_row: dict[int, list[_IntervalState]] = {}
        for st in states:
            by_row.setdefault(st.row, []).append(st)
        singles = [
            c
            for c in self.design.movable_cells()
            if not c.is_placed and c.height == 1
        ]
        singles.sort(key=lambda c: (c.gp_x, c.id))
        for cell in singles:
            best: tuple[float, _IntervalState, float] | None = None
            for y in self.design.candidate_rows(
                cell, cell.gp_y, power_aligned=self.power_aligned
            ):
                y_cost = abs(y - cell.gp_y) * fp.site_height_um
                if best is not None and y_cost >= best[0]:
                    break
                for st in by_row.get(y, ()):
                    if st.capacity < cell.width or st.region != cell.region:
                        continue
                    x = _trial_position(st, cell.gp_x, cell.width)
                    cost = y_cost + abs(x - cell.gp_x) * fp.site_width_um
                    if best is None or cost < best[0]:
                        best = (cost, st, x)
            if best is None:
                result.failed_cells.append(cell.name)
                continue
            _, st, _ = best
            _add_and_collapse(st.clusters, cell.gp_x, cell.width, st.x0, st.x1)
            st.cells.append((cell, cell.gp_x))
            st.used += cell.width
            result.placed += 1

    # -- step 4: snap cluster positions to sites and commit -------------
    def _commit(self, states: list[_IntervalState], result: AbacusResult) -> None:
        for st in states:
            if not st.cells:
                continue
            prev_end = st.x0
            positions: list[int] = []
            i = 0
            for cluster in st.clusters:
                x = int(round(cluster.x))
                x = max(x, prev_end)
                # Walk the cluster's cells left to right.
                offset = 0
                count = int(round(cluster.e))
                for _ in range(count):
                    cell, _gx = st.cells[i]
                    positions.append(x + offset)
                    offset += cell.width
                    i += 1
                prev_end = x + cluster.w
            # Right-overflow repair after rounding.
            overflow = (positions[-1] + st.cells[-1][0].width) - st.x1
            if overflow > 0:
                for j in range(len(positions) - 1, -1, -1):
                    positions[j] -= overflow
                    if j == 0:
                        break
                    gap = positions[j] - (
                        positions[j - 1] + st.cells[j - 1][0].width
                    )
                    if gap >= 0:
                        break
                    overflow = -gap
            for (cell, _gx), x in zip(st.cells, positions):
                self.design.place(cell, x, st.row, validate=False)


def abacus_legalize(design: Design, power_aligned: bool = True) -> AbacusResult:
    """One-call wrapper around :class:`AbacusLegalizer`."""
    return AbacusLegalizer(design, power_aligned).run()
