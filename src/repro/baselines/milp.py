"""Literal mixed-integer formulation of the local legalization problem.

This is the reproduction of the paper's ILP experiment (Section 6): the
MLL call is replaced by constructing and solving an integer program over
the same local region, with the same frozen row assignments and cell
orders, minimizing total displacement.  The paper used lpsolve; we use
HiGHS through :func:`scipy.optimize.milp` (the only ILP solver available
offline), which changes absolute runtimes but not the optimum or the
orders-of-magnitude runtime gap to MLL.

Formulation (everything in site units; M = row width):

* integer ``x_c`` per local cell, bounded by its segments,
* integer ``x_t`` for the target,
* binary ``z_r`` per candidate bottom row of the target (``Σ z_r = 1``),
* binary ``s_{r,c}`` per (candidate row, vertically-overlapping cell):
  1 → target left of ``c``, 0 → ``c`` left of target, big-M gated by
  ``z_r``,
* per-segment order constraints ``x_a + w_a ≤ x_b`` for consecutive
  local cells,
* continuous ``d_c ≥ |x_c − x_c^cur|`` and ``d_t ≥ |x_t − x_t^des|``.

Objective: ``Σ d_c·site_w + d_t·site_w + Σ z_r·|r − y_des|·site_h``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp
from scipy.sparse import csr_matrix

from repro.core.config import LegalizerConfig
from repro.core.legalizer import LegalizationResult, Legalizer
from repro.core.local_region import LocalRegion, extract_local_region
from repro.core.mll import MllResult, MultiRowLocalLegalizer
from repro.db.cell import Cell
from repro.db.design import Design


@dataclass(frozen=True, slots=True)
class MilpSolution:
    """Optimal local solution: new cell positions and target placement."""

    cell_positions: dict[int, int]
    target_x: int
    target_bottom_row: int
    cost_um: float


def _candidate_rows(
    design: Design,
    region: LocalRegion,
    target: Cell,
    power_aligned: bool,
) -> list[int]:
    """Bottom rows where the target could go: all of its rows present in
    the region and (optionally) rail-compatible."""
    rows = set(region.segments)
    out = []
    for r in sorted(rows):
        if any(rr not in rows for rr in range(r, r + target.height)):
            continue
        if power_aligned and not design.row_compatible(target, r):
            continue
        if any(
            region.segments[rr].width < target.width
            for rr in range(r, r + target.height)
        ):
            continue
        out.append(r)
    return out


def solve_local_milp(
    design: Design,
    region: LocalRegion,
    target: Cell,
    desired_x: float,
    desired_y: float,
    power_aligned: bool = True,
    time_limit_s: float | None = None,
) -> MilpSolution | None:
    """Solve the local problem to optimality; ``None`` when infeasible."""
    fp = design.floorplan
    cells = region.cells
    n = len(cells)
    cand = _candidate_rows(design, region, target, power_aligned)
    if not cand:
        return None
    cell_pos = {c.id: i for i, c in enumerate(cells)}

    # Variable layout: x_c (n) | x_t (1) | d_c (n) | d_t (1) | z_r | s_{r,c}
    iz = {r: 2 * n + 2 + k for k, r in enumerate(cand)}
    s_keys: list[tuple[int, int]] = []
    for r in cand:
        t_rows = set(range(r, r + target.height))
        for c in cells:
            if t_rows.intersection(c.rows_spanned()):
                s_keys.append((r, c.id))
    i_s = {key: 2 * n + 2 + len(cand) + k for k, key in enumerate(s_keys)}
    nvar = 2 * n + 2 + len(cand) + len(s_keys)
    M = float(fp.row_width + max(target.width, 1))

    sw, sh = fp.site_width_um, fp.site_height_um
    obj = np.zeros(nvar)
    obj[n + 1 : 2 * n + 1] = sw  # d_c
    obj[2 * n + 1] = sw  # d_t
    for r in cand:
        obj[iz[r]] = abs(r - desired_y) * sh

    lb = np.full(nvar, -np.inf)
    ub = np.full(nvar, np.inf)
    integrality = np.zeros(nvar)
    integrality[: n + 1] = 1  # positions integer
    lo_t, hi_t = math.inf, -math.inf
    for i, c in enumerate(cells):
        xlo, xhi = -math.inf, math.inf
        for rr in c.rows_spanned():
            seg = region.segments[rr]
            xlo = max(xlo, seg.x0) if xlo != -math.inf else seg.x0
            xhi = min(xhi, seg.x1 - c.width)
        lb[i], ub[i] = xlo, xhi
        lb[n + 1 + i] = 0.0
    for r in cand:
        for rr in range(r, r + target.height):
            seg = region.segments[rr]
            lo_t = min(lo_t, seg.x0)
            hi_t = max(hi_t, seg.x1 - target.width)
    lb[n], ub[n] = lo_t, hi_t  # x_t coarse bounds; row gating refines
    lb[2 * n + 1] = 0.0
    for r in cand:
        lb[iz[r]], ub[iz[r]] = 0, 1
        integrality[iz[r]] = 1
    for key in s_keys:
        lb[i_s[key]], ub[i_s[key]] = 0, 1
        integrality[i_s[key]] = 1

    rows_A: list[dict[int, float]] = []
    lbs: list[float] = []
    ubs: list[float] = []

    def add(coeffs: dict[int, float], lo: float, hi: float) -> None:
        rows_A.append(coeffs)
        lbs.append(lo)
        ubs.append(hi)

    # Σ z_r = 1
    add({iz[r]: 1.0 for r in cand}, 1.0, 1.0)

    # Per-segment order constraints.
    for rr, seg in region.segments.items():
        for a, b in zip(seg.cells, seg.cells[1:]):
            ia, ib = cell_pos[a.id], cell_pos[b.id]
            add({ib: 1.0, ia: -1.0}, a.width, math.inf)

    # Target containment per candidate row (big-M gated).
    for r in cand:
        for rr in range(r, r + target.height):
            seg = region.segments[rr]
            # x_t >= seg.x0 - M(1 - z_r)  <=>  x_t - M*z_r >= seg.x0 - M
            add({n: 1.0, iz[r]: -M}, seg.x0 - M, math.inf)
            # x_t + wt <= seg.x1 + M(1 - z_r)
            add({n: 1.0, iz[r]: M}, -math.inf, seg.x1 - target.width + M)

    # Overlap disjunctions.
    for r, cid in s_keys:
        ic = cell_pos[cid]
        isv = i_s[(r, cid)]
        c = cells[ic]
        # target left:  x_t + wt <= x_c + M(1-s) + M(1-z)
        add(
            {n: 1.0, ic: -1.0, isv: M, iz[r]: M},
            -math.inf,
            -target.width + 2 * M,
        )
        # cell left:    x_c + w_c <= x_t + M*s + M(1-z)
        add(
            {ic: 1.0, n: -1.0, isv: -M, iz[r]: M},
            -math.inf,
            -c.width + M,
        )

    # Displacement linearization.
    for i, c in enumerate(cells):
        assert c.x is not None
        add({n + 1 + i: 1.0, i: -1.0}, -c.x, math.inf)  # d >= x - cur
        add({n + 1 + i: 1.0, i: 1.0}, c.x, math.inf)  # d >= cur - x
    add({2 * n + 1: 1.0, n: -1.0}, -desired_x, math.inf)
    add({2 * n + 1: 1.0, n: 1.0}, desired_x, math.inf)

    data, indices, indptr = [], [], [0]
    for coeffs in rows_A:
        for j, v in coeffs.items():
            indices.append(j)
            data.append(v)
        indptr.append(len(indices))
    A = csr_matrix((data, indices, indptr), shape=(len(rows_A), nvar))

    options = {}
    if time_limit_s is not None:
        options["time_limit"] = time_limit_s
    res = milp(
        c=obj,
        constraints=LinearConstraint(A, np.array(lbs), np.array(ubs)),
        integrality=integrality,
        bounds=Bounds(lb, ub),
        options=options,
    )
    if not res.success:
        return None
    x = res.x
    bottom = max(cand, key=lambda r: x[iz[r]])
    return MilpSolution(
        cell_positions={c.id: int(round(x[i])) for i, c in enumerate(cells)},
        target_x=int(round(x[n])),
        target_bottom_row=bottom,
        cost_um=float(res.fun),
    )


class MilpLocalLegalizer(MultiRowLocalLegalizer):
    """Drop-in MLL replacement that solves each local problem as a MILP.

    Plugs into :class:`~repro.core.legalizer.Legalizer` (the driver only
    uses ``try_place``), reproducing the paper's ILP experiment.
    """

    def __init__(
        self,
        design: Design,
        config: LegalizerConfig | None = None,
        time_limit_s: float | None = 30.0,
    ) -> None:
        super().__init__(design, config)
        self.time_limit_s = time_limit_s

    def try_place(self, target: Cell, x: float, y: float) -> MllResult:
        if target.is_placed:
            raise ValueError(f"target {target.name!r} is already placed")
        design = self.design
        region = extract_local_region(
            design, self.window_for(target, x, y), region_id=target.region
        )
        if not region.segments:
            return MllResult(success=False)
        solution = solve_local_milp(
            design,
            region,
            target,
            desired_x=x,
            desired_y=y,
            power_aligned=self.config.power_aligned,
            time_limit_s=self.time_limit_s,
        )
        if solution is None:
            return MllResult(success=False)
        for cell in region.cells:
            design.shift_x(cell, solution.cell_positions[cell.id])
        design.place(
            target,
            solution.target_x,
            solution.target_bottom_row,
            power_aligned=self.config.power_aligned,
            validate=False,
        )
        return MllResult(success=True, num_insertion_points=1, chosen=None)


class MilpLegalizer(Legalizer):
    """Algorithm 1 driving the MILP local solver (the paper's "ILP")."""

    def __init__(
        self,
        design: Design,
        config: LegalizerConfig | None = None,
        time_limit_s: float | None = 30.0,
    ) -> None:
        super().__init__(design, config)
        self.mll = MilpLocalLegalizer(design, self.config, time_limit_s)


def milp_legalize(
    design: Design,
    config: LegalizerConfig | None = None,
    time_limit_s: float | None = 30.0,
) -> LegalizationResult:
    """One-call wrapper around :class:`MilpLegalizer`."""
    return MilpLegalizer(design, config, time_limit_s).run()
