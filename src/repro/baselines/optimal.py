"""The optimal local legalizer — the paper's "ILP" quality reference.

The paper replaces MLL with an ILP solving *exactly the same local
problem*: local cells keep their rows and their relative order per
segment, the target picks gaps and an x, and the total displacement is
minimized.  For that problem, exhaustive search over insertion points
with exact evaluation attains the ILP's optimum:

* The insertion-point enumeration is complete — every legal solution
  inserts the target into some gap combination with a common cutline.
* For a fixed insertion point and target x, the ripple-push realization
  moves each cell the minimum any legal solution must (the push-chain
  inequalities are implied by non-overlap + order), so its displacement
  equals the exact evaluation's convex curve sum.
* Exact evaluation minimizes that sum over x by the median rule.

Hence ``min over insertion points of exact evaluation`` equals the ILP
optimum — which :mod:`repro.baselines.milp` cross-validates with a
literal MILP.  This implementation is what the Table 1 harness uses as
the "ILP" column by default (the literal MILP reproduces the same
numbers at a few hundred times the runtime, just like the paper's
lpsolve did).

Note the paper's own caveat (Section 6): optimal *local* solutions do
not compose into a globally optimal legalization — our approach can even
beat it on some designs, as theirs did on ``fft_1``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import EvaluationMode, LegalizerConfig
from repro.core.legalizer import LegalizationResult, Legalizer
from repro.db.design import Design


class OptimalLegalizer(Legalizer):
    """Algorithm 1 with every local problem solved optimally.

    Identical driver to :class:`~repro.core.legalizer.Legalizer`; the MLL
    evaluation is forced to :data:`EvaluationMode.EXACT`, making each
    local decision optimal for the fixed-row, fixed-order subproblem.
    """

    def __init__(self, design: Design, config: LegalizerConfig | None = None) -> None:
        base = config if config is not None else LegalizerConfig()
        super().__init__(design, replace(base, evaluation=EvaluationMode.EXACT))


def optimal_legalize(
    design: Design, config: LegalizerConfig | None = None
) -> LegalizationResult:
    """One-call wrapper around :class:`OptimalLegalizer`."""
    return OptimalLegalizer(design, config).run()
