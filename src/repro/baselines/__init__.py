"""Baselines the paper compares against or argues about.

* :mod:`repro.baselines.optimal` — the optimal local legalizer: the
  paper's "ILP" quality reference, realized as exhaustive insertion-point
  enumeration with exact evaluation (provably equivalent to the ILP's
  optimum on the same local problem, see the module docstring).
* :mod:`repro.baselines.milp` — the literal mixed-integer formulation of
  the local problem solved with HiGHS via ``scipy.optimize.milp``
  (substituting the paper's lpsolve); used to cross-validate the optimal
  legalizer and to reproduce the ILP runtime blow-up.
* :mod:`repro.baselines.abacus` — the classic Abacus single-row
  legalizer [Spindler et al., ISPD'08], plus the two-step
  "multi-row-cells-as-macros" variant the paper's Section 1 discusses.
* :mod:`repro.baselines.tetris` — a greedy non-displacing legalizer in
  the spirit of Hill's patent [7]: placed cells never move to
  accommodate later ones.
"""

from repro.baselines.abacus import AbacusLegalizer, abacus_legalize
from repro.baselines.milp import (
    MilpLegalizer,
    MilpLocalLegalizer,
    milp_legalize,
    solve_local_milp,
)
from repro.baselines.optimal import OptimalLegalizer, optimal_legalize
from repro.baselines.tetris import TetrisLegalizer, find_nearest_free, tetris_legalize

__all__ = [
    "AbacusLegalizer",
    "MilpLegalizer",
    "MilpLocalLegalizer",
    "OptimalLegalizer",
    "TetrisLegalizer",
    "abacus_legalize",
    "find_nearest_free",
    "milp_legalize",
    "optimal_legalize",
    "solve_local_milp",
    "tetris_legalize",
]
