"""Pluggable rule registry.

A rule is a class with a ``code`` (``"RL1"``), a short ``name``, a
``summary`` for ``--list-rules``, an ``enforced`` scope (the ``repro``
subpackages whose invariants it guards, or ``None`` for everywhere),
and a ``check(ctx)`` generator yielding
:class:`~repro.analysis.diagnostics.Diagnostic` records.

Rules self-register with the :func:`register` decorator at import time;
:mod:`repro.analysis.rules` imports every rule module, so importing
that package once populates the registry.  Third-party or experimental
rules can register the same way without touching the runner.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterable, Iterator, Protocol, Type

from repro.analysis.context import FileContext
from repro.analysis.diagnostics import Diagnostic


class Rule(Protocol):
    """Interface every registered rule must satisfy."""

    code: str
    name: str
    summary: str
    enforced: tuple[str, ...] | None

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Yield findings for one file (already scope-filtered)."""
        ...  # pragma: no cover - protocol body


class BaseRule:
    """Convenience base: diagnostic construction bound to the rule."""

    code: str = "RL?"
    name: str = "unnamed"
    summary: str = ""
    enforced: tuple[str, ...] | None = None

    def diag(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Diagnostic:
        """A :class:`Diagnostic` at *node* carrying this rule's identity."""
        return Diagnostic(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            rule=self.name,
            message=message,
        )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        raise NotImplementedError  # pragma: no cover - abstract

    def applies_to(self, ctx: FileContext) -> bool:
        """Scope filter: unscoped files (fixtures) get every rule."""
        if self.enforced is None or ctx.subpackage is None:
            return True
        return ctx.subpackage in self.enforced


_REGISTRY: dict[str, BaseRule] = {}


def register(cls: Type[BaseRule]) -> Type[BaseRule]:
    """Class decorator adding one instance of *cls* to the registry."""
    inst = cls()
    if inst.code in _REGISTRY:  # pragma: no cover - registration bug
        raise ValueError(f"duplicate rule code {inst.code!r}")
    _REGISTRY[inst.code] = inst
    return cls


def _ensure_loaded() -> None:
    # Deferred so registry import does not cycle with the rule modules.
    import repro.analysis.rules  # noqa: F401


def all_rules() -> list[BaseRule]:
    """Every registered rule, sorted by code."""
    _ensure_loaded()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def known_codes() -> frozenset[str]:
    """The set of valid rule codes (for suppression validation)."""
    _ensure_loaded()
    return frozenset(_REGISTRY) | {"E999"}


def select_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[BaseRule]:
    """Registry subset for ``--select`` / ``--ignore``.

    Unknown codes raise :class:`KeyError` so typos fail loudly instead
    of silently disabling a gate.
    """
    _ensure_loaded()
    rules = all_rules()
    if select is not None:
        wanted = set(select)
        unknown = wanted - set(_REGISTRY)
        if unknown:
            raise KeyError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
        rules = [r for r in rules if r.code in wanted]
    if ignore is not None:
        dropped = set(ignore)
        unknown = dropped - set(_REGISTRY)
        if unknown:
            raise KeyError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
        rules = [r for r in rules if r.code not in dropped]
    return rules


def rules_for(
    ctx: FileContext, rules: Iterable[BaseRule] | None = None
) -> Iterator[BaseRule]:
    """The rules that apply to *ctx* after scope filtering."""
    for rule in all_rules() if rules is None else rules:
        if rule.applies_to(ctx):
            yield rule


# Re-exported decorator-friendly alias used by rule modules.
rule = register

CheckFn = Callable[[FileContext], Iterator[Diagnostic]]
