"""Pluggable rule registry.

A rule is a class with a ``code`` (``"RL1"``), a short ``name``, a
``summary`` for ``--list-rules``, an ``enforced`` scope (the ``repro``
subpackages whose invariants it guards, or ``None`` for everywhere),
and a ``check(ctx)`` generator yielding
:class:`~repro.analysis.diagnostics.Diagnostic` records.

Rules self-register with the :func:`register` decorator at import time;
:mod:`repro.analysis.rules` imports every rule module, so importing
that package once populates the registry.  Third-party or experimental
rules can register the same way without touching the runner.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Protocol, Type

from repro.analysis.context import FileContext
from repro.analysis.diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.callgraph import Program


class Rule(Protocol):
    """Interface every registered rule must satisfy."""

    code: str
    name: str
    summary: str
    enforced: tuple[str, ...] | None

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Yield findings for one file (already scope-filtered)."""
        ...  # pragma: no cover - protocol body


class BaseRule:
    """Convenience base: diagnostic construction bound to the rule."""

    code: str = "RL?"
    name: str = "unnamed"
    summary: str = ""
    enforced: tuple[str, ...] | None = None

    def diag(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Diagnostic:
        """A :class:`Diagnostic` at *node* carrying this rule's identity."""
        return Diagnostic(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            rule=self.name,
            message=message,
        )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        raise NotImplementedError  # pragma: no cover - abstract

    def applies_to(self, ctx: FileContext) -> bool:
        """Scope filter: unscoped files (fixtures) get every rule."""
        if self.enforced is None or ctx.subpackage is None:
            return True
        return ctx.subpackage in self.enforced


class BaseProgramRule:
    """Base for whole-program (interprocedural) rules.

    Program rules see the linked :class:`~repro.analysis.callgraph.Program`
    — symbol table, call graph, and (via
    :mod:`repro.analysis.dataflow`) effect summaries — instead of a
    single file.  They only run under ``repro lint --interprocedural``;
    findings still flow through each file's suppression table, so the
    in-place ``# repro-lint: disable=RL7 -- why`` mechanism works
    unchanged.
    """

    code: str = "RL?"
    name: str = "unnamed"
    summary: str = ""
    enforced: tuple[str, ...] | None = None

    def diag_at(
        self, path: str, line: int, col: int, message: str
    ) -> Diagnostic:
        """A :class:`Diagnostic` at an explicit program location."""
        return Diagnostic(
            path=path,
            line=line,
            col=col,
            code=self.code,
            rule=self.name,
            message=message,
        )

    def check_program(self, program: "Program") -> Iterator[Diagnostic]:
        raise NotImplementedError  # pragma: no cover - abstract


_REGISTRY: dict[str, BaseRule] = {}
_PROGRAM_REGISTRY: dict[str, BaseProgramRule] = {}


def register(cls: Type[BaseRule]) -> Type[BaseRule]:
    """Class decorator adding one instance of *cls* to the registry."""
    inst = cls()
    if inst.code in _REGISTRY:  # pragma: no cover - registration bug
        raise ValueError(f"duplicate rule code {inst.code!r}")
    _REGISTRY[inst.code] = inst
    return cls


def register_program(cls: Type[BaseProgramRule]) -> Type[BaseProgramRule]:
    """Class decorator adding one program rule to the registry."""
    inst = cls()
    if (
        inst.code in _PROGRAM_REGISTRY or inst.code in _REGISTRY
    ):  # pragma: no cover - registration bug
        raise ValueError(f"duplicate rule code {inst.code!r}")
    _PROGRAM_REGISTRY[inst.code] = inst
    return cls


def _ensure_loaded() -> None:
    # Deferred so registry import does not cycle with the rule modules.
    import repro.analysis.rules  # noqa: F401


def all_rules() -> list[BaseRule]:
    """Every registered per-file rule, sorted by code."""
    _ensure_loaded()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def all_program_rules() -> list[BaseProgramRule]:
    """Every registered whole-program rule, sorted by code."""
    _ensure_loaded()
    return [_PROGRAM_REGISTRY[code] for code in sorted(_PROGRAM_REGISTRY)]


def program_codes() -> frozenset[str]:
    """Codes that only fire under ``--interprocedural``."""
    _ensure_loaded()
    return frozenset(_PROGRAM_REGISTRY)


def known_codes() -> frozenset[str]:
    """The set of valid rule codes (for suppression validation)."""
    _ensure_loaded()
    return frozenset(_REGISTRY) | frozenset(_PROGRAM_REGISTRY) | {"E999"}


def _validate_codes(codes: Iterable[str]) -> set[str]:
    wanted = set(codes)
    unknown = wanted - set(_REGISTRY) - set(_PROGRAM_REGISTRY)
    if unknown:
        raise KeyError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
    return wanted


def select_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[BaseRule]:
    """Per-file registry subset for ``--select`` / ``--ignore``.

    Unknown codes raise :class:`KeyError` so typos fail loudly instead
    of silently disabling a gate.  Program-rule codes are *valid* here
    (``--select RL7`` should not be a usage error) but naturally match
    no per-file rule.
    """
    _ensure_loaded()
    rules = all_rules()
    if select is not None:
        wanted = _validate_codes(select)
        rules = [r for r in rules if r.code in wanted]
    if ignore is not None:
        dropped = _validate_codes(ignore)
        rules = [r for r in rules if r.code not in dropped]
    return rules


def select_program_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[BaseProgramRule]:
    """Program-rule subset for ``--select`` / ``--ignore``."""
    _ensure_loaded()
    rules = all_program_rules()
    if select is not None:
        wanted = _validate_codes(select)
        rules = [r for r in rules if r.code in wanted]
    if ignore is not None:
        dropped = _validate_codes(ignore)
        rules = [r for r in rules if r.code not in dropped]
    return rules


def rules_for(
    ctx: FileContext, rules: Iterable[BaseRule] | None = None
) -> Iterator[BaseRule]:
    """The rules that apply to *ctx* after scope filtering."""
    for rule in all_rules() if rules is None else rules:
        if rule.applies_to(ctx):
            yield rule


# Re-exported decorator-friendly alias used by rule modules.
rule = register

CheckFn = Callable[[FileContext], Iterator[Diagnostic]]
