"""Render diagnostics as text (human) or JSON (CI / tooling).

Both reporters receive the *final* diagnostic list — suppressed
findings are already gone, RL0 hygiene findings are already appended —
and a scan summary, so they stay pure functions of their inputs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic

#: JSON schema version, bumped on incompatible shape changes.
JSON_VERSION = 1


@dataclass(slots=True)
class ScanSummary:
    """What one runner invocation looked at."""

    files_scanned: int = 0
    files_failed: int = 0
    rules_run: list[str] = field(default_factory=list)


def counts_by_code(diagnostics: list[Diagnostic]) -> dict[str, int]:
    """``{"RL1": 3, ...}`` in sorted code order."""
    counts: dict[str, int] = {}
    for diag in diagnostics:
        counts[diag.code] = counts.get(diag.code, 0) + 1
    return {code: counts[code] for code in sorted(counts)}


def render_text(
    diagnostics: list[Diagnostic], summary: ScanSummary
) -> str:
    """One line per finding plus a footer; empty-ish when clean."""
    lines = [diag.render() for diag in sorted(diagnostics)]
    if diagnostics:
        per_code = ", ".join(
            f"{code}: {n}" for code, n in counts_by_code(diagnostics).items()
        )
        lines.append(
            f"repro-lint: {len(diagnostics)} finding(s) in "
            f"{summary.files_scanned} file(s) ({per_code})"
        )
    else:
        lines.append(
            f"repro-lint: clean ({summary.files_scanned} file(s), "
            f"{len(summary.rules_run)} rule(s))"
        )
    return "\n".join(lines)


def render_json(
    diagnostics: list[Diagnostic], summary: ScanSummary
) -> str:
    """Stable, sorted JSON document for CI gates and editors."""
    document = {
        "version": JSON_VERSION,
        "tool": "repro-lint",
        "files_scanned": summary.files_scanned,
        "files_failed": summary.files_failed,
        "rules_run": summary.rules_run,
        "summary": counts_by_code(diagnostics),
        "diagnostics": [diag.to_dict() for diag in sorted(diagnostics)],
    }
    return json.dumps(document, indent=2, sort_keys=False)


def _gh_escape_data(text: str) -> str:
    """Escape a workflow-command message body."""
    return (
        text.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
    )


def _gh_escape_prop(text: str) -> str:
    """Escape a workflow-command property value (file=, title=...)."""
    return (
        _gh_escape_data(text).replace(":", "%3A").replace(",", "%2C")
    )


def render_github(
    diagnostics: list[Diagnostic], summary: ScanSummary
) -> str:
    """GitHub Actions ``::error`` workflow commands, one per finding.

    Emitted to stdout inside a job, these annotate the PR diff at the
    exact file/line/column; the footer goes through ``::notice`` so it
    shows up in the job summary without claiming a source location.
    """
    lines = [
        "::error file={file},line={line},col={col},title={title}::{msg}".format(
            file=_gh_escape_prop(diag.path.replace("\\", "/")),
            line=diag.line,
            # Annotation columns are 1-based; diagnostics are 0-based.
            col=diag.col + 1,
            title=_gh_escape_prop(f"{diag.code} {diag.rule}"),
            msg=_gh_escape_data(diag.message),
        )
        for diag in sorted(diagnostics)
    ]
    if diagnostics:
        per_code = ", ".join(
            f"{code}: {n}" for code, n in counts_by_code(diagnostics).items()
        )
        lines.append(
            "::notice title=repro-lint::"
            + _gh_escape_data(
                f"{len(diagnostics)} finding(s) in "
                f"{summary.files_scanned} file(s) ({per_code})"
            )
        )
    else:
        lines.append(
            "::notice title=repro-lint::"
            + _gh_escape_data(
                f"clean ({summary.files_scanned} file(s), "
                f"{len(summary.rules_run)} rule(s))"
            )
        )
    return "\n".join(lines)


#: SARIF spec version emitted by :func:`render_sarif`.
SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/"
    "sarif-schema-2.1.0.json"
)


def _sarif_rules() -> list[dict[str, object]]:
    """Rule metadata for the SARIF driver, registry plus builtins."""
    from repro.analysis.registry import all_program_rules, all_rules

    catalog: list[tuple[str, str, str]] = [
        (
            "RL0",
            "suppression-hygiene",
            "suppressions must carry justifications, name known codes, "
            "and still match a finding",
        ),
        (
            "E999",
            "parse-error",
            "the file could not be parsed",
        ),
    ]
    for rule in all_rules():
        catalog.append((rule.code, rule.name, rule.summary))
    for prule in all_program_rules():
        catalog.append((prule.code, prule.name, prule.summary))
    return [
        {
            "id": code,
            "name": name,
            "shortDescription": {"text": summary},
            "defaultConfiguration": {"level": "error"},
        }
        for code, name, summary in sorted(catalog)
    ]


def _sarif_result(diag: Diagnostic) -> dict[str, object]:
    return {
        "ruleId": diag.code,
        "level": "error",
        "message": {"text": diag.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": diag.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": diag.line,
                        # SARIF columns are 1-based; diagnostics are 0-based.
                        "startColumn": diag.col + 1,
                    },
                }
            }
        ],
    }


def render_sarif(
    diagnostics: list[Diagnostic], summary: ScanSummary
) -> str:
    """SARIF 2.1.0 document for GitHub code scanning upload."""
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": f"{JSON_VERSION}.0.0",
                        "rules": _sarif_rules(),
                    }
                },
                "results": [
                    _sarif_result(d) for d in sorted(diagnostics)
                ],
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=False)
