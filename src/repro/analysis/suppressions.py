"""Suppression comments with mandatory justification.

Syntax (trailing or standalone)::

    seg.cells.sort(key=...)  # repro-lint: disable=RL1 -- scratch list, not DB state

    # repro-lint: disable=RL2,RL3 -- replay is order-insensitive here
    for item in workset: ...

A trailing comment suppresses matching diagnostics on its own line; a
standalone comment suppresses them on the next code line.  The ``--``
justification is **required**: a suppression without one does not
suppress anything and is itself reported (RL0), as are suppressions
naming unknown rule codes and suppressions that matched no diagnostic
(stale suppressions rot into false documentation — they must be
removed when the underlying code is fixed).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic

#: Code used for suppression-hygiene findings.
HYGIENE_CODE = "RL0"
HYGIENE_NAME = "suppression-hygiene"

_PATTERN = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<codes>[A-Za-z0-9,\s]+?)"
    r"(?:\s*--\s*(?P<why>.*\S))?\s*$"
)


@dataclass(slots=True)
class Suppression:
    """One parsed ``# repro-lint: disable=...`` comment."""

    comment_line: int
    """Line the comment sits on (where hygiene findings point)."""

    target_line: int
    """Line whose diagnostics it suppresses."""

    codes: tuple[str, ...]
    justification: str | None
    used: bool = False

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (the incremental cache persists these so warm
        runs can redo suppression filtering without re-tokenizing)."""
        return {
            "comment_line": self.comment_line,
            "target_line": self.target_line,
            "codes": list(self.codes),
            "justification": self.justification,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, object]) -> "Suppression":
        return cls(
            comment_line=int(doc["comment_line"]),  # type: ignore[arg-type]
            target_line=int(doc["target_line"]),  # type: ignore[arg-type]
            codes=tuple(str(c) for c in doc["codes"]),  # type: ignore[union-attr]
            justification=(
                None
                if doc["justification"] is None
                else str(doc["justification"])
            ),
        )


@dataclass(slots=True)
class SuppressionTable:
    """All suppressions of one file, with usage tracking."""

    path: str
    suppressions: list[Suppression] = field(default_factory=list)

    @classmethod
    def from_source(cls, path: str, source: str) -> "SuppressionTable":
        """Collect suppression comments via the tokenizer.

        Tokenizing (rather than regexing raw lines) means ``#`` inside
        string literals can never be misread as a comment.
        """
        table = cls(path=path)
        lines = source.splitlines()
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(source).readline)
            )
        except (tokenize.TokenError, IndentationError):
            return table  # unparseable files are reported as E999 anyway
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PATTERN.search(tok.string)
            if match is None:
                continue
            codes = tuple(
                c.strip() for c in match.group("codes").split(",") if c.strip()
            )
            line = tok.start[0]
            standalone = lines[line - 1][: tok.start[1]].strip() == ""
            target = _next_code_line(lines, line) if standalone else line
            table.suppressions.append(
                Suppression(
                    comment_line=line,
                    target_line=target,
                    codes=codes,
                    justification=match.group("why"),
                )
            )
        return table

    # ------------------------------------------------------------------
    def filter(self, diagnostics: list[Diagnostic]) -> list[Diagnostic]:
        """Drop suppressed diagnostics, marking suppressions as used.

        Only suppressions with a justification suppress anything; the
        hygiene pass flags the justification-less ones separately.
        """
        active: dict[int, list[Suppression]] = {}
        for sup in self.suppressions:
            if sup.justification:
                active.setdefault(sup.target_line, []).append(sup)
        kept: list[Diagnostic] = []
        for diag in diagnostics:
            hit = False
            for sup in active.get(diag.line, ()):
                if diag.code in sup.codes:
                    sup.used = True
                    hit = True
            if not hit:
                kept.append(diag)
        return kept

    def hygiene(
        self,
        known_codes: frozenset[str],
        run_codes: frozenset[str] | None = None,
    ) -> list[Diagnostic]:
        """RL0 findings: bad justifications, unknown codes, stale entries.

        *run_codes* is the set of rule codes that actually executed this
        pass.  A suppression naming a code that did **not** run (for
        example an RL7 suppression during a non-``--interprocedural``
        run, or anything outside ``--select``) cannot be judged stale —
        its rule never had the chance to produce the finding it guards.
        """
        out: list[Diagnostic] = []

        def rl0(line: int, message: str) -> Diagnostic:
            return Diagnostic(
                path=self.path,
                line=line,
                col=0,
                code=HYGIENE_CODE,
                rule=HYGIENE_NAME,
                message=message,
            )

        for sup in self.suppressions:
            if not sup.justification:
                out.append(
                    rl0(
                        sup.comment_line,
                        "suppression without justification: append "
                        "'-- <why this finding is a false positive>' "
                        "(unjustified suppressions are inert)",
                    )
                )
                continue
            unknown = [c for c in sup.codes if c not in known_codes]
            if unknown:
                out.append(
                    rl0(
                        sup.comment_line,
                        f"suppression names unknown rule code(s) "
                        f"{', '.join(unknown)}",
                    )
                )
            elif run_codes is not None and any(
                c not in run_codes for c in sup.codes
            ):
                continue  # a named rule did not run: staleness unknowable
            elif not sup.used:
                out.append(
                    rl0(
                        sup.comment_line,
                        f"stale suppression: no {'/'.join(sup.codes)} "
                        f"diagnostic on line {sup.target_line} — remove it",
                    )
                )
        return out


def _next_code_line(lines: list[str], after: int) -> int:
    """First line past *after* that holds code (not blank, not comment)."""
    for i in range(after, len(lines)):
        stripped = lines[i].strip()
        if stripped and not stripped.startswith("#"):
            return i + 1
    return after + 1
