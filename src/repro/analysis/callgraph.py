"""Whole-program symbol table and call graph.

PR 4's rules are pure functions of one file's AST; the invariants they
guard are not.  A helper that mutates the :class:`~repro.db.design.
Design` two calls deep, or a closure shipped to a worker process, is
invisible to any per-file rule.  This module builds the whole-program
view the interprocedural rules (RL6-RL8) and the effect inference
(:mod:`repro.analysis.dataflow`) run on:

* :class:`SymbolTable` — every function, method and class defined in
  the analyzed tree, keyed by *qualified name* (``repro.db.design.
  Design.place``), plus per-module import aliases, module-level
  mutable globals, and light type bindings (parameter annotations,
  ``Class(...)`` constructor assignments, ``self.attr`` types
  harvested from ``__init__``).
* :class:`CallGraph` — one :class:`CallSite` per syntactic call, with
  the callee resolved through the symbol table where a static name
  chain permits (dotted names, ``self.``/``cls.`` methods, annotated
  receivers, import aliases, and a unique-bare-name fallback).  Call
  sites record whether they sit lexically inside a ``with
  Transaction(...)`` block — the bit RL7's protection propagation
  consumes.
* :class:`Program` — the bundle (contexts + table + graph) every
  program rule receives, with reachability queries and ``--dot`` /
  ``--json`` exports behind ``repro callgraph``.

Qualified names follow CPython's ``__qualname__`` rules (nested
functions get ``outer.<locals>.inner``) so the runtime sanitizer
(:mod:`repro.testing.sanitizer`) can map live stack frames back onto
static summaries frame-for-frame.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.analysis.context import FileContext, SourceError, ancestors

#: Receiver-class names whose methods we never try to resolve through
#: the unique-bare-name fallback (too generic to be meaningful).
_AMBIGUOUS_METHOD_NAMES = frozenset(
    {"run", "get", "add", "update", "pop", "append", "close", "open",
     "merge", "check", "next", "send", "read", "write", "copy"}
)

_FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


def module_name_of(path: str) -> str:
    """Dotted module name of *path*.

    ``src/repro/db/design.py`` → ``"repro.db.design"``; a file outside
    any ``repro`` package keeps its stem (fixtures form one-file
    modules of their own).
    """
    parts = path.replace("\\", "/").split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            mods = list(parts[i:])
            mods[-1] = mods[-1][: -len(".py")]
            if mods[-1] == "__init__":
                mods.pop()
            return ".".join(mods)
    return parts[-1][: -len(".py")] if parts[-1].endswith(".py") else parts[-1]


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------
@dataclass(slots=True)
class FunctionInfo:
    """One function or method definition."""

    qname: str
    """Fully qualified: ``module.Class.method`` / ``module.fn`` /
    ``module.outer.<locals>.inner`` (CPython qualname rules)."""

    module: str
    path: str
    lineno: int
    name: str
    class_qname: str | None
    """Qualified name of the enclosing class for methods, else None."""

    nested: bool
    """True for functions defined inside another function (closures)."""

    node: _FunctionNode = field(repr=False)


@dataclass(slots=True)
class ClassInfo:
    """One class definition, with its method map and mutable attrs."""

    qname: str
    module: str
    path: str
    lineno: int
    name: str
    bases: tuple[str, ...]
    """Base-class dotted names as written (resolved lazily)."""

    methods: dict[str, str] = field(default_factory=dict)
    """method name → function qname."""

    mutable_attrs: dict[str, int] = field(default_factory=dict)
    """Class-level mutable container attributes → definition line."""

    attr_types: dict[str, str] = field(default_factory=dict)
    """``self.attr`` → class qname, harvested from annotated
    assignments and constructor calls in method bodies."""


@dataclass(slots=True)
class GlobalVar:
    """A module-level binding (RL8 cares about the mutable ones)."""

    module: str
    name: str
    path: str
    lineno: int
    mutable: bool


@dataclass(slots=True)
class CallSite:
    """One syntactic call, with its resolution (when possible)."""

    caller: str
    """Qualified name of the enclosing function (``module.<module>``
    for module-level calls)."""

    callee: str | None
    """Qualified name of the resolved target, else ``None``."""

    raw: str
    """The call as written (dotted name or ``<dynamic>``)."""

    path: str
    lineno: int
    col: int
    in_transaction: bool
    """Lexically inside ``with Transaction(...)`` / ``.transaction()``."""

    node: ast.Call = field(repr=False)


# ----------------------------------------------------------------------
# Mutable-container syntax shared with RL8
# ----------------------------------------------------------------------
_MUTABLE_CTORS = frozenset(
    {"dict", "list", "set", "defaultdict", "OrderedDict", "Counter", "deque"}
)


def is_mutable_container_expr(node: ast.expr) -> bool:
    """Syntactically a mutable container: display, comp, or ctor call."""
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                         ast.SetComp, ast.DictComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_CTORS
    return False


def _is_transaction_ctx(expr: ast.expr) -> bool:
    """``Transaction(...)`` or ``<x>.transaction()`` context expression."""
    if not isinstance(expr, ast.Call):
        return False
    func = expr.func
    if isinstance(func, ast.Name) and func.id == "Transaction":
        return True
    return isinstance(func, ast.Attribute) and func.attr in (
        "Transaction", "transaction",
    )


def inside_transaction(node: ast.AST) -> bool:
    """Is *node* lexically inside a ``with Transaction(...)`` block?"""
    for anc in ancestors(node):
        if isinstance(anc, ast.With):
            for item in anc.items:
                if _is_transaction_ctx(item.context_expr):
                    return True
    return False


def own_nodes(func_node: _FunctionNode) -> Iterator[ast.AST]:
    """Every node of *func_node*'s body, excluding nested ``def``
    subtrees (they link under their own qualified names).  Lambdas and
    comprehensions stay with their enclosing function, matching how
    the runtime sanitizer attributes their stack frames."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(func_node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    return ".".join(reversed(parts))


# ----------------------------------------------------------------------
# Symbol table
# ----------------------------------------------------------------------
class SymbolTable:
    """Definitions, imports and light type bindings of a program."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.globals: dict[tuple[str, str], GlobalVar] = {}
        """(module, name) → module-level binding."""
        self.module_defs: dict[str, dict[str, str]] = {}
        """module → top-level name → qname (functions and classes)."""
        self.imports: dict[str, dict[str, str]] = {}
        """module → alias → imported dotted target."""
        self._by_bare_name: dict[str, list[str]] = {}
        self._class_by_name: dict[str, list[str]] = {}

    # ------------------------------------------------------------------
    def add_file(self, ctx: FileContext) -> None:
        """Index every definition of one parsed file."""
        module = module_name_of(ctx.path)
        defs = self.module_defs.setdefault(module, {})
        imports = self.imports.setdefault(module, {})
        self._index_imports(ctx.tree, imports)
        self._index_scope(ctx, ctx.tree, module, prefix=module,
                          class_qname=None, nested=False, defs=defs)
        self._index_globals(ctx, module)

    def _index_imports(
        self, tree: ast.Module, imports: dict[str, str]
    ) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def _index_scope(
        self,
        ctx: FileContext,
        scope: ast.AST,
        module: str,
        prefix: str,
        class_qname: str | None,
        nested: bool,
        defs: dict[str, str] | None,
    ) -> None:
        for stmt in ast.iter_child_nodes(scope):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{prefix}.{stmt.name}"
                info = FunctionInfo(
                    qname=qname,
                    module=module,
                    path=ctx.path,
                    lineno=stmt.lineno,
                    name=stmt.name,
                    class_qname=class_qname,
                    nested=nested,
                    node=stmt,
                )
                self.functions[qname] = info
                self._by_bare_name.setdefault(stmt.name, []).append(qname)
                if defs is not None:
                    defs[stmt.name] = qname
                if class_qname is not None:
                    self.classes[class_qname].methods[stmt.name] = qname
                self._index_scope(
                    ctx, stmt, module, prefix=f"{qname}.<locals>",
                    class_qname=None, nested=True, defs=None,
                )
            elif isinstance(stmt, ast.ClassDef):
                qname = f"{prefix}.{stmt.name}"
                bases = tuple(
                    b for b in (dotted(base) for base in stmt.bases)
                    if b is not None
                )
                cls = ClassInfo(
                    qname=qname,
                    module=module,
                    path=ctx.path,
                    lineno=stmt.lineno,
                    name=stmt.name,
                    bases=bases,
                )
                self.classes[qname] = cls
                self._class_by_name.setdefault(stmt.name, []).append(qname)
                if defs is not None:
                    defs[stmt.name] = qname
                self._index_class_body(ctx, stmt, module, cls)
            else:
                # Other statements may still nest defs (e.g. under if
                # TYPE_CHECKING); index them at the same prefix.
                if isinstance(stmt, (ast.If, ast.Try, ast.With)):
                    self._index_scope(
                        ctx, stmt, module, prefix=prefix,
                        class_qname=class_qname, nested=nested, defs=defs,
                    )

    def _index_class_body(
        self, ctx: FileContext, node: ast.ClassDef, module: str,
        cls: ClassInfo,
    ) -> None:
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                pass  # handled by the recursive call below
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and (
                        is_mutable_container_expr(stmt.value)
                    ):
                        cls.mutable_attrs[target.id] = stmt.lineno
            elif isinstance(stmt, ast.AnnAssign):
                if (
                    isinstance(stmt.target, ast.Name)
                    and stmt.value is not None
                    and is_mutable_container_expr(stmt.value)
                ):
                    cls.mutable_attrs[stmt.target.id] = stmt.lineno
        self._index_scope(
            ctx, node, module, prefix=cls.qname, class_qname=cls.qname,
            nested=False, defs=None,
        )
        self._harvest_attr_types(cls)

    def _index_globals(self, ctx: FileContext, module: str) -> None:
        for stmt in ctx.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = list(stmt.targets), stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if isinstance(target, ast.Name) and value is not None:
                    self.globals[(module, target.id)] = GlobalVar(
                        module=module,
                        name=target.id,
                        path=ctx.path,
                        lineno=stmt.lineno,
                        mutable=is_mutable_container_expr(value),
                    )

    def _harvest_attr_types(self, cls: ClassInfo) -> None:
        """``self.attr`` class-name bindings from the method bodies."""
        for mname in sorted(cls.methods):
            info = self.functions[cls.methods[mname]]
            param_types = self._param_annotations(info.node)
            for node in ast.walk(info.node):
                target: ast.expr | None = None
                value: ast.expr | None = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                    if node.annotation is not None:
                        tname = _annotation_class_name(node.annotation)
                        if (
                            tname is not None
                            and isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            cls.attr_types.setdefault(target.attr, tname)
                            continue
                if (
                    target is None
                    or value is None
                    or not isinstance(target, ast.Attribute)
                    or not isinstance(target.value, ast.Name)
                    or target.value.id != "self"
                ):
                    continue
                tname = _class_of_expr(value, param_types)
                if tname is not None:
                    cls.attr_types.setdefault(target.attr, tname)

    @staticmethod
    def _param_annotations(node: _FunctionNode) -> dict[str, str]:
        out: dict[str, str] = {}
        args = node.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            tname = _annotation_class_name(arg.annotation)
            if tname is not None:
                out[arg.arg] = tname
        return out

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def resolve_class(self, name: str, module: str) -> ClassInfo | None:
        """A class by local/dotted/imported name, seen from *module*."""
        qname = self.resolve_name(name, module)
        if qname is not None and qname in self.classes:
            return self.classes[qname]
        bare = name.rsplit(".", 1)[-1]
        candidates = self._class_by_name.get(bare, [])
        if len(candidates) == 1:
            return self.classes[candidates[0]]
        return None

    def resolve_name(self, name: str, module: str) -> str | None:
        """Resolve a (possibly dotted) name to a definition qname.

        Follows local definitions first, then import aliases, then one
        hop of package re-export (``from repro.engine import
        legalize_sharded`` where the package ``__init__`` itself
        imports the symbol from its defining module).
        """
        if name in self.functions or name in self.classes:
            return name
        head, _, rest = name.partition(".")
        defs = self.module_defs.get(module, {})
        imports = self.imports.get(module, {})
        target = defs.get(head) or imports.get(head)
        if target is None:
            return None
        for _hop in range(3):
            full = f"{target}.{rest}" if rest else target
            if full in self.functions or full in self.classes:
                return full
            # The target may be a module/package whose namespace holds
            # the rest of the chain (a def or a re-exporting import).
            tail_head, _, tail_rest = rest.partition(".") if rest else (
                "", "", ""
            )
            if not tail_head:
                # Bare target that is itself a re-exported symbol:
                # split at the last dot and follow the defining module.
                if "." not in target:
                    return None
                mod, attr = target.rsplit(".", 1)
                hop = self.module_defs.get(mod, {}).get(attr) or (
                    self.imports.get(mod, {}).get(attr)
                )
                if hop is None or hop == target:
                    return None
                target = hop
                continue
            next_defs = self.module_defs.get(target, {})
            next_imports = self.imports.get(target, {})
            hop = next_defs.get(tail_head) or next_imports.get(tail_head)
            if hop is None:
                return None
            target, rest = hop, tail_rest
        return None

    def lookup_method(self, cls: ClassInfo, name: str) -> str | None:
        """A method qname on *cls* or (by name) its static base chain."""
        seen: list[str] = []
        stack = [cls]
        while stack:
            cur = stack.pop(0)
            if cur.qname in seen:
                continue
            seen.append(cur.qname)
            if name in cur.methods:
                return cur.methods[name]
            for base in cur.bases:
                resolved = self.resolve_class(base, cur.module)
                if resolved is not None:
                    stack.append(resolved)
        return None

    def unique_function(self, bare_name: str) -> str | None:
        """The only function of that bare name in the program, if any."""
        if bare_name in _AMBIGUOUS_METHOD_NAMES:
            return None
        candidates = self._by_bare_name.get(bare_name, [])
        return candidates[0] if len(candidates) == 1 else None


def _annotation_class_name(node: ast.expr | None) -> str | None:
    """The class named by a simple annotation (``Design``, ``"Design"``,
    ``Design | None``), else ``None``."""
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return dotted(node)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        head = node.value.split("|", 1)[0].strip()
        return head.split("[", 1)[0].strip() or None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _annotation_class_name(node.left)
        return left if left not in (None, "None") else (
            _annotation_class_name(node.right)
        )
    if isinstance(node, ast.Subscript):
        # Optional[Design] / "Optional[Design]" style
        if isinstance(node.value, ast.Name) and node.value.id == "Optional":
            return _annotation_class_name(node.slice)
    return None


def _class_of_expr(
    value: ast.expr, param_types: dict[str, str]
) -> str | None:
    """Class name constructed/forwarded by *value*, else ``None``."""
    if isinstance(value, ast.Call):
        name = dotted(value.func)
        if name is not None and name.rsplit(".", 1)[-1][:1].isupper():
            return name
        return None
    if isinstance(value, ast.Name):
        return param_types.get(value.id)
    return None


# ----------------------------------------------------------------------
# Call graph
# ----------------------------------------------------------------------
class CallGraph:
    """Resolved call edges plus reachability queries."""

    def __init__(self) -> None:
        self.sites: list[CallSite] = []
        self.out_edges: dict[str, list[CallSite]] = {}
        self.in_edges: dict[str, list[CallSite]] = {}
        self.value_refs: dict[str, list[tuple[str, int]]] = {}
        """qname → (path, line) of non-call references (callbacks)."""

    def add(self, site: CallSite) -> None:
        self.sites.append(site)
        self.out_edges.setdefault(site.caller, []).append(site)
        if site.callee is not None:
            self.in_edges.setdefault(site.callee, []).append(site)

    def add_value_ref(self, qname: str, path: str, lineno: int) -> None:
        self.value_refs.setdefault(qname, []).append((path, lineno))

    # ------------------------------------------------------------------
    def callees_of(self, qname: str) -> list[str]:
        """Resolved callee qnames, deduplicated, in first-seen order."""
        out: list[str] = []
        for site in self.out_edges.get(qname, []):
            if site.callee is not None and site.callee not in out:
                out.append(site.callee)
        return out

    def callers_of(self, qname: str) -> list[str]:
        out: list[str] = []
        for site in self.in_edges.get(qname, []):
            if site.caller not in out:
                out.append(site.caller)
        return out

    def reachable_from(self, roots: Sequence[str]) -> list[str]:
        """Transitive closure over resolved edges (roots included)."""
        seen: list[str] = []
        seen_set: set[str] = set()
        queue = list(roots)
        while queue:
            cur = queue.pop(0)
            if cur in seen_set:
                continue
            seen_set.add(cur)
            seen.append(cur)
            queue.extend(self.callees_of(cur))
        return seen

    def is_root(self, qname: str) -> bool:
        """No in-edges and never referenced as a value (callback)."""
        return qname not in self.in_edges and qname not in self.value_refs


# ----------------------------------------------------------------------
# The program bundle
# ----------------------------------------------------------------------
class Program:
    """Parsed files + symbol table + call graph: the unit program
    rules and effect inference operate on."""

    def __init__(self) -> None:
        self.contexts: dict[str, FileContext] = {}
        self.table = SymbolTable()
        self.graph = CallGraph()

    @classmethod
    def build(cls, contexts: Sequence[FileContext]) -> "Program":
        program = cls()
        for ctx in contexts:
            program.contexts[ctx.path] = ctx
            program.table.add_file(ctx)
        for ctx in contexts:
            program._link_file(ctx)
        return program

    @classmethod
    def from_paths(cls, paths: Sequence[str]) -> "Program":
        """Parse and link *paths*, skipping unparseable files."""
        contexts: list[FileContext] = []
        for path in paths:
            try:
                contexts.append(FileContext.from_file(path))
            except SourceError:
                continue  # already surfaced as E999 by the runner
        return cls.build(contexts)

    # ------------------------------------------------------------------
    # Linking
    # ------------------------------------------------------------------
    def _link_file(self, ctx: FileContext) -> None:
        module = module_name_of(ctx.path)
        module_qname = f"{module}.<module>"
        for func_qname, info in sorted(self.table.functions.items()):
            if info.path != ctx.path:
                continue
            self._link_scope(ctx, info.node, func_qname, module, info)
        # Module-level calls and callback references (outside any def).
        for node in self._toplevel_nodes(ctx.tree):
            if isinstance(node, ast.Call):
                self._link_call(ctx, node, module_qname, module, None)
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Load
            ):
                self._link_value_ref(ctx, node, module)

    def _toplevel_nodes(self, tree: ast.Module) -> Iterator[ast.AST]:
        stack: list[ast.AST] = list(ast.iter_child_nodes(tree))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Decorators and defaults evaluate at module scope.
                stack.extend(node.decorator_list)
                stack.extend(node.args.defaults)
                stack.extend(
                    d for d in node.args.kw_defaults if d is not None
                )
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _link_scope(
        self,
        ctx: FileContext,
        func_node: _FunctionNode,
        caller: str,
        module: str,
        info: FunctionInfo,
    ) -> None:
        local_types = self._local_types(func_node, module, info)
        for node in own_nodes(func_node):
            if isinstance(node, ast.Call):
                self._link_call(ctx, node, caller, module, local_types)
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Load
            ):
                self._link_value_ref(ctx, node, module)

    def _link_value_ref(
        self, ctx: FileContext, node: ast.Name, module: str
    ) -> None:
        """A bare Name that is not the callee of a call: a potential
        callback reference (``set_defaults(func=_cmd_run)``)."""
        from repro.analysis.context import parent_of

        parent = parent_of(node)
        if isinstance(parent, ast.Call) and parent.func is node:
            return  # it IS the callee; the call edge covers it
        qname = self.table.resolve_name(node.id, module)
        if qname is not None and qname in self.table.functions:
            self.graph.add_value_ref(qname, ctx.path, node.lineno)

    def _local_types(
        self, func_node: _FunctionNode, module: str, info: FunctionInfo
    ) -> dict[str, str]:
        """Name → class-name bindings visible inside *func_node*."""
        types = SymbolTable._param_annotations(func_node)
        for node in ast.walk(func_node):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target = node.target
                value = node.value
                tname = _annotation_class_name(node.annotation)
                if tname is not None and isinstance(target, ast.Name):
                    types.setdefault(target.id, tname)
                    continue
            elif isinstance(node, ast.With):
                for item in node.items:
                    if (
                        isinstance(item.optional_vars, ast.Name)
                        and isinstance(item.context_expr, ast.Call)
                    ):
                        tname = _class_of_expr(item.context_expr, types)
                        if tname is not None:
                            types.setdefault(item.optional_vars.id, tname)
                continue
            if target is None or value is None:
                continue
            if isinstance(target, ast.Name):
                tname = _class_of_expr(value, types)
                if tname is not None:
                    types.setdefault(target.id, tname)
        return types

    # ------------------------------------------------------------------
    def _link_call(
        self,
        ctx: FileContext,
        node: ast.Call,
        caller: str,
        module: str,
        local_types: dict[str, str] | None,
    ) -> None:
        raw = dotted(node.func) or "<dynamic>"
        callee = self._resolve_callee(node, caller, module, local_types)
        self.graph.add(
            CallSite(
                caller=caller,
                callee=callee,
                raw=raw,
                path=ctx.path,
                lineno=node.lineno,
                col=node.col_offset,
                in_transaction=inside_transaction(node),
                node=node,
            )
        )

    def _resolve_callee(
        self,
        node: ast.Call,
        caller: str,
        module: str,
        local_types: dict[str, str] | None,
    ) -> str | None:
        func = node.func
        caller_info = self.table.functions.get(caller)
        # Plain name: nested def, module def, or import.
        if isinstance(func, ast.Name):
            if caller_info is not None:
                nested = f"{caller}.<locals>.{func.id}"
                if nested in self.table.functions:
                    return nested
            qname = self.table.resolve_name(func.id, module)
            if qname is None:
                return None
            return self._constructor_of(qname) or qname
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        base = func.value
        # self.meth() / cls.meth() — `self` is also honored inside
        # functions nested in a method (the closure closes over it).
        if isinstance(base, ast.Name) and base.id in ("self", "cls"):
            cls = self._self_class_of(caller_info)
            if cls is not None:
                resolved = self.table.lookup_method(cls, attr)
                if resolved is not None:
                    return resolved
        # mod.fn() / pkg.mod.fn() / ClassName.method(...)
        base_dotted = dotted(base)
        if base_dotted is not None:
            qname = self.table.resolve_name(f"{base_dotted}.{attr}", module)
            if qname is not None and qname in self.table.functions:
                return qname
        # typed receiver: parameter annotation / constructor assignment
        type_name: str | None = None
        if isinstance(base, ast.Name) and local_types is not None:
            type_name = local_types.get(base.id)
        elif isinstance(base, ast.Call):
            # chained constructor call: ``Legalizer(design, cfg).run()``
            type_name = _class_of_expr(base, local_types or {})
        elif (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
        ):
            cls = self._self_class_of(caller_info)
            if cls is not None:
                type_name = cls.attr_types.get(base.attr)
        if type_name is not None:
            receiver = self.table.resolve_class(type_name, module)
            if receiver is not None:
                resolved = self.table.lookup_method(receiver, attr)
                if resolved is not None:
                    return resolved
        # Unique-bare-name fallback (skipped for generic names).
        return self.table.unique_function(attr)

    def _self_class_of(
        self, info: FunctionInfo | None
    ) -> ClassInfo | None:
        """The class ``self`` names in *info*'s body.

        For a method that is its enclosing class; for a function
        nested inside a method it is the method's class (the closure
        closes over the method's ``self``), unless a nested def along
        the way re-binds ``self`` as its own parameter."""
        while info is not None:
            if info.class_qname is not None:
                return self.table.classes.get(info.class_qname)
            if not info.nested:
                return None
            args = info.node.args
            if any(
                a.arg == "self"
                for a in (
                    list(args.posonlyargs)
                    + list(args.args)
                    + list(args.kwonlyargs)
                )
            ):
                return None  # the closure re-binds ``self``
            qname = info.qname.rsplit(".<locals>.", 1)[0]
            info = self.table.functions.get(qname)
        return None

    def _constructor_of(self, qname: str) -> str | None:
        """``Class(...)`` resolves to ``Class.__init__`` when defined."""
        cls = self.table.classes.get(qname)
        if cls is None:
            return None
        return self.table.lookup_method(cls, "__init__") or qname

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def to_json(self, effects: "dict[str, object] | None" = None) -> str:
        """Stable JSON document of nodes and resolved edges."""
        nodes = [
            {
                "qname": info.qname,
                "path": info.path,
                "line": info.lineno,
                "class": info.class_qname,
                "nested": info.nested,
            }
            for _, info in sorted(self.table.functions.items())
        ]
        if effects is not None:
            by_qname = {n["qname"]: n for n in nodes}
            for qname in sorted(effects):
                summary = effects[qname]
                if qname in by_qname:
                    by_qname[qname]["effects"] = summary
        edges = sorted(
            {
                (site.caller, site.callee)
                for site in self.graph.sites
                if site.callee is not None
            }
        )
        document = {
            "version": 1,
            "tool": "repro-callgraph",
            "functions": nodes,
            "edges": [{"caller": c, "callee": e} for c, e in edges],
        }
        return json.dumps(document, indent=2)

    def to_dot(self) -> str:
        """Graphviz export of the resolved edges."""
        lines = ["digraph callgraph {", "  rankdir=LR;", "  node [shape=box];"]
        edges = sorted(
            {
                (site.caller, site.callee)
                for site in self.graph.sites
                if site.callee is not None
            }
        )
        names: list[str] = []
        for caller, callee in edges:
            for name in (caller, callee):
                if name not in names:
                    names.append(name)
        for name in sorted(names):
            lines.append(f'  "{name}";')
        for caller, callee in edges:
            lines.append(f'  "{caller}" -> "{callee}";')
        lines.append("}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# ``repro callgraph`` CLI
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro callgraph",
        description=(
            "whole-program call graph over the repro tree "
            "(symbol table + resolved call edges)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--dot", action="store_true",
        help="emit Graphviz DOT instead of JSON",
    )
    parser.add_argument(
        "--json", dest="json_out", action="store_true",
        help="emit JSON (the default)",
    )
    parser.add_argument(
        "--effects", action="store_true",
        help="annotate each function with its inferred effect summary "
             "(JSON output only)",
    )
    return parser


def run(argv: Sequence[str] | None = None) -> int:
    """The ``repro callgraph`` entry point."""
    args = build_parser().parse_args(argv)
    from repro.analysis.runner import discover_files

    try:
        files = discover_files(args.paths)
    except FileNotFoundError as exc:
        print(f"repro-callgraph: error: {exc}", file=sys.stderr)
        return 2
    program = Program.from_paths(files)
    if args.dot:
        print(program.to_dot())
        return 0
    effects: dict[str, object] | None = None
    if args.effects:
        from repro.analysis.dataflow import infer_effects

        summaries = infer_effects(program)
        effects = {
            qname: {
                "local": sorted(summary.local),
                "transitive": sorted(summary.transitive),
            }
            for qname, summary in sorted(summaries.items())
        }
    print(program.to_json(effects=effects))
    return 0
