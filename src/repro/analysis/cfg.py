"""Intraprocedural control-flow graphs and the flow-rule scaffolding.

RL1-RL11 reason about *what* a function touches — calls, effects,
locksets — but are flow-insensitive inside a function body: they cannot
prove "this value was validated before reaching this sink" or "this
handle is closed on every path".  This module adds the missing layer:

* :class:`CFG` — basic blocks over one function body, with branch
  (``true``/``false``), loop back-edge, ``try``/``except``/``finally``,
  ``with``, and exception edges (any statement containing a call,
  ``raise``, ``assert`` or ``await`` may transfer control to the
  innermost handler, the pending ``finally``, or the synthetic
  exceptional exit).
* dominators and post-dominators (iterative set intersection), back
  edges and natural loops on top of them.
* a generic forward/backward worklist dataflow solver the flow rules
  (RL12 taint, RL13 typestate, RL14 hot-path) instantiate.

Precision notes, chosen deliberately:

* ``finally`` blocks are built once (not duplicated per continuation);
  their out-edges are the union of the continuations actually routed
  into them (``normal``/``exc``/``return``/``break``/``continue``), so
  a path that *merges* through a ``finally`` may mix continuations.
  May-analyses (leak, taint) stay sound: every real path exists.
* A ``try`` whose handlers include a bare ``except`` /
  ``except Exception`` / ``except BaseException`` is treated as
  catching everything; narrower handler lists let the exception edge
  continue outward.
* Statement granularity: compound statements (``if``/``while``/
  ``for``/``with``/``try``/``match``) anchor in the block that
  evaluates their header; their bodies get blocks of their own.  Every
  ``ast.stmt`` of the function body maps to exactly one block.

The model version below is mixed into the interprocedural cache key
(:func:`repro.analysis.cache.program_key`) so cached program results
self-invalidate when CFG construction or flow-rule semantics change.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, TypeVar

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.callgraph import Program

#: Bumped whenever CFG construction or a flow rule changes meaning, so
#: warm caches never serve stale interprocedural results.
FLOW_MODEL_VERSION = "1"

_FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef

# Edge kinds.
FLOW = "flow"
TRUE = "true"
FALSE = "false"
LOOP = "loop"
EXC = "exc"

#: Node types whose evaluation may raise (transfer control to a
#: handler).  Pure name/attribute/subscript loads are deliberately
#: excluded: treating every ``d[k]`` as a potential raise would drown
#: the flow rules in paths no reviewer would accept as findings.
_RAISING = (ast.Call, ast.Raise, ast.Assert, ast.Await)


def _own_walk(node: ast.AST) -> Iterator[ast.AST]:
    """Walk *node* without descending into nested ``def``/``lambda``
    bodies (their code does not run at the definition site)."""
    stack: list[ast.AST] = [node]
    while stack:
        cur = stack.pop()
        yield cur
        for child in ast.iter_child_nodes(cur):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.append(child)


def _header_parts(stmt: ast.stmt) -> list[ast.AST]:
    """The sub-expressions evaluated *by the statement itself* (its
    header), excluding nested bodies that get blocks of their own."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    return [stmt]


def header_walk(stmt: ast.stmt) -> Iterator[ast.AST]:
    """Walk the nodes evaluated by *stmt*'s own header.

    Compound bodies (which get basic blocks of their own) and nested
    ``def``/``lambda`` bodies are excluded — flow rules that scan a
    block's statements must see each evaluation site exactly once, in
    the block where it executes.
    """
    for part in _header_parts(stmt):
        yield from _own_walk(part)


def can_raise(stmt: ast.stmt) -> bool:
    """May executing *stmt*'s own header raise?  (Calls, ``raise``,
    ``assert`` and ``await``; nested bodies are judged separately.)"""
    for part in _header_parts(stmt):
        for node in _own_walk(part):
            if isinstance(node, _RAISING):
                return True
    return False


# ----------------------------------------------------------------------
# The graph
# ----------------------------------------------------------------------
@dataclass(slots=True)
class BasicBlock:
    """A maximal straight-line run of statements."""

    bid: int
    statements: list[ast.stmt] = field(default_factory=list)


class CFG:
    """Basic blocks + kinded edges for one function body."""

    def __init__(self) -> None:
        self.blocks: dict[int, BasicBlock] = {}
        self._succs: dict[int, list[tuple[int, str]]] = {}
        self._preds: dict[int, list[tuple[int, str]]] = {}
        self.block_of: dict[int, int] = {}
        """``id(stmt)`` → owning block id."""

        self.entry: int = self.new_block()
        self.exit: int = self.new_block()
        """Synthetic normal exit (every ``return`` / fall-through)."""

        self.raise_exit: int = self.new_block()
        """Synthetic exceptional exit (uncaught exceptions)."""

        self._doms: dict[int, frozenset[int]] | None = None

    # ------------------------------------------------------------------
    def new_block(self) -> int:
        bid = len(self.blocks)
        self.blocks[bid] = BasicBlock(bid=bid)
        self._succs[bid] = []
        self._preds[bid] = []
        return bid

    def add_edge(self, src: int, dst: int, kind: str = FLOW) -> None:
        if (dst, kind) in self._succs[src]:
            return
        self._succs[src].append((dst, kind))
        self._preds[dst].append((src, kind))
        self._doms = None

    def successors(self, bid: int) -> list[tuple[int, str]]:
        return list(self._succs[bid])

    def predecessors(self, bid: int) -> list[tuple[int, str]]:
        return list(self._preds[bid])

    def block_of_stmt(self, stmt: ast.stmt) -> int | None:
        return self.block_of.get(id(stmt))

    def statements(self) -> Iterator[ast.stmt]:
        for bid in sorted(self.blocks):
            yield from self.blocks[bid].statements

    # ------------------------------------------------------------------
    def reachable(self) -> list[int]:
        """Blocks reachable from entry, in BFS order."""
        seen: list[int] = []
        seen_set: set[int] = set()
        queue = deque([self.entry])
        while queue:
            bid = queue.popleft()
            if bid in seen_set:
                continue
            seen_set.add(bid)
            seen.append(bid)
            queue.extend(s for s, _ in self._succs[bid])
        return seen

    def dominators(self) -> dict[int, frozenset[int]]:
        """``block → blocks dominating it`` over the reachable graph
        (every block dominates itself; unreachable blocks are absent)."""
        if self._doms is not None:
            return self._doms
        order = self.reachable()
        universe = frozenset(order)
        doms: dict[int, frozenset[int]] = {
            bid: universe for bid in order
        }
        doms[self.entry] = frozenset({self.entry})
        changed = True
        while changed:
            changed = False
            for bid in order:
                if bid == self.entry:
                    continue
                preds = [
                    p for p, _ in self._preds[bid] if p in doms
                ]
                if preds:
                    new = frozenset({bid}).union(
                        frozenset.intersection(*(doms[p] for p in preds))
                    )
                else:  # pragma: no cover - entry is the only orphan
                    new = frozenset({bid})
                if new != doms[bid]:
                    doms[bid] = new
                    changed = True
        self._doms = doms
        return doms

    def postdominators(self) -> dict[int, frozenset[int]]:
        """``block → blocks post-dominating it``, with both exits as
        roots (a block reaching both exits keeps their intersection)."""
        order = self.reachable()
        universe = frozenset(order)
        pdoms: dict[int, frozenset[int]] = {bid: universe for bid in order}
        for root in (self.exit, self.raise_exit):
            if root in pdoms:
                pdoms[root] = frozenset({root})
        changed = True
        while changed:
            changed = False
            for bid in order:
                if bid in (self.exit, self.raise_exit):
                    continue
                succs = [s for s, _ in self._succs[bid] if s in pdoms]
                if succs:
                    new = frozenset({bid}).union(
                        frozenset.intersection(*(pdoms[s] for s in succs))
                    )
                else:
                    new = frozenset({bid})
                if new != pdoms[bid]:
                    pdoms[bid] = new
                    changed = True
        return pdoms

    def dominates(self, a: int, b: int) -> bool:
        return a in self.dominators().get(b, frozenset())

    def back_edges(self) -> list[tuple[int, int]]:
        """Edges ``u → h`` where ``h`` dominates ``u`` (loop closes)."""
        doms = self.dominators()
        out: list[tuple[int, int]] = []
        for src in sorted(self._succs):
            for dst, _kind in self._succs[src]:
                if dst in doms.get(src, frozenset()):
                    out.append((src, dst))
        return out

    def natural_loops(self) -> list[tuple[int, frozenset[int]]]:
        """``(header, body-block-set)`` per back edge, header included."""
        loops: list[tuple[int, frozenset[int]]] = []
        for tail, header in self.back_edges():
            body: set[int] = {header, tail}
            stack = [tail]
            while stack:
                bid = stack.pop()
                for pred, _kind in self._preds[bid]:
                    if pred not in body:
                        body.add(pred)
                        stack.append(pred)
            loops.append((header, frozenset(body)))
        return loops

    def loop_depth(self, bid: int) -> int:
        """How many natural loops contain *bid*."""
        return sum(1 for _h, body in self.natural_loops() if bid in body)


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
@dataclass(slots=True)
class _LoopFrame:
    break_to: int
    continue_to: int


@dataclass(slots=True)
class _TryFrame:
    handlers: list[int]
    catches_all: bool
    fin_entry: int | None
    pending: set[str] = field(default_factory=set)


_Frame = _LoopFrame | _TryFrame


def _handler_catches_all(handler: ast.ExceptHandler) -> bool:
    typ = handler.type
    if typ is None:
        return True
    names: list[ast.expr] = (
        list(typ.elts) if isinstance(typ, ast.Tuple) else [typ]
    )
    for name in names:
        if isinstance(name, ast.Name) and name.id in (
            "Exception",
            "BaseException",
        ):
            return True
    return False


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self.current: int | None = self.cfg.entry
        self.frames: list[_Frame] = []

    # ------------------------------------------------------------------
    def build(self, func: _FunctionNode) -> CFG:
        self._visit_body(func.body)
        if self.current is not None:
            self.cfg.add_edge(self.current, self.cfg.exit)
        return self.cfg

    # ------------------------------------------------------------------
    def _append(self, stmt: ast.stmt) -> int:
        if self.current is None:  # unreachable code keeps its own block
            self.current = self.cfg.new_block()
        block = self.cfg.blocks[self.current]
        block.statements.append(stmt)
        self.cfg.block_of[id(stmt)] = self.current
        if can_raise(stmt):
            self._route_raise(self.current)
        return self.current

    def _edge_from_current(self, dst: int, kind: str = FLOW) -> None:
        if self.current is not None:
            self.cfg.add_edge(self.current, dst, kind)

    # ------------------------------------------------------------------
    # Continuation routing through the frame stack
    # ------------------------------------------------------------------
    def _route_raise(self, src: int) -> None:
        for frame in reversed(self.frames):
            if not isinstance(frame, _TryFrame):
                continue
            for handler in frame.handlers:
                self.cfg.add_edge(src, handler, EXC)
            if frame.handlers and frame.catches_all:
                return
            if frame.fin_entry is not None:
                frame.pending.add("exc")
                self.cfg.add_edge(src, frame.fin_entry, EXC)
                return
        self.cfg.add_edge(src, self.cfg.raise_exit, EXC)

    def _route_return(self, src: int) -> None:
        for frame in reversed(self.frames):
            if isinstance(frame, _TryFrame) and frame.fin_entry is not None:
                frame.pending.add("return")
                self.cfg.add_edge(src, frame.fin_entry)
                return
        self.cfg.add_edge(src, self.cfg.exit)

    def _route_loop(self, src: int, kind: str) -> None:
        for frame in reversed(self.frames):
            if isinstance(frame, _TryFrame):
                if frame.fin_entry is not None:
                    frame.pending.add(kind)
                    self.cfg.add_edge(src, frame.fin_entry)
                    return
                continue
            target = (
                frame.break_to if kind == "break" else frame.continue_to
            )
            self.cfg.add_edge(src, target, LOOP if kind == "continue" else FLOW)
            return
        self.cfg.add_edge(src, self.cfg.exit)  # pragma: no cover - invalid

    # ------------------------------------------------------------------
    def _visit_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._visit(stmt)

    def _visit(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.If):
            self._visit_if(stmt)
        elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            self._visit_loop(stmt)
        elif isinstance(stmt, ast.Try):
            self._visit_try(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._visit_with(stmt)
        elif isinstance(stmt, ast.Match):
            self._visit_match(stmt)
        elif isinstance(stmt, ast.Return):
            src = self._append(stmt)
            self._route_return(src)
            self.current = None
        elif isinstance(stmt, ast.Break):
            src = self._append(stmt)
            self._route_loop(src, "break")
            self.current = None
        elif isinstance(stmt, ast.Continue):
            src = self._append(stmt)
            self._route_loop(src, "continue")
            self.current = None
        elif isinstance(stmt, ast.Raise):
            self._append(stmt)  # exception edge added by _append
            self.current = None
        else:
            self._append(stmt)

    # ------------------------------------------------------------------
    def _visit_if(self, stmt: ast.If) -> None:
        cond = self._append(stmt)
        after = self.cfg.new_block()
        then_entry = self.cfg.new_block()
        self.cfg.add_edge(cond, then_entry, TRUE)
        self.current = then_entry
        self._visit_body(stmt.body)
        self._edge_from_current(after)
        if stmt.orelse:
            else_entry = self.cfg.new_block()
            self.cfg.add_edge(cond, else_entry, FALSE)
            self.current = else_entry
            self._visit_body(stmt.orelse)
            self._edge_from_current(after)
        else:
            self.cfg.add_edge(cond, after, FALSE)
        self.current = after

    def _visit_loop(
        self, stmt: ast.While | ast.For | ast.AsyncFor
    ) -> None:
        header = self.cfg.new_block()
        self._edge_from_current(header)
        self.current = header
        self._append(stmt)
        infinite = (
            isinstance(stmt, ast.While)
            and isinstance(stmt.test, ast.Constant)
            and bool(stmt.test.value)
        )
        after = self.cfg.new_block()
        body_entry = self.cfg.new_block()
        self.cfg.add_edge(header, body_entry, TRUE)
        self.frames.append(_LoopFrame(break_to=after, continue_to=header))
        self.current = body_entry
        self._visit_body(stmt.body)
        self._edge_from_current(header, LOOP)
        self.frames.pop()
        if stmt.orelse:
            else_entry = self.cfg.new_block()
            if not infinite:
                self.cfg.add_edge(header, else_entry, FALSE)
            self.current = else_entry
            self._visit_body(stmt.orelse)
            self._edge_from_current(after)
        elif not infinite:
            self.cfg.add_edge(header, after, FALSE)
        self.current = after

    def _visit_with(self, stmt: ast.With | ast.AsyncWith) -> None:
        head = self._append(stmt)
        body_entry = self.cfg.new_block()
        self.cfg.add_edge(head, body_entry)
        self.current = body_entry
        self._visit_body(stmt.body)
        after = self.cfg.new_block()
        self._edge_from_current(after)
        self.current = after

    def _visit_match(self, stmt: ast.Match) -> None:
        head = self._append(stmt)
        after = self.cfg.new_block()
        for case in stmt.cases:
            entry = self.cfg.new_block()
            self.cfg.add_edge(head, entry, TRUE)
            self.current = entry
            self._visit_body(case.body)
            self._edge_from_current(after)
        self.cfg.add_edge(head, after, FALSE)
        self.current = after

    # ------------------------------------------------------------------
    def _visit_try(self, stmt: ast.Try) -> None:
        head = self._append(stmt)
        fin_entry = self.cfg.new_block() if stmt.finalbody else None
        handler_entries = [self.cfg.new_block() for _ in stmt.handlers]
        after = self.cfg.new_block()
        frame = _TryFrame(
            handlers=list(handler_entries),
            catches_all=any(
                _handler_catches_all(h) for h in stmt.handlers
            ),
            fin_entry=fin_entry,
        )
        body_entry = self.cfg.new_block()
        self.cfg.add_edge(head, body_entry)
        self.frames.append(frame)
        self.current = body_entry
        self._visit_body(stmt.body)
        # Handlers stop catching outside the protected body; the
        # pending ``finally`` keeps applying to handlers and ``else``.
        frame.handlers = []
        if stmt.orelse and self.current is not None:
            self._visit_body(stmt.orelse)
        if self.current is not None:
            if fin_entry is not None:
                frame.pending.add("normal")
                self.cfg.add_edge(self.current, fin_entry)
            else:
                self.cfg.add_edge(self.current, after)
        for entry, handler in zip(handler_entries, stmt.handlers):
            self.current = entry
            self._visit_body(handler.body)
            if self.current is not None:
                if fin_entry is not None:
                    frame.pending.add("normal")
                    self.cfg.add_edge(self.current, fin_entry)
                else:
                    self.cfg.add_edge(self.current, after)
        self.frames.pop()
        if fin_entry is not None:
            self.current = fin_entry
            self._visit_body(stmt.finalbody)
            fin_out = self.current
            if fin_out is not None:
                for kind in sorted(frame.pending):
                    if kind == "normal":
                        self.cfg.add_edge(fin_out, after)
                    elif kind == "exc":
                        self._route_raise(fin_out)
                    elif kind == "return":
                        self._route_return(fin_out)
                    else:
                        self._route_loop(fin_out, kind)
        self.current = after


def build_cfg(func: _FunctionNode) -> CFG:
    """The control-flow graph of one function body."""
    return _Builder().build(func)


# ----------------------------------------------------------------------
# Generic worklist solvers
# ----------------------------------------------------------------------
T = TypeVar("T")


def solve_forward(
    cfg: CFG,
    entry_state: T,
    transfer: Callable[[int, T], dict[str, T]],
    join: Callable[[T, T], T],
    bottom: T,
) -> dict[int, T]:
    """Forward dataflow to fixpoint.

    ``transfer(bid, in_state)`` returns a map from edge kind to the
    out-state flowing along edges of that kind; :data:`FLOW` is the
    default for kinds not in the map.  This lets analyses narrow on
    branch edges (``true``/``false``) and emit the mid-block state at
    raise points along :data:`EXC` edges.  Returns each reachable
    block's *in* state.
    """
    order = cfg.reachable()
    in_states: dict[int, T] = {bid: bottom for bid in order}
    in_states[cfg.entry] = entry_state
    work: deque[int] = deque(order)
    in_work = set(order)
    while work:
        bid = work.popleft()
        in_work.discard(bid)
        outs = transfer(bid, in_states[bid])
        for succ, kind in cfg.successors(bid):
            contrib = outs.get(kind, outs[FLOW])
            joined = join(in_states[succ], contrib)
            if joined != in_states[succ]:
                in_states[succ] = joined
                if succ not in in_work:
                    in_work.add(succ)
                    work.append(succ)
    return in_states


def solve_backward(
    cfg: CFG,
    exit_state: T,
    transfer: Callable[[int, T, T], T],
    meet: Callable[[T, T], T],
    top: T,
) -> dict[int, T]:
    """Backward dataflow to fixpoint.

    ``transfer(bid, flow_meet, exc_meet) → in_state`` where
    ``flow_meet`` is the meet over non-exception successors' in-states
    (``exit_state`` at the exits) and ``exc_meet`` the meet over
    exception successors' (``top`` when the block has none — the
    transfer applies it only at its own raise points).  Returns each
    reachable block's *in* state.
    """
    order = cfg.reachable()
    in_states: dict[int, T] = {bid: top for bid in order}
    work: deque[int] = deque(reversed(order))
    in_work = set(order)
    while work:
        bid = work.popleft()
        in_work.discard(bid)
        flow_meet = exit_state if bid in (cfg.exit, cfg.raise_exit) else top
        exc_meet = top
        seen_flow = bid in (cfg.exit, cfg.raise_exit)
        for succ, kind in cfg.successors(bid):
            if succ not in in_states:
                continue
            if kind == EXC:
                exc_meet = meet(exc_meet, in_states[succ])
            else:
                flow_meet = (
                    in_states[succ]
                    if not seen_flow
                    else meet(flow_meet, in_states[succ])
                )
                seen_flow = True
        if not seen_flow:
            flow_meet = exit_state
        new = transfer(bid, flow_meet, exc_meet)
        if new != in_states[bid]:
            in_states[bid] = new
            for pred, _kind in cfg.predecessors(bid):
                if pred in in_states and pred not in in_work:
                    in_work.add(pred)
                    work.append(pred)
    return in_states


# ----------------------------------------------------------------------
# Per-program memoization
# ----------------------------------------------------------------------
class FlowModel:
    """CFGs for every function of a program, built on demand."""

    def __init__(self, program: "Program") -> None:
        self._program = program
        self._cfgs: dict[str, CFG] = {}

    def cfg_of(self, qname: str) -> CFG | None:
        cached = self._cfgs.get(qname)
        if cached is not None:
            return cached
        info = self._program.table.functions.get(qname)
        if info is None:
            return None
        cfg = build_cfg(info.node)
        self._cfgs[qname] = cfg
        return cfg


def flow_model_for(program: "Program") -> FlowModel:
    """The memoized :class:`FlowModel` of *program*."""
    model = getattr(program, "_flow_model", None)
    if not isinstance(model, FlowModel):
        model = FlowModel(program)
        program._flow_model = model  # type: ignore[attr-defined]
    return model
