"""repro-lint: static analysis for the repo's whole-program invariants.

The transactional journal (PR 2) and the bit-reproducible parallel
engine (PR 3) established guarantees the Python interpreter cannot
check: every placement mutation must flow through journaled primitives,
and nothing in the hot packages may depend on set order, ambient
randomness, or the wall clock.  This package enforces those invariants
(plus the exception taxonomy and a strict-typing gate) at lint time::

    python -m repro.analysis src/          # or: repro lint
    repro lint --format json src/
    repro lint --list-rules

Rule families (see docs/static_analysis.md for the full catalog):

=====  ====================  ==============================================
code   name                  guards
=====  ====================  ==============================================
RL0    suppression-hygiene   suppressions carry justifications, stay fresh
RL1    journal-bypass        mutations flow through the journal (core,
                             engine, apps, io, checker)
RL2    determinism           set order / randomness / clocks (core,
                             engine, checker, analysis)
RL3    transaction-safety    no exception swallowing around mutations;
                             apps + reconciler mutate inside Transactions
RL4    exception-taxonomy    engine raises/classes use engine.errors
RL5    strict-typing         complete annotations, no bare generics
                             (core, engine, db, analysis)
=====  ====================  ==============================================

Suppress a false positive with a justified comment::

    x = scratch.pop()  # repro-lint: disable=RL2 -- scratch is int-only and local
"""

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import BaseRule, all_rules, register
from repro.analysis.reporters import ScanSummary, render_json, render_text
from repro.analysis.runner import lint_file, lint_paths, run

__all__ = [
    "BaseRule",
    "Diagnostic",
    "ScanSummary",
    "all_rules",
    "lint_file",
    "lint_paths",
    "register",
    "render_json",
    "render_text",
    "run",
]
