"""Summary-based interprocedural effect inference.

Every function in the program gets an :class:`EffectSummary` over a
five-element effect lattice::

    mutates-design      writes .x/.y/.master or mutates a .cells list
    journals            calls a ``note_*`` primitive / ``Journal._record``
    opens-transaction   enters ``with Transaction(...)`` / ``.transaction()``
    nondeterministic    ambient entropy (random.*, urandom, uuid, hash())
    does-io             file-system / stream traffic (open, print, Path IO)

*Local* effects are what a function's own body exhibits syntactically;
*transitive* effects add everything reachable through resolved call
edges, computed as the least fixpoint of

    transitive(f) = local(f)  ∪  ⋃ { transitive(g) : f calls g }

over the whole-program call graph of :mod:`repro.analysis.callgraph`.
The fixpoint is a standard worklist over reverse edges: when a callee's
summary grows, its callers are revisited.

Unresolved call sites cannot contribute callee summaries, so calls whose
*name* matches a known journaled primitive (``.place``/``.unplace``/
``.shift_x``/``.add_cell``/``.realize_insertion``/``.note_*``) fall back
to that primitive's declared effects.  The approximation errs on the
side of *over*-prediction, which is the safe direction for the
differential sanitizer: the runtime trace must be a subset of the static
prediction, never the reverse.

The summaries feed three consumers:

* RL7 (interprocedural journal coverage) asks "does this chain reach a
  mutation primitive outside any transaction scope?";
* ``repro callgraph --effects`` exports them for humans;
* ``repro.testing.sanitizer`` checks observed runtime effects against
  the transitive summary of every enclosing stack frame.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.analysis.callgraph import (
    Program,
    _is_transaction_ctx,
    dotted,
    own_nodes,
)

# ----------------------------------------------------------------------
# The effect lattice
# ----------------------------------------------------------------------
MUTATES = "mutates-design"
JOURNALS = "journals"
TRANSACTION = "opens-transaction"
NONDET = "nondeterministic"
IO = "does-io"

ALL_EFFECTS: frozenset[str] = frozenset(
    {MUTATES, JOURNALS, TRANSACTION, NONDET, IO}
)

#: Placement attributes whose stores constitute a design mutation (the
#: same set RL1 guards within a file).
PLACEMENT_ATTRS: frozenset[str] = frozenset({"x", "y", "master"})

#: In-place mutators of the ``.cells`` segment lists.
LIST_MUTATORS: frozenset[str] = frozenset(
    {"append", "pop", "insert", "remove", "extend", "clear", "sort"}
)

#: Known journaled primitives by *method name*: the fallback applied at
#: call sites the resolver could not link to a definition.
PRIMITIVE_EFFECTS: dict[str, frozenset[str]] = {
    "place": frozenset({MUTATES, JOURNALS}),
    "unplace": frozenset({MUTATES, JOURNALS}),
    "shift_x": frozenset({MUTATES, JOURNALS}),
    "add_cell": frozenset({MUTATES, JOURNALS}),
    "realize_insertion": frozenset({MUTATES, JOURNALS}),
}

#: Ground-truth seeds: the definitions the runtime sanitizer instruments
#: carry their effects axiomatically, independent of what local
#: syntactic scanning recovers from their bodies.
SEED_EFFECTS: dict[str, frozenset[str]] = {
    "repro.db.journal.Journal._record": frozenset({JOURNALS}),
    "repro.db.journal.Transaction.__enter__": frozenset({TRANSACTION}),
    "repro.db.design.Design.place": frozenset({MUTATES, JOURNALS}),
    "repro.db.design.Design.unplace": frozenset({MUTATES, JOURNALS}),
    "repro.db.design.Design.shift_x": frozenset({MUTATES, JOURNALS}),
    "repro.db.design.Design.add_cell": frozenset({MUTATES, JOURNALS}),
    "repro.db.design.Design.transaction": frozenset({TRANSACTION}),
}

_NONDET_CALLS: frozenset[str] = frozenset(
    {
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "datetime.now",
        "datetime.datetime.now",
        "datetime.utcnow",
        "datetime.datetime.utcnow",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.randbits",
    }
)

_IO_NAME_CALLS: frozenset[str] = frozenset({"open", "print", "input"})

_IO_METHOD_ATTRS: frozenset[str] = frozenset(
    {
        "write_text",
        "read_text",
        "write_bytes",
        "read_bytes",
        "mkdir",
        "unlink",
        "touch",
        "rmdir",
    }
)

_IO_DOTTED_CALLS: frozenset[str] = frozenset(
    {
        "os.remove",
        "os.rename",
        "os.replace",
        "os.makedirs",
        "os.rmdir",
        "shutil.copy",
        "shutil.copytree",
        "shutil.rmtree",
        "json.dump",
        "json.load",
        "pickle.dump",
        "pickle.load",
        "sys.stdout.write",
        "sys.stderr.write",
    }
)


@dataclass(frozen=True, slots=True)
class EffectSummary:
    """Local and transitive effect sets of one function."""

    local: frozenset[str]
    transitive: frozenset[str]

    def to_dict(self) -> dict[str, list[str]]:
        return {
            "local": sorted(self.local),
            "transitive": sorted(self.transitive),
        }


# ----------------------------------------------------------------------
# Local (intra-procedural) effect detection
# ----------------------------------------------------------------------
def _store_targets(node: ast.AST) -> Iterator[ast.expr]:
    """Expressions written to by an assignment-like statement."""
    if isinstance(node, ast.Assign):
        yield from node.targets
    elif isinstance(node, ast.AugAssign):
        yield node.target
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        yield node.target


def _call_effects(node: ast.Call, resolved: bool) -> frozenset[str]:
    """Effects exhibited by one call expression."""
    effects: set[str] = set()
    func = node.func
    if isinstance(func, ast.Name):
        if func.id == "hash":
            effects.add(NONDET)
        if func.id in _IO_NAME_CALLS:
            effects.add(IO)
        return frozenset(effects)
    if not isinstance(func, ast.Attribute):
        return frozenset(effects)
    attr = func.attr
    if attr.startswith("note_") or attr == "_record":
        effects.add(JOURNALS)
    if attr in LIST_MUTATORS and (
        isinstance(func.value, ast.Attribute) and func.value.attr == "cells"
    ):
        effects.add(MUTATES)
    if attr in _IO_METHOD_ATTRS:
        effects.add(IO)
    name = dotted(func)
    if name is not None:
        if name in _NONDET_CALLS or (
            name.startswith("random.") and name != "random.Random"
        ):
            # ``random.Random(seed)`` constructs an explicitly seeded
            # stream and is the *deterministic* idiom RL2 blesses.
            effects.add(NONDET)
        if name in _IO_DOTTED_CALLS:
            effects.add(IO)
    if not resolved and attr in PRIMITIVE_EFFECTS:
        # The resolver could not link the receiver; assume the method
        # name means what it means everywhere else in the program.
        effects.update(PRIMITIVE_EFFECTS[attr])
    return frozenset(effects)


def effects_of_nodes(
    nodes: Iterable[ast.AST], resolved_calls: frozenset[int]
) -> frozenset[str]:
    """Local effects exhibited by a body of AST nodes.

    ``resolved_calls`` holds ``id()``s of Call nodes the call graph
    linked to a definition — those contribute through their callee's
    summary instead of the syntactic fallback.
    """
    effects: set[str] = set()
    for node in nodes:
        for target in _store_targets(node):
            if (
                isinstance(target, ast.Attribute)
                and target.attr in PLACEMENT_ATTRS
            ):
                effects.add(MUTATES)
        if isinstance(node, ast.Call):
            effects |= _call_effects(node, id(node) in resolved_calls)
        elif isinstance(node, ast.With):
            if any(_is_transaction_ctx(i.context_expr) for i in node.items):
                effects.add(TRANSACTION)
    return frozenset(effects)


def local_effects(program: Program) -> dict[str, frozenset[str]]:
    """Per-function (and per-module) local effect sets, seeds included."""
    resolved_calls = frozenset(
        id(site.node)
        for site in program.graph.sites
        if site.callee is not None
    )
    out: dict[str, frozenset[str]] = {}
    for qname, info in sorted(program.table.functions.items()):
        body = effects_of_nodes(own_nodes(info.node), resolved_calls)
        out[qname] = body | SEED_EFFECTS.get(qname, frozenset())
    for path in sorted(program.contexts):
        ctx = program.contexts[path]
        from repro.analysis.callgraph import module_name_of

        module_qname = f"{module_name_of(path)}.<module>"
        out[module_qname] = effects_of_nodes(
            program._toplevel_nodes(ctx.tree), resolved_calls
        )
    return out


# ----------------------------------------------------------------------
# The fixpoint
# ----------------------------------------------------------------------
def spawn_edges(program: Program) -> dict[str, frozenset[str]]:
    """Synthetic spawner → payload edges for effect propagation.

    A function that hands ``run_shard`` to a worker pool transitively
    *causes* everything the worker does — and under the ``fork`` start
    method the runtime agrees: the spawner's frame is literally on the
    worker's inherited stack when the payload executes.  The effect
    fixpoint therefore treats every resolved spawn payload as a callee
    of its spawn site's enclosing function.
    """
    from repro.analysis.rules.spawnsites import (
        resolve_payload,
        spawn_sites_in_file,
    )

    edges: dict[str, set[str]] = {}
    for path in sorted(program.contexts):
        ctx = program.contexts[path]
        for site in spawn_sites_in_file(program, ctx):
            info = resolve_payload(program, site)
            if info is not None:
                edges.setdefault(site.caller, set()).add(info.qname)
    return {caller: frozenset(edges[caller]) for caller in sorted(edges)}


def infer_effects(program: Program) -> dict[str, EffectSummary]:
    """Least-fixpoint transitive effect summaries over the call graph
    (augmented with the synthetic :func:`spawn_edges`)."""
    local = local_effects(program)
    out_edges: dict[str, frozenset[str]] = {
        caller: frozenset(program.graph.callees_of(caller))
        for caller in program.graph.out_edges
    }
    for caller, payloads in spawn_edges(program).items():
        out_edges[caller] = out_edges.get(caller, frozenset()) | payloads
    universe: set[str] = set(local)
    for caller in sorted(out_edges):
        universe.add(caller)
        universe.update(out_edges[caller])
    transitive: dict[str, set[str]] = {
        q: set(local.get(q, frozenset())) for q in sorted(universe)
    }
    reverse: dict[str, set[str]] = {}
    for caller in sorted(out_edges):
        for callee in sorted(out_edges[caller]):
            reverse.setdefault(callee, set()).add(caller)
    worklist: deque[str] = deque(sorted(universe))
    queued: set[str] = set(universe)
    while worklist:
        qname = worklist.popleft()
        queued.discard(qname)
        merged: set[str] = set(local.get(qname, frozenset()))
        for callee in sorted(out_edges.get(qname, frozenset())):
            merged |= transitive.get(callee, set())
        if merged != transitive[qname]:
            transitive[qname] = merged
            for caller in sorted(reverse.get(qname, set())):
                if caller not in queued:
                    queued.add(caller)
                    worklist.append(caller)
    return {
        q: EffectSummary(
            local=frozenset(local.get(q, frozenset())),
            transitive=frozenset(transitive[q]),
        )
        for q in sorted(universe)
    }
