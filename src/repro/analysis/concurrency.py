"""Concurrency model over the whole-program call graph.

PRs 6-8 made the tree genuinely concurrent — an asyncio ECO server
(:mod:`repro.serve`) and a threaded TCP shard coordinator
(:mod:`repro.engine.remote`) — while the RL1-RL8 stack stayed
concurrency-blind.  This module adds the missing vocabulary on top of
:class:`~repro.analysis.callgraph.Program`:

* **Spawn edges** — every site that moves work onto another task or
  thread: ``asyncio.create_task``/``ensure_future``/``gather`` (kind
  ``"task"``), ``asyncio.to_thread``/``loop.run_in_executor`` (kind
  ``"offload"``), ``threading.Thread(target=...)`` (kind ``"thread"``)
  and the blessed cross-thread hops ``call_soon_threadsafe``/
  ``run_coroutine_threadsafe`` (kind ``"loop-hop"``).  Payloads resolve
  through the symbol table, including ``self.method`` references and
  inner calls (``create_task(self._drain(key, q))``).
* **Await points** — every ``await`` / ``async for`` / ``async with``
  in an ``async def`` body, annotated with whether it sits lexically
  inside a ``with Transaction(...)`` scope and which locks are held.
* **Locksets** — lexical lock scopes (``with self._lock:`` on a
  lock-typed attribute, ``with MODULE_LOCK:`` on a module-level lock)
  plus an inherited entry-lockset fixpoint: a function's entry lockset
  is the *meet* (intersection) over all call sites of the caller's
  effective lockset, with spawn payloads, value-referenced callbacks
  and call-graph roots pinned to the empty set.  This models the
  coordinator's "caller holds the lock" helper convention without
  annotations.

RL9-RL11 consume the model; the runtime race tracer
(:mod:`repro.testing.sanitizer`) checks its live observations against
the same structures.  :data:`CONCURRENCY_MODEL_VERSION` feeds the
incremental cache's program key so cached RL9-RL11 results
self-invalidate when the model's semantics change.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.callgraph import (
    CallSite,
    FunctionInfo,
    Program,
    dotted,
    module_name_of,
    own_nodes,
)
from repro.analysis.context import ancestors

#: Bump when spawn/await/lockset semantics change: the lint cache mixes
#: this into the program key so stale RL9-RL11 results re-analyze cold.
CONCURRENCY_MODEL_VERSION = "1"

#: Receiver-method names that schedule a coroutine as a task.
TASK_SPAWN_ATTRS: frozenset[str] = frozenset({"create_task", "ensure_future"})

#: Blessed thread→loop hand-off points (never themselves a hazard).
THREADSAFE_HOPS: frozenset[str] = frozenset(
    {"call_soon_threadsafe", "run_coroutine_threadsafe"}
)

#: Class names that act as mutual-exclusion locks for ``with
#: self.attr:`` scoping.  asyncio primitives are deliberately excluded:
#: an ``async with self._semaphore`` limits task concurrency on one
#: loop, it does not exclude threads, so folding it into locksets would
#: fabricate a discipline the code never promises.
LOCK_CLASS_NAMES: frozenset[str] = frozenset({"Lock", "RLock", "Condition"})

_FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


@dataclass(slots=True)
class AwaitPoint:
    """One suspension point inside an ``async def`` body."""

    function: str
    """Qualified name of the enclosing async function."""

    path: str
    lineno: int
    col: int
    kind: str
    """``"await"`` | ``"async-for"`` | ``"async-with"``."""

    in_transaction: bool
    """Lexically inside ``with Transaction(...)``."""

    lockset: frozenset[str] = frozenset()
    """Lexical lock tokens held at the point."""


@dataclass(slots=True)
class SpawnEdge:
    """One site that ships work onto another task or thread."""

    site: CallSite
    kind: str
    """``"task"`` | ``"offload"`` | ``"thread"`` | ``"loop-hop"``."""

    payload: str | None
    """Resolved qualified name of the spawned callable, if static."""

    payload_expr: ast.expr | None = field(default=None, repr=False)


class ConcurrencyModel:
    """Spawn edges, await points and locksets for one program."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self._site_by_node: dict[int, CallSite] = {
            id(site.node): site for site in program.graph.sites
        }
        self._local_types_memo: dict[str, dict[str, str]] = {}
        self.async_functions: frozenset[str] = frozenset(
            qname
            for qname, info in program.table.functions.items()
            if isinstance(info.node, ast.AsyncFunctionDef)
        )
        self.lock_attrs: dict[str, frozenset[str]] = self._find_lock_attrs()
        self.module_locks: dict[str, frozenset[str]] = (
            self._find_module_locks()
        )
        self.await_points: dict[str, tuple[AwaitPoint, ...]] = (
            self._find_await_points()
        )
        self.spawns: tuple[SpawnEdge, ...] = tuple(self._find_spawns())
        self.entry_locksets: dict[str, frozenset[str]] = (
            self._infer_entry_locksets()
        )

    # ------------------------------------------------------------------
    # Lock discovery
    # ------------------------------------------------------------------
    def _find_lock_attrs(self) -> dict[str, frozenset[str]]:
        """class qname → ``self.attr`` names that hold lock objects."""
        out: dict[str, frozenset[str]] = {}
        for qname, cls in self.program.table.classes.items():
            attrs = {
                attr
                for attr, tname in cls.attr_types.items()
                if tname.rsplit(".", 1)[-1] in LOCK_CLASS_NAMES
                and not tname.startswith("asyncio")
            }
            if attrs:
                out[qname] = frozenset(attrs)
        return out

    def _find_module_locks(self) -> dict[str, frozenset[str]]:
        """module → top-level names bound to lock constructor calls."""
        out: dict[str, frozenset[str]] = {}
        for path, ctx in self.program.contexts.items():
            module = module_name_of(path)
            names: set[str] = set()
            for stmt in ctx.tree.body:
                target: ast.expr | None = None
                value: ast.expr | None = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    target, value = stmt.target, stmt.value
                if (
                    isinstance(target, ast.Name)
                    and isinstance(value, ast.Call)
                ):
                    name = dotted(value.func)
                    if (
                        name is not None
                        and name.rsplit(".", 1)[-1] in LOCK_CLASS_NAMES
                        and not name.startswith("asyncio")
                    ):
                        names.add(target.id)
            if names:
                out[module] = frozenset(names)
        return out

    # ------------------------------------------------------------------
    # Lexical locksets
    # ------------------------------------------------------------------
    def lexical_lockset(
        self, node: ast.AST, info: FunctionInfo | None
    ) -> frozenset[str]:
        """Lock tokens held at *node* by enclosing ``with`` scopes.

        Stops at the enclosing function boundary: a closure defined
        inside a lock scope runs later, without the lock.
        """
        tokens: set[str] = set()
        for anc in ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
            if not isinstance(anc, (ast.With, ast.AsyncWith)):
                continue
            for item in anc.items:
                token = self._lock_token(item.context_expr, info)
                if token is not None:
                    tokens.add(token)
        return frozenset(tokens)

    def _lock_token(
        self, expr: ast.expr, info: FunctionInfo | None
    ) -> str | None:
        """``ClassQname.attr`` / ``module.NAME`` for a lock ctx expr."""
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id in ("self", "cls")
            and info is not None
            and info.class_qname is not None
        ):
            if expr.attr in self.lock_attrs.get(info.class_qname, ()):
                return f"{info.class_qname}.{expr.attr}"
            return None
        if isinstance(expr, ast.Name) and info is not None:
            if expr.id in self.module_locks.get(info.module, ()):
                return f"{info.module}.{expr.id}"
        return None

    def effective_lockset(self, node: ast.AST, qname: str) -> frozenset[str]:
        """Lexical lockset at *node* plus *qname*'s entry lockset."""
        info = self.program.table.functions.get(qname)
        return self.lexical_lockset(node, info) | self.entry_locksets.get(
            qname, frozenset()
        )

    # ------------------------------------------------------------------
    # Await points
    # ------------------------------------------------------------------
    def _find_await_points(self) -> dict[str, tuple[AwaitPoint, ...]]:
        from repro.analysis.callgraph import inside_transaction

        out: dict[str, tuple[AwaitPoint, ...]] = {}
        for qname in sorted(self.async_functions):
            info = self.program.table.functions[qname]
            points: list[AwaitPoint] = []
            for node in own_nodes(info.node):
                if isinstance(node, ast.Await):
                    kind = "await"
                elif isinstance(node, ast.AsyncFor):
                    kind = "async-for"
                elif isinstance(node, ast.AsyncWith):
                    kind = "async-with"
                else:
                    continue
                points.append(
                    AwaitPoint(
                        function=qname,
                        path=info.path,
                        lineno=node.lineno,
                        col=node.col_offset,
                        kind=kind,
                        in_transaction=inside_transaction(node),
                        lockset=self.lexical_lockset(node, info),
                    )
                )
            if points:
                out[qname] = tuple(
                    sorted(points, key=lambda p: (p.lineno, p.col))
                )
        return out

    # ------------------------------------------------------------------
    # Spawn edges
    # ------------------------------------------------------------------
    def _find_spawns(self) -> list[SpawnEdge]:
        edges: list[SpawnEdge] = []
        for site in self.program.graph.sites:
            func = site.node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if name is None:
                continue
            args = site.node.args
            if name in TASK_SPAWN_ATTRS and args:
                edges.append(self._edge(site, "task", args[0]))
            elif name == "gather":
                for arg in args:
                    if not isinstance(arg, ast.Starred):
                        edges.append(self._edge(site, "task", arg))
            elif name == "to_thread" and args:
                edges.append(self._edge(site, "offload", args[0]))
            elif name == "run_in_executor" and len(args) >= 2:
                edges.append(self._edge(site, "offload", args[1]))
            elif name in THREADSAFE_HOPS and args:
                edges.append(self._edge(site, "loop-hop", args[0]))
            elif name == "Thread":
                target = next(
                    (
                        kw.value
                        for kw in site.node.keywords
                        if kw.arg == "target"
                    ),
                    None,
                )
                if target is not None:
                    edges.append(self._edge(site, "thread", target))
        return edges

    def _edge(self, site: CallSite, kind: str, expr: ast.expr) -> SpawnEdge:
        return SpawnEdge(
            site=site,
            kind=kind,
            payload=self._payload_qname(expr, site),
            payload_expr=expr,
        )

    def _payload_qname(self, expr: ast.expr, site: CallSite) -> str | None:
        """Resolve a spawn payload expression to a function qname."""
        table = self.program.table
        caller_info = table.functions.get(site.caller)
        module = self._module_of(site.caller)
        # ``create_task(self._drain(key, q))``: the inner call is a
        # linked call site; its resolution is the payload.
        if isinstance(expr, ast.Call):
            inner = self._site_by_node.get(id(expr))
            return inner.callee if inner is not None else None
        if isinstance(expr, ast.Name):
            nested = f"{site.caller}.<locals>.{expr.id}"
            if nested in table.functions:
                return nested
            qname = table.resolve_name(expr.id, module)
            if qname is not None and qname in table.functions:
                return qname
            return None
        if isinstance(expr, ast.Attribute):
            base = expr.value
            # self.method / cls.method
            if (
                isinstance(base, ast.Name)
                and base.id in ("self", "cls")
                and caller_info is not None
                and caller_info.class_qname is not None
            ):
                cls = table.classes.get(caller_info.class_qname)
                if cls is not None:
                    return table.lookup_method(cls, expr.attr)
            # self.attr.method through the harvested attr type
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and caller_info is not None
                and caller_info.class_qname is not None
            ):
                cls = table.classes.get(caller_info.class_qname)
                if cls is not None:
                    tname = cls.attr_types.get(base.attr)
                    if tname is not None:
                        receiver = table.resolve_class(tname, module)
                        if receiver is not None:
                            return table.lookup_method(receiver, expr.attr)
            # local typed receiver: annotated/constructed variable
            if (
                isinstance(base, ast.Name)
                and caller_info is not None
            ):
                types = self._local_types_of(caller_info)
                tname = types.get(base.id)
                if tname is not None:
                    receiver = table.resolve_class(tname, module)
                    if receiver is not None:
                        resolved = table.lookup_method(receiver, expr.attr)
                        if resolved is not None:
                            return resolved
            name = dotted(expr)
            if name is not None:
                qname = table.resolve_name(name, module)
                if qname is not None and qname in table.functions:
                    return qname
        return None

    def _local_types_of(self, info: FunctionInfo) -> dict[str, str]:
        types = self._local_types_memo.get(info.qname)
        if types is None:
            types = self.program._local_types(
                info.node, info.module, info
            )
            self._local_types_memo[info.qname] = types
        return types

    def _module_of(self, caller: str) -> str:
        if caller.endswith(".<module>"):
            return caller[: -len(".<module>")]
        info = self.program.table.functions.get(caller)
        if info is not None:
            return info.module
        return caller.rsplit(".", 1)[0]

    # ------------------------------------------------------------------
    # Roots
    # ------------------------------------------------------------------
    def spawn_payloads(self, kinds: tuple[str, ...]) -> frozenset[str]:
        """Resolved payload qnames of the given spawn kinds."""
        return frozenset(
            edge.payload
            for edge in self.spawns
            if edge.kind in kinds and edge.payload is not None
        )

    def concurrency_roots(self) -> frozenset[str]:
        """Functions that begin a concurrent context: every resolved
        spawn payload plus each spawning function itself (the spawner
        keeps running concurrently with its payload)."""
        roots = set(
            self.spawn_payloads(("task", "offload", "thread"))
        )
        for edge in self.spawns:
            if edge.kind in ("task", "offload", "thread"):
                roots.add(edge.site.caller)
        return frozenset(roots)

    def thread_context(self) -> frozenset[str]:
        """Functions that may execute on a non-loop thread: the closure
        over resolved call edges from thread/offload payloads, never
        descending into ``async def`` frames (those run on a loop —
        ``asyncio.run`` inside a thread starts that thread's own loop).
        """
        seen: set[str] = set()
        queue = [
            q
            for q in self.spawn_payloads(("thread", "offload"))
            if q not in self.async_functions
        ]
        while queue:
            cur = queue.pop()
            if cur in seen:
                continue
            seen.add(cur)
            for callee in self.program.graph.callees_of(cur):
                if callee not in self.async_functions:
                    queue.append(callee)
        return frozenset(seen)

    # ------------------------------------------------------------------
    # Transaction regions
    # ------------------------------------------------------------------
    def await_in_transaction_region(self) -> frozenset[str]:
        """Async functions whose await points may run with an open
        ``Transaction``: functions with a direct in-transaction await
        plus async callees awaited from inside a transaction scope and
        their transitive async callees.  Feeds the runtime tracer's
        prediction set — any live await-in-transaction observation must
        land in one of these frames."""
        region = {
            qname
            for qname, points in self.await_points.items()
            if any(p.in_transaction for p in points)
        }
        queue = [
            site.callee
            for site in self.program.graph.sites
            if site.in_transaction
            and site.callee is not None
            and site.callee in self.async_functions
        ]
        while queue:
            cur = queue.pop()
            if cur in region:
                continue
            region.add(cur)
            for callee in self.program.graph.callees_of(cur):
                if callee in self.async_functions:
                    queue.append(callee)
        return frozenset(region)

    def lock_scope_region(self) -> frozenset[str]:
        """Functions that may execute while some analyzed lock is held:
        functions whose bodies open a lock scope, callees of call sites
        inside one, functions with a non-empty entry lockset, and their
        transitive callees."""
        graph = self.program.graph
        region: set[str] = set()
        queue: list[str] = []
        for qname, held in self.entry_locksets.items():
            if held:
                queue.append(qname)
        for site in graph.sites:
            info = self.program.table.functions.get(site.caller)
            if self.lexical_lockset(site.node, info):
                region.add(site.caller)
                if site.callee is not None:
                    queue.append(site.callee)
        while queue:
            cur = queue.pop()
            if cur in region:
                continue
            region.add(cur)
            queue.extend(graph.callees_of(cur))
        return frozenset(region)

    # ------------------------------------------------------------------
    # Entry locksets (meet-over-call-sites fixpoint)
    # ------------------------------------------------------------------
    def _infer_entry_locksets(self) -> dict[str, frozenset[str]]:
        table = self.program.table
        graph = self.program.graph
        universe = frozenset(
            f"{cls}.{attr}"
            for cls, attrs in self.lock_attrs.items()
            for attr in attrs
        ) | frozenset(
            f"{module}.{name}"
            for module, names in self.module_locks.items()
            for name in names
        )
        if not universe:
            return {}
        # Entry contexts that provably start lock-free: spawn payloads
        # (a fresh thread/task holds nothing), value-referenced
        # callbacks (invocation context unknown) and call-graph roots.
        forced_empty = set(
            self.spawn_payloads(("task", "offload", "thread", "loop-hop"))
        )
        forced_empty.update(graph.value_refs)
        for qname in table.functions:
            if qname not in graph.in_edges:
                forced_empty.add(qname)
        held: dict[str, frozenset[str]] = {}
        for qname in table.functions:
            held[qname] = (
                frozenset() if qname in forced_empty else universe
            )
        changed = True
        while changed:
            changed = False
            for qname in table.functions:
                if qname in forced_empty:
                    continue
                met: frozenset[str] | None = None
                for site in graph.in_edges.get(qname, []):
                    caller_info = table.functions.get(site.caller)
                    at_site = self.lexical_lockset(site.node, caller_info)
                    at_site |= held.get(site.caller, frozenset())
                    met = at_site if met is None else (met & at_site)
                    if not met:
                        break
                new = met if met is not None else frozenset()
                if new != held[qname]:
                    held[qname] = new
                    changed = True
        return {q: s for q, s in held.items() if s}


def model_for(program: Program) -> ConcurrencyModel:
    """The (memoized) concurrency model of *program*."""
    model = getattr(program, "_concurrency_model", None)
    if model is None:
        model = ConcurrencyModel(program)
        program._concurrency_model = model
    return model
