"""File discovery, orchestration, and the ``repro lint`` entry point.

Pipeline per file: parse (:class:`FileContext`) → run the scoped
per-file rules → merge in whole-program findings (under
``--interprocedural``) → drop suppressed findings → append
suppression-hygiene findings (RL0).  Unparseable files surface as
``E999`` diagnostics rather than crashing the run, so one broken file
cannot hide findings in the rest.

Two optional layers wrap the per-file pipeline:

* the **incremental cache** (:mod:`repro.analysis.cache`) keyed by each
  file's SHA-256 skips parse + rule execution for unchanged files —
  suppression filtering is always re-applied so per-file and
  interprocedural findings merge correctly;
* the **interprocedural pass** links every parsed file into one
  :class:`~repro.analysis.callgraph.Program` and runs the registered
  program rules (RL6–RL11) over it, attributing findings back to files.

Exit codes: ``0`` clean, ``1`` findings, ``2`` usage error.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.analysis.cache import (
    DEFAULT_CACHE_PATH,
    LintCache,
    content_hash,
    program_key,
)
from repro.analysis.context import FileContext, SourceError
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import (
    BaseProgramRule,
    BaseRule,
    all_rules,
    known_codes,
    select_program_rules,
    select_rules,
)
from repro.analysis.reporters import (
    ScanSummary,
    render_github,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.suppressions import Suppression, SuppressionTable

#: Directory names never descended into.
_SKIP_DIRS = frozenset(
    {".git", "__pycache__", ".mypy_cache", ".ruff_cache", "build", "dist"}
)


def discover_files(paths: Iterable[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d not in _SKIP_DIRS and not d.startswith(".")
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        elif path.endswith(".py"):
            out.append(path)
        else:
            raise FileNotFoundError(
                f"{path!r} is neither a directory nor a .py file"
            )
    return sorted(dict.fromkeys(out))


# ----------------------------------------------------------------------
# Per-file analysis
# ----------------------------------------------------------------------
@dataclass(slots=True)
class FileAnalysis:
    """Pre-suppression state of one analyzed file."""

    path: str
    raw: list[Diagnostic] = field(default_factory=list)
    suppressions: list[Suppression] = field(default_factory=list)
    ctx: FileContext | None = None
    """Parsed context (``None`` on a cache hit or parse error)."""

    parse_error: bool = False

    def finish(
        self,
        program_diags: list[Diagnostic],
        run_codes: frozenset[str],
    ) -> list[Diagnostic]:
        """Apply suppressions and hygiene over all findings."""
        table = SuppressionTable(
            path=self.path, suppressions=self.suppressions
        )
        kept = table.filter(sorted(self.raw + program_diags))
        kept.extend(table.hygiene(known_codes(), run_codes=run_codes))
        return sorted(kept)


def _parse_error_diag(path: str, exc: SourceError) -> Diagnostic:
    return Diagnostic(
        path=path,
        line=exc.line,
        col=exc.col,
        code="E999",
        rule="parse-error",
        message=str(exc),
    )


def _read_error(path: str, exc: OSError) -> Diagnostic:
    return Diagnostic(
        path=path,
        line=1,
        col=0,
        code="E999",
        rule="parse-error",
        message=f"cannot read file: {exc}",
    )


def analyze_file(
    path: str,
    rules: Sequence[BaseRule],
    source: str | None = None,
) -> FileAnalysis:
    """Parse one file and run the per-file rules (no suppression yet)."""
    analysis = FileAnalysis(path=path)
    if source is None:
        try:
            with open(path, encoding="utf-8") as f:
                source = f.read()
        except OSError as exc:
            analysis.raw.append(_read_error(path, exc))
            analysis.parse_error = True
            return analysis
    try:
        ctx = FileContext.from_source(path, source)
    except SourceError as exc:
        analysis.raw.append(_parse_error_diag(path, exc))
        analysis.parse_error = True
        return analysis
    analysis.ctx = ctx
    for rule in rules:
        if rule.applies_to(ctx):
            analysis.raw.extend(rule.check(ctx))
    analysis.suppressions = SuppressionTable.from_source(
        path, source
    ).suppressions
    return analysis


def lint_file(
    path: str,
    rules: Sequence[BaseRule] | None = None,
    source: str | None = None,
) -> list[Diagnostic]:
    """All post-suppression diagnostics for one file (per-file rules)."""
    active = list(all_rules()) if rules is None else list(rules)
    analysis = analyze_file(path, active, source=source)
    run_codes = frozenset(r.code for r in active) | {"RL0", "E999"}
    return analysis.finish([], run_codes)


# ----------------------------------------------------------------------
# Whole-tree orchestration
# ----------------------------------------------------------------------
def _program_diagnostics(
    analyses: dict[str, FileAnalysis],
    program_rules: Sequence[BaseProgramRule],
) -> list[Diagnostic]:
    """Link every parsed file and run the interprocedural rules."""
    from repro.analysis.callgraph import Program

    contexts = [
        analyses[path].ctx
        for path in sorted(analyses)
        if analyses[path].ctx is not None
    ]
    program = Program.build([c for c in contexts if c is not None])
    diags: list[Diagnostic] = []
    for rule in program_rules:
        diags.extend(rule.check_program(program))
    return sorted(diags)


def lint_paths(
    paths: Iterable[str],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    interprocedural: bool = False,
    cache_path: str | None = None,
) -> tuple[list[Diagnostic], ScanSummary]:
    """Lint every ``.py`` file under *paths*.

    ``interprocedural=True`` additionally links the files into one
    program and runs the registered program rules (RL6–RL13).
    ``cache_path`` enables the incremental result cache.
    """
    file_rules = select_rules(select, ignore)
    program_rules: list[BaseProgramRule] = (
        select_program_rules(select, ignore) if interprocedural else []
    )
    run_codes = (
        frozenset(r.code for r in file_rules)
        | frozenset(r.code for r in program_rules)
        | {"RL0", "E999"}
    )
    codes_key = ",".join(sorted(r.code for r in file_rules))
    summary = ScanSummary(
        rules_run=sorted(
            [r.code for r in file_rules] + [r.code for r in program_rules]
        )
    )
    files = discover_files(paths)
    cache = LintCache(cache_path) if cache_path is not None else None

    analyses: dict[str, FileAnalysis] = {}
    hashes: dict[str, str] = {}
    sources: dict[str, str] = {}
    for path in files:
        try:
            with open(path, "rb") as f:
                data = f.read()
        except OSError as exc:
            analysis = FileAnalysis(path=path)
            analysis.raw.append(_read_error(path, exc))
            analysis.parse_error = True
            analyses[path] = analysis
            continue
        digest = content_hash(data)
        hashes[path] = digest
        source = data.decode("utf-8", errors="replace")
        sources[path] = source
        cached = (
            cache.get_file(path, digest, codes_key)
            if cache is not None
            else None
        )
        if cached is not None:
            raw, suppressions = cached
            analysis = FileAnalysis(
                path=path,
                raw=raw,
                suppressions=suppressions,
                parse_error=any(d.code == "E999" for d in raw),
            )
        else:
            analysis = analyze_file(path, file_rules, source=source)
            if cache is not None:
                cache.put_file(
                    path,
                    digest,
                    codes_key,
                    analysis.raw,
                    analysis.suppressions,
                )
        analyses[path] = analysis

    program_diags: dict[str, list[Diagnostic]] = {}
    if program_rules:
        from repro.analysis.cfg import FLOW_MODEL_VERSION
        from repro.analysis.concurrency import CONCURRENCY_MODEL_VERSION

        key = program_key(
            sorted(r.code for r in program_rules),
            sorted(hashes.items()),
            model_version=(
                f"{CONCURRENCY_MODEL_VERSION}+{FLOW_MODEL_VERSION}"
            ),
        )
        cached_prog = (
            cache.get_program(key) if cache is not None else None
        )
        if cached_prog is None:
            for path in sorted(analyses):
                analysis = analyses[path]
                if analysis.ctx is None and not analysis.parse_error:
                    # Cache hit earlier: re-parse just for linking.
                    try:
                        analysis.ctx = FileContext.from_source(
                            path, sources[path]
                        )
                    except SourceError:  # pragma: no cover - raced edit
                        analysis.parse_error = True
            cached_prog = _program_diagnostics(analyses, program_rules)
            if cache is not None:
                cache.put_program(key, cached_prog)
        for diag in cached_prog:
            program_diags.setdefault(diag.path, []).append(diag)

    diagnostics: list[Diagnostic] = []
    for path in files:
        analysis = analyses[path]
        found = analysis.finish(program_diags.get(path, []), run_codes)
        summary.files_scanned += 1
        if any(d.code == "E999" for d in found):
            summary.files_failed += 1
        diagnostics.extend(found)
    if cache is not None:
        cache.save()
    return sorted(diagnostics), summary


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "repro-lint: AST-based invariant linter (journal-bypass, "
            "determinism, transaction-safety, exception taxonomy, "
            "strict typing, and — with --interprocedural — "
            "process-boundary safety, journal coverage, shared-state "
            "races, and async/thread concurrency discipline over the "
            "whole-program call graph)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif", "github"],
        default="text",
        help="output format (default: text; 'github' emits GitHub "
        "Actions ::error annotations)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run exclusively (e.g. RL1,RL2)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--interprocedural",
        action="store_true",
        help="link all files into one program and run the "
        "interprocedural rules (RL6-RL11) as well",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental result cache",
    )
    parser.add_argument(
        "--cache-file",
        metavar="PATH",
        default=DEFAULT_CACHE_PATH,
        help=f"cache file location (default: {DEFAULT_CACHE_PATH})",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _split_codes(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [c.strip() for c in raw.split(",") if c.strip()]


def _print_catalog() -> None:
    from repro.analysis.registry import all_program_rules

    for rule in all_rules():
        scope = (
            ", ".join(s or "<root>" for s in rule.enforced)
            if rule.enforced is not None
            else "all packages"
        )
        print(f"{rule.code}  {rule.name}  [{scope}]")
        print(f"      {rule.summary}")
    for prule in all_program_rules():
        scope = (
            ", ".join(s or "<root>" for s in prule.enforced)
            if prule.enforced is not None
            else "all packages"
        )
        print(f"{prule.code}  {prule.name}  [{scope}]  (--interprocedural)")
        print(f"      {prule.summary}")
    print("RL0  suppression-hygiene  [all packages]")
    print(
        "      suppressions must carry '-- justification', name "
        "known codes, and match a finding"
    )


def run(argv: Sequence[str] | None = None) -> int:
    """The ``repro lint`` / ``python -m repro.analysis`` entry point."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_catalog()
        return 0
    cache_path = None if args.no_cache else args.cache_file
    try:
        diagnostics, summary = lint_paths(
            args.paths,
            select=_split_codes(args.select),
            ignore=_split_codes(args.ignore),
            interprocedural=args.interprocedural,
            cache_path=cache_path,
        )
    except (FileNotFoundError, KeyError) as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    renderer = {
        "github": render_github,
        "json": render_json,
        "sarif": render_sarif,
        "text": render_text,
    }[args.format]
    print(renderer(diagnostics, summary))
    return 1 if diagnostics else 0


def main() -> None:  # pragma: no cover - thin shell wrapper
    sys.exit(run())
