"""File discovery, orchestration, and the ``repro lint`` entry point.

Pipeline per file: parse (:class:`FileContext`) → run the scoped rules
→ drop suppressed findings → append suppression-hygiene findings (RL0).
Unparseable files surface as ``E999`` diagnostics rather than crashing
the run, so one broken file cannot hide findings in the rest.

Exit codes: ``0`` clean, ``1`` findings, ``2`` usage error.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Iterable, Sequence

from repro.analysis.context import FileContext, SourceError
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import BaseRule, all_rules, known_codes, select_rules
from repro.analysis.reporters import ScanSummary, render_json, render_text
from repro.analysis.suppressions import SuppressionTable

#: Directory names never descended into.
_SKIP_DIRS = frozenset(
    {".git", "__pycache__", ".mypy_cache", ".ruff_cache", "build", "dist"}
)


def discover_files(paths: Iterable[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d not in _SKIP_DIRS and not d.startswith(".")
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        elif path.endswith(".py"):
            out.append(path)
        else:
            raise FileNotFoundError(
                f"{path!r} is neither a directory nor a .py file"
            )
    return sorted(dict.fromkeys(out))


def lint_file(
    path: str,
    rules: Sequence[BaseRule] | None = None,
    source: str | None = None,
) -> list[Diagnostic]:
    """All post-suppression diagnostics for one file."""
    if source is None:
        try:
            with open(path, encoding="utf-8") as f:
                source = f.read()
        except OSError as exc:
            return [_read_error(path, exc)]
    try:
        ctx = FileContext.from_source(path, source)
    except SourceError as exc:
        return [
            Diagnostic(
                path=path,
                line=exc.line,
                col=exc.col,
                code="E999",
                rule="parse-error",
                message=str(exc),
            )
        ]
    raw: list[Diagnostic] = []
    for rule in all_rules() if rules is None else rules:
        if rule.applies_to(ctx):
            raw.extend(rule.check(ctx))
    table = SuppressionTable.from_source(path, source)
    kept = table.filter(raw)
    kept.extend(table.hygiene(known_codes()))
    return sorted(kept)


def _read_error(path: str, exc: OSError) -> Diagnostic:
    return Diagnostic(
        path=path,
        line=1,
        col=0,
        code="E999",
        rule="parse-error",
        message=f"cannot read file: {exc}",
    )


def lint_paths(
    paths: Iterable[str],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> tuple[list[Diagnostic], ScanSummary]:
    """Lint every ``.py`` file under *paths*."""
    rules = select_rules(select, ignore)
    summary = ScanSummary(rules_run=[r.code for r in rules])
    diagnostics: list[Diagnostic] = []
    for path in discover_files(paths):
        found = lint_file(path, rules=rules)
        summary.files_scanned += 1
        if any(d.code == "E999" for d in found):
            summary.files_failed += 1
        diagnostics.extend(found)
    return sorted(diagnostics), summary


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "repro-lint: AST-based invariant linter (journal-bypass, "
            "determinism, transaction-safety, exception taxonomy, "
            "strict typing)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run exclusively (e.g. RL1,RL2)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _split_codes(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [c.strip() for c in raw.split(",") if c.strip()]


def run(argv: Sequence[str] | None = None) -> int:
    """The ``repro lint`` / ``python -m repro.analysis`` entry point."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            scope = (
                ", ".join(rule.enforced)
                if rule.enforced is not None
                else "all packages"
            )
            print(f"{rule.code}  {rule.name}  [{scope}]")
            print(f"      {rule.summary}")
        print("RL0  suppression-hygiene  [all packages]")
        print(
            "      suppressions must carry '-- justification', name "
            "known codes, and match a finding"
        )
        return 0
    try:
        diagnostics, summary = lint_paths(
            args.paths,
            select=_split_codes(args.select),
            ignore=_split_codes(args.ignore),
        )
    except (FileNotFoundError, KeyError) as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    renderer = render_json if args.format == "json" else render_text
    print(renderer(diagnostics, summary))
    return 1 if diagnostics else 0


def main() -> None:  # pragma: no cover - thin shell wrapper
    sys.exit(run())
