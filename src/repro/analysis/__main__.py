"""``python -m repro.analysis [paths...]`` — run repro-lint."""

import sys

from repro.analysis.runner import run

if __name__ == "__main__":
    sys.exit(run())
