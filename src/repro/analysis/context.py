"""Per-file analysis context shared by every rule.

:class:`FileContext` owns the parsed AST (with parent back-links), the
source text, and the file's *logical subpackage* — the path component
after the ``repro`` package root (``"core"``, ``"engine"``, ...), used
by the registry to scope rules to the packages whose invariants they
guard.  Files outside any ``repro`` package (e.g. the test fixture
corpus) have no subpackage and are checked by **all** rules, which is
what makes the fixtures exercisable without replicating the tree layout.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

#: Attribute set on every AST node pointing at its parent node.
_PARENT = "_repro_lint_parent"


class SourceError(Exception):
    """The file could not be read or parsed (reported as code E999)."""

    def __init__(self, message: str, line: int = 1, col: int = 0) -> None:
        super().__init__(message)
        self.line = line
        self.col = col


def _link_parents(tree: ast.AST) -> None:
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            setattr(child, _PARENT, node)


def parent_of(node: ast.AST) -> ast.AST | None:
    """The syntactic parent of *node*, or ``None`` at the module root."""
    return getattr(node, _PARENT, None)


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    """Parents of *node*, innermost first, up to the module."""
    cur = parent_of(node)
    while cur is not None:
        yield cur
        cur = parent_of(cur)


def enclosing_function(
    node: ast.AST,
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    """The innermost function definition containing *node*, if any."""
    for anc in ancestors(node):
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return anc
    return None


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``.

    Call results and subscripts break the chain (``f().x`` → ``None``)
    because the receiver's identity is no longer a static name.
    """
    parts: list[str] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    return ".".join(reversed(parts))


def call_name(node: ast.Call) -> str | None:
    """Dotted name of a call's callee, or ``None`` for dynamic callees."""
    return dotted_name(node.func)


def repro_subpackage(path: str) -> str | None:
    """Logical subpackage of *path* within the ``repro`` package.

    ``src/repro/core/mll.py`` → ``"core"``; ``src/repro/cli.py`` →
    ``""`` (package root); paths with no ``repro`` directory component
    → ``None`` (unscoped: every rule applies).
    """
    parts = path.replace("\\", "/").split("/")
    for i in range(len(parts) - 2, -1, -1):
        if parts[i] == "repro":
            rest = parts[i + 1 : -1]
            return rest[0] if rest else ""
    return None


@dataclass(slots=True)
class FileContext:
    """Everything a rule needs to know about one source file."""

    path: str
    source: str
    tree: ast.Module
    subpackage: str | None
    module_name: str
    lines: list[str] = field(default_factory=list)

    @classmethod
    def from_source(cls, path: str, source: str) -> "FileContext":
        """Parse *source*; raises :class:`SourceError` on a syntax error."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            raise SourceError(
                f"syntax error: {exc.msg}",
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
            ) from exc
        _link_parents(tree)
        name = path.replace("\\", "/").rsplit("/", 1)[-1]
        return cls(
            path=path,
            source=source,
            tree=tree,
            subpackage=repro_subpackage(path),
            module_name=name,
            lines=source.splitlines(),
        )

    @classmethod
    def from_file(cls, path: str) -> "FileContext":
        """Read and parse *path*; raises :class:`SourceError` on failure."""
        try:
            with open(path, encoding="utf-8") as f:
                source = f.read()
        except OSError as exc:
            raise SourceError(f"cannot read file: {exc}") from exc
        return cls.from_source(path, source)
