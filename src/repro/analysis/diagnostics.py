"""Diagnostic records emitted by the repro-lint rules.

A :class:`Diagnostic` is one finding: a rule code, a location, and a
human-readable message.  Diagnostics are plain values — rules produce
them, the suppression layer filters them, reporters render them — so
every stage of the pipeline stays independently testable.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True, order=True)
class Diagnostic:
    """One static-analysis finding.

    The field order doubles as the sort order (path, then line, then
    column, then code), which gives every reporter a stable, diffable
    output ordering regardless of rule registration order.
    """

    path: str
    """File the finding is in, as passed to the runner (relative paths
    stay relative so output is machine-independent)."""

    line: int
    """1-based line of the offending node."""

    col: int
    """0-based column of the offending node."""

    code: str
    """Rule code, e.g. ``"RL1"``."""

    rule: str
    """Short rule name, e.g. ``"journal-bypass"``."""

    message: str
    """What is wrong and what to do instead."""

    def to_dict(self) -> dict[str, str | int]:
        """JSON-ready representation (used by the JSON reporter)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "rule": self.rule,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, str | int]) -> "Diagnostic":
        """Inverse of :meth:`to_dict` (used by the incremental cache)."""
        return cls(
            path=str(doc["path"]),
            line=int(doc["line"]),
            col=int(doc["col"]),
            code=str(doc["code"]),
            rule=str(doc["rule"]),
            message=str(doc["message"]),
        )

    def render(self) -> str:
        """Canonical one-line text form: ``path:line:col: CODE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
