"""RL7: interprocedural journal coverage.

RL3 checks that mutation primitives sit lexically inside
``with Transaction(...)`` — but only within one file.  A helper that
calls ``design.place`` two frames below an entry point passes RL3 in
its own file while the entry point passes in *its* file, and the
program as a whole still reaches a mutation primitive with no
transaction anywhere on the path: rollback then restores less than the
commit-or-restore contract promises.

This rule computes the transitive closure RL3 cannot see.  A function
is **exposed** when some call path from it reaches a placement
primitive (``place``/``unplace``/``shift_x``/``realize_insertion``)
with no ``with Transaction(...)`` scope at any call site along the
path.  Exposure is seeded at unprotected primitive call sites and
propagated caller-ward over the call graph, stopping at call sites
that are themselves inside a transaction scope.  Only **call-graph
roots** (functions nothing in the program calls or references) are
reported — interior functions are legitimately bare because *their*
callers own the transaction; a root has no caller left to own it.

``repro.db`` is exempt wholesale: it is the primitive layer itself
(rollback replays mutations outside any transaction, by design).
``add_cell`` is deliberately not a seed — construction-time population
of a fresh ``Design`` precedes any journal and is not a legalization
mutation.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.callgraph import CallSite, Program
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import BaseProgramRule, register_program

#: Method names that mutate placement state under the journal contract.
PRIMITIVE_NAMES: frozenset[str] = frozenset(
    {"place", "unplace", "shift_x", "realize_insertion"}
)

#: Fully-qualified definitions of the journaled primitives.
PRIMITIVE_QNAMES: frozenset[str] = frozenset(
    {
        "repro.db.design.Design.place",
        "repro.db.design.Design.unplace",
        "repro.db.design.Design.shift_x",
        "repro.core.realization.realize_insertion",
    }
)


def _is_primitive_site(site: CallSite) -> bool:
    if site.callee is not None:
        return site.callee in PRIMITIVE_QNAMES
    tail = site.raw.rsplit(".", 1)[-1]
    return tail in PRIMITIVE_NAMES and "." in site.raw


def _in_db(qname: str) -> bool:
    return qname.startswith("repro.db.")


@register_program
class JournalFlowRule(BaseProgramRule):
    """Call chains must not reach a mutation primitive from outside
    every ``Transaction`` scope."""

    code = "RL7"
    name = "journal-flow"
    summary = (
        "call chains reaching a mutation primitive must pass through "
        "a Transaction scope somewhere on the path"
    )
    enforced = ("", "core", "engine", "apps", "io", "checker", "serve")

    def check_program(self, program: Program) -> Iterator[Diagnostic]:
        graph = program.graph
        # Witness per exposed function: (next hop or None, the site).
        exposed: dict[str, tuple[str | None, CallSite]] = {}
        worklist: list[str] = []
        for site in graph.sites:
            if (
                _is_primitive_site(site)
                and not site.in_transaction
                and not _in_db(site.caller)
                and site.caller not in exposed
            ):
                exposed[site.caller] = (None, site)
                worklist.append(site.caller)
        while worklist:
            fn = worklist.pop()
            for site in graph.in_edges.get(fn, []):
                if site.in_transaction or _in_db(site.caller):
                    continue
                if site.caller not in exposed:
                    exposed[site.caller] = (fn, site)
                    worklist.append(site.caller)
        for qname in sorted(exposed):
            if not graph.is_root(qname):
                continue
            if not self._in_scope(program, qname):
                continue
            yield self._report(program, qname, exposed)

    # ------------------------------------------------------------------
    def _in_scope(self, program: Program, qname: str) -> bool:
        if self.enforced is None:
            return True
        path = self._path_of(program, qname)
        if path is None:
            return False
        ctx = program.contexts.get(path)
        if ctx is None or ctx.subpackage is None:
            return True  # fixtures: every rule applies
        return ctx.subpackage in self.enforced

    def _path_of(self, program: Program, qname: str) -> str | None:
        info = program.table.functions.get(qname)
        if info is not None:
            return info.path
        if qname.endswith(".<module>"):
            module = qname[: -len(".<module>")]
            for path in sorted(program.contexts):
                from repro.analysis.callgraph import module_name_of

                if module_name_of(path) == module:
                    return path
        return None

    def _report(
        self,
        program: Program,
        root: str,
        exposed: dict[str, tuple[str | None, CallSite]],
    ) -> Diagnostic:
        chain: list[str] = [root]
        cursor: str | None = root
        terminal: CallSite = exposed[root][1]
        while cursor is not None:
            nxt, site = exposed[cursor]
            terminal = site
            if nxt is None:
                chain.append(site.raw)
            else:
                chain.append(nxt)
            cursor = nxt
        info = program.table.functions.get(root)
        path = self._path_of(program, root) or terminal.path
        line = info.lineno if info is not None else terminal.lineno
        col = 0 if info is not None else terminal.col
        arrow = " -> ".join(_short(c) for c in chain)
        return self.diag_at(
            path,
            line,
            col,
            f"call chain reaches mutation primitive outside a "
            f"Transaction scope: {arrow} "
            f"(unprotected site {terminal.path}:{terminal.lineno}); "
            "wrap the mutation in `with Transaction(design):` at the "
            "level that owns the commit-or-restore decision",
        )


def _short(qname: str) -> str:
    """Trim the ``repro.`` prefix for readable chains."""
    return qname[6:] if qname.startswith("repro.") else qname
