"""RL14: hot-path performance lint for the numeric kernels.

PR 7 rewrote the MLL hot path as a vectorized SoA kernel precisely
because per-element Python dispatch over numpy arrays was the dominant
cost; this rule keeps that property from regressing.  It runs only
over the kernel modules (``core/``) and flags three anti-patterns that
re-introduce interpreter-bound inner loops:

* **object-dtype arrays** — ``np.array(..., dtype=object)`` (and
  ``empty``/``zeros``/``ones``/``full``) box every element and defeat
  every vectorized sweep downstream;
* **per-element loops over ndarrays inside loops** — a ``for`` that
  walks an ndarray (directly, via ``range(len(a))`` /
  ``range(a.shape[0])``, or ``enumerate(a)``) at loop depth ≥ 2 in the
  CFG, i.e. an O(n) Python loop already nested inside another loop;
* **repeated scalar fancy-indexing** — three or more textually
  identical scalar subscript loads ``a[i]`` of the same ndarray inside
  one natural loop body; hoist the load or vectorize the sweep.

ndarray-ness is tracked syntactically: names assigned from ``np.*`` /
``numpy.*`` calls, or annotated ``ndarray``/``NDArray`` (parameters
included).  That is deliberately shallow — the kernels are small and
fully annotated, and a shallow model keeps the rule cheap enough to
run per-file on every lint.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import dotted
from repro.analysis.cfg import CFG, build_cfg, header_walk
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import BaseRule, FileContext, register

_FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef

_ARRAY_CTORS = frozenset(
    {"array", "empty", "zeros", "ones", "full", "asarray"}
)
_NDARRAY_ANNOTATIONS = frozenset({"ndarray", "NDArray"})


@register
class HotPathRule(BaseRule):
    """Keep the numeric kernels free of interpreter-bound inner loops."""

    code = "RL14"
    name = "hot-path-perf"
    summary = (
        "kernel modules must not create object-dtype arrays, walk "
        "ndarrays element-by-element inside nested loops, or repeat "
        "scalar fancy-indexing a vectorized sweep would replace"
    )
    enforced = ("core",)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and _is_object_dtype(node):
                yield self.diag(
                    ctx,
                    node,
                    "object-dtype array construction in a kernel "
                    "module boxes every element and defeats "
                    "vectorization; use a numeric dtype or a plain "
                    "list",
                )
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: FileContext, func: _FunctionNode
    ) -> Iterator[Diagnostic]:
        arrays = _ndarray_names(func)
        if not arrays:
            return
        cfg = build_cfg(func)
        loops = cfg.natural_loops()
        for stmt in cfg.statements():
            if not isinstance(stmt, (ast.For, ast.AsyncFor)):
                continue
            target = _iterated_array(stmt.iter, arrays)
            if target is None:
                continue
            bid = cfg.block_of_stmt(stmt)
            if bid is not None and cfg.loop_depth(bid) >= 2:
                yield self.diag(
                    ctx,
                    stmt,
                    f"per-element Python loop over ndarray "
                    f"`{target}` inside another loop; hoist or "
                    "replace the inner sweep with a vectorized "
                    "numpy operation",
                )
        scalars = _range_loop_targets(func)
        flagged: set[tuple[int, int, str]] = set()
        for _header, body in loops:
            yield from self._repeated_scalar_loads(
                ctx, cfg, body, arrays, scalars, flagged
            )

    def _repeated_scalar_loads(
        self,
        ctx: FileContext,
        cfg: CFG,
        body: frozenset[int],
        arrays: frozenset[str],
        scalars: frozenset[str],
        flagged: set[tuple[int, int, str]],
    ) -> Iterator[Diagnostic]:
        counts: dict[str, list[ast.Subscript]] = {}
        for bid in sorted(body):
            for stmt in cfg.blocks[bid].statements:
                for node in header_walk(stmt):
                    if not (
                        isinstance(node, ast.Subscript)
                        and isinstance(node.ctx, ast.Load)
                        and isinstance(node.value, ast.Name)
                        and node.value.id in arrays
                        and _is_scalar_index(node.slice, scalars)
                    ):
                        continue
                    counts.setdefault(ast.unparse(node), []).append(
                        node
                    )
        for text, sites in sorted(counts.items()):
            if len(sites) < 3:
                continue
            first = min(
                sites, key=lambda n: (n.lineno, n.col_offset)
            )
            key = (first.lineno, first.col_offset, text)
            if key in flagged:
                continue
            flagged.add(key)
            yield self.diag(
                ctx,
                first,
                f"scalar load `{text}` repeated {len(sites)} times "
                "in one loop body; hoist it to a local or vectorize "
                "the sweep",
            )


def _range_loop_targets(func: _FunctionNode) -> frozenset[str]:
    """Names bound as ``for i in range(...)``/``enumerate(...)`` loop
    variables — the only subscripts we can prove are scalar loads (an
    index that is itself an array is a vectorized gather)."""
    out: set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, (ast.For, ast.AsyncFor)):
            continue
        if not (
            isinstance(node.iter, ast.Call)
            and dotted(node.iter.func) in ("range", "enumerate")
        ):
            continue
        targets = (
            node.target.elts
            if isinstance(node.target, ast.Tuple)
            else [node.target]
        )
        for target in targets:
            if isinstance(target, ast.Name):
                out.add(target.id)
    return frozenset(out)


def _is_scalar_index(
    index: ast.expr, scalars: frozenset[str]
) -> bool:
    if isinstance(index, ast.Constant):
        return isinstance(index.value, int)
    return isinstance(index, ast.Name) and index.id in scalars


def _is_object_dtype(call: ast.Call) -> bool:
    name = dotted(call.func)
    if name is None:
        return False
    parts = name.split(".")
    if len(parts) != 2 or parts[0] not in ("np", "numpy"):
        return False
    if parts[1] not in _ARRAY_CTORS:
        return False
    for kw in call.keywords:
        if kw.arg != "dtype":
            continue
        if isinstance(kw.value, ast.Name) and kw.value.id == "object":
            return True
        if (
            isinstance(kw.value, ast.Constant)
            and kw.value.value == "object"
        ):
            return True
        if dotted(kw.value) in ("np.object_", "numpy.object_"):
            return True
    return False


def _ndarray_names(func: _FunctionNode) -> frozenset[str]:
    names: set[str] = set()
    args = func.args
    for arg in [
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
    ]:
        if arg.annotation is not None and _is_ndarray_annotation(
            arg.annotation
        ):
            names.add(arg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and isinstance(
            node.value, ast.Call
        ):
            callee = dotted(node.value.func)
            if callee is not None and callee.split(".")[0] in (
                "np",
                "numpy",
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            if _is_ndarray_annotation(node.annotation):
                names.add(node.target.id)
    return frozenset(names)


def _is_ndarray_annotation(annotation: ast.expr) -> bool:
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    name = dotted(annotation)
    if name is None:
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            return any(
                part in annotation.value
                for part in _NDARRAY_ANNOTATIONS
            )
        return False
    return name.rsplit(".", 1)[-1] in _NDARRAY_ANNOTATIONS


def _iterated_array(
    iter_expr: ast.expr, arrays: frozenset[str]
) -> str | None:
    """The ndarray name *iter_expr* walks element-by-element, if any."""
    if isinstance(iter_expr, ast.Name) and iter_expr.id in arrays:
        return iter_expr.id
    if not isinstance(iter_expr, ast.Call):
        return None
    callee = dotted(iter_expr.func)
    if callee == "enumerate" and iter_expr.args:
        arg = iter_expr.args[0]
        if isinstance(arg, ast.Name) and arg.id in arrays:
            return arg.id
        return None
    if callee == "range" and len(iter_expr.args) == 1:
        arg = iter_expr.args[0]
        if (
            isinstance(arg, ast.Call)
            and dotted(arg.func) == "len"
            and arg.args
            and isinstance(arg.args[0], ast.Name)
            and arg.args[0].id in arrays
        ):
            return arg.args[0].id
        if (
            isinstance(arg, ast.Subscript)
            and isinstance(arg.value, ast.Attribute)
            and arg.value.attr == "shape"
            and isinstance(arg.value.value, ast.Name)
            and arg.value.value.id in arrays
            and isinstance(arg.slice, ast.Constant)
        ):
            return arg.value.value.id
    return None
