"""RL10: no blocking work on the event loop.

The serve layer's liveness contract is that every ``async def`` frame
finishes its synchronous slices in microseconds: anything slow —
filesystem traffic, a full legalization run, a design mutation under
the journal — runs in a worker thread via ``asyncio.to_thread`` so the
loop keeps accepting connections and streaming progress.  A blocking
call reached *synchronously* from an async frame stalls every session
on the server at once.

A direct resolved call edge from an ``async def`` frame is flagged when
the callee is

* a known long-running engine entry point (full legalizer /
  sharded-engine / session-execute runs), or
* transitively ``mutates-design`` per the effect lattice (design
  mutation belongs in a job thread, under the journal), or
* transitively file-blocking: ``open``, ``Path`` IO methods,
  ``os``/``shutil``/``json.dump``/``pickle`` file traffic, or
  ``time.sleep`` (``print`` to a console is exempt — the CLI banner is
  not a liveness hazard).

Edges into other ``async def`` frames are skipped (each async frame is
checked on its own), and ``await asyncio.to_thread(fn, ...)`` is
naturally exempt: ``fn`` travels as a value reference, not a call, so
the offloaded work never creates a call edge from the async frame.
The traversal into a sync callee likewise stops at nested async
frames.  Unresolved calls are still checked syntactically at the site
(``open(...)``, ``path.write_text(...)``, ``time.sleep(...)`` inline
in an async body).
"""

from __future__ import annotations

import ast
from typing import Callable, Iterator

from repro.analysis.callgraph import FunctionInfo, Program, dotted, own_nodes
from repro.analysis.concurrency import model_for
from repro.analysis.dataflow import (
    MUTATES,
    _IO_DOTTED_CALLS,
    _IO_METHOD_ATTRS,
    EffectSummary,
    infer_effects,
)
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import BaseProgramRule, register_program

#: Engine entry points that run for seconds to minutes by design.
LONG_RUNNING: frozenset[str] = frozenset(
    {
        "repro.core.legalizer.Legalizer.run",
        "repro.engine.executor.legalize_sharded",
        "repro.engine.shard_worker.run_shard",
        "repro.serve.session.DesignSession.execute",
    }
)

#: Console writes are not a loop-liveness hazard.
_CONSOLE_WRITES: frozenset[str] = frozenset(
    {"sys.stdout.write", "sys.stderr.write"}
)

_BLOCKING_DOTTED: frozenset[str] = (
    _IO_DOTTED_CALLS - _CONSOLE_WRITES
) | frozenset({"time.sleep", "socket.create_connection"})


def _node_blocks(node: ast.Call) -> bool:
    """Syntactically file-blocking call, independent of resolution."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "open"
    if isinstance(func, ast.Attribute):
        if func.attr in _IO_METHOD_ATTRS:
            return True
        name = dotted(func)
        return name is not None and name in _BLOCKING_DOTTED
    return False


@register_program
class BlockingInLoopRule(BaseProgramRule):
    """Async frames must off-load slow or mutating work."""

    code = "RL10"
    name = "blocking-in-loop"
    summary = (
        "async frames must not reach long-running, design-mutating or "
        "file-blocking work synchronously; off-load it with "
        "asyncio.to_thread or an executor"
    )
    enforced = ("", "core", "engine", "apps", "io", "checker", "serve")

    def check_program(self, program: Program) -> Iterator[Diagnostic]:
        model = model_for(program)
        if not model.async_functions:
            return
        summaries = infer_effects(program)
        blocking_memo: dict[str, bool] = {}

        def blocks(qname: str) -> bool:
            """Sync *qname* reaches a syntactic blocker (memoized BFS,
            never descending into async frames)."""
            known = blocking_memo.get(qname)
            if known is not None:
                return known
            blocking_memo[qname] = False  # cycle guard
            info = program.table.functions.get(qname)
            if info is not None and self._own_blocker(info) is not None:
                blocking_memo[qname] = True
                return True
            for callee in program.graph.callees_of(qname):
                if callee in model.async_functions:
                    continue
                if blocks(callee):
                    blocking_memo[qname] = True
                    return True
            return False

        seen: set[tuple[str, int, int]] = set()
        for qname in sorted(model.async_functions):
            info = program.table.functions[qname]
            if not self._in_scope(program, info.path):
                continue
            for site in program.graph.out_edges.get(qname, []):
                key = (site.path, site.lineno, site.col)
                if key in seen:
                    continue
                callee = site.callee
                if callee is None:
                    if _node_blocks(site.node):
                        seen.add(key)
                        yield self.diag_at(
                            site.path,
                            site.lineno,
                            site.col,
                            f"blocking call {site.raw} in async frame "
                            f"{_short(qname)}: file IO / sleeps stall "
                            "the event loop; off-load with "
                            "asyncio.to_thread",
                        )
                    continue
                if callee in model.async_functions:
                    continue
                reason = self._reason(
                    callee, summaries, blocks
                )
                if reason is not None:
                    seen.add(key)
                    yield self.diag_at(
                        site.path,
                        site.lineno,
                        site.col,
                        f"async frame {_short(qname)} calls "
                        f"{_short(callee)} synchronously, which "
                        f"{reason}; run it via asyncio.to_thread (or "
                        "an executor) so the loop stays responsive",
                    )

    # ------------------------------------------------------------------
    def _reason(
        self,
        callee: str,
        summaries: "dict[str, EffectSummary]",
        blocks: "Callable[[str], bool]",
    ) -> str | None:
        if callee in LONG_RUNNING:
            return "is a long-running engine entry point"
        summary = summaries.get(callee)
        if summary is not None and MUTATES in summary.transitive:
            return (
                "transitively mutates the design (effect "
                f"{MUTATES!r} — journal work belongs in a job thread)"
            )
        if blocks(callee):
            return "transitively performs blocking file IO or sleeps"
        return None

    def _own_blocker(self, info: FunctionInfo) -> ast.Call | None:
        for node in own_nodes(info.node):
            if isinstance(node, ast.Call) and _node_blocks(node):
                return node
        return None

    def _in_scope(self, program: Program, path: str) -> bool:
        ctx = program.contexts.get(path)
        if ctx is None or ctx.subpackage is None:
            return True
        return ctx.subpackage in self.enforced


def _short(qname: str) -> str:
    return qname[6:] if qname.startswith("repro.") else qname
