"""Process-boundary spawn-site detection shared by RL6 and RL8.

A *spawn site* is a call that ships a callable into another process:

* ``pool.submit(fn, *args)`` on a :class:`ProcessPoolExecutor`-typed
  receiver,
* ``pool.map(fn, items)`` (and the ``imap``/``starmap``/``apply_async``
  family) on a pool-typed receiver,
* ``Process(target=fn, args=(...))`` / ``ctx.Process(target=fn, ...)``
  — any call named ``Process`` carrying a ``target=`` keyword,
* ``pack_payload(obj)`` (:mod:`repro.engine.wire`) — the TCP transport's
  pickle boundary: no callable crosses, but *obj* travels to another
  host and must satisfy the same picklable-value-object contract as
  pool arguments (kind ``"wire"``, payload ``None``).

The receiver's pool type comes from the call graph's light local type
inference (``with ProcessPoolExecutor(...) as pool`` / annotated
parameters), so an arbitrary ``foo.map(...)`` on a list does not
register.  ``Process(target=...)`` is matched by name alone: the
keyword signature is distinctive enough, and a false spawn site merely
subjects the payload to picklability rules it should satisfy anyway.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.callgraph import (
    FunctionInfo,
    Program,
    module_name_of,
    own_nodes,
)
from repro.analysis.context import FileContext

#: Receiver types that fan work out to other processes.
POOL_TYPES: frozenset[str] = frozenset({"ProcessPoolExecutor", "Pool"})

_SUBMIT_METHODS: frozenset[str] = frozenset({"submit"})
_MAP_METHODS: frozenset[str] = frozenset(
    {"map", "imap", "imap_unordered", "starmap", "apply", "apply_async"}
)


@dataclass(slots=True)
class SpawnSite:
    """One call that hands a callable to another process."""

    call: ast.Call
    kind: str
    """``"submit"`` | ``"map"`` | ``"process"`` | ``"wire"``."""

    payload: ast.expr | None
    """The callable expression shipped across the boundary."""

    payload_args: list[ast.expr] = field(default_factory=list)
    """Argument expressions travelling with it (must pickle too)."""

    caller: str = ""
    """Qualified name of the enclosing function (or ``mod.<module>``)."""

    local_types: dict[str, str] = field(default_factory=dict)
    """Name → class bindings visible at the site."""


def _keyword(call: ast.Call, name: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _classify(
    call: ast.Call, local_types: dict[str, str]
) -> SpawnSite | None:
    func = call.func
    callee_name = (
        func.id
        if isinstance(func, ast.Name)
        else func.attr if isinstance(func, ast.Attribute) else None
    )
    if callee_name == "pack_payload" and call.args:
        return SpawnSite(
            call=call, kind="wire", payload=None,
            payload_args=list(call.args),
        )
    if callee_name == "Process":
        target = _keyword(call, "target")
        if target is None:
            return None
        args_kw = _keyword(call, "args")
        payload_args: list[ast.expr] = []
        if isinstance(args_kw, (ast.Tuple, ast.List)):
            payload_args = list(args_kw.elts)
        elif args_kw is not None:
            payload_args = [args_kw]
        return SpawnSite(
            call=call, kind="process", payload=target,
            payload_args=payload_args,
        )
    if not isinstance(func, ast.Attribute):
        return None
    receiver = func.value
    if not (
        isinstance(receiver, ast.Name)
        and local_types.get(receiver.id) in POOL_TYPES
    ):
        return None
    if func.attr in _SUBMIT_METHODS and call.args:
        extra = list(call.args[1:])
        extra.extend(kw.value for kw in call.keywords)
        return SpawnSite(
            call=call, kind="submit", payload=call.args[0],
            payload_args=extra,
        )
    if func.attr in _MAP_METHODS and call.args:
        return SpawnSite(
            call=call, kind="map", payload=call.args[0],
            payload_args=list(call.args[1:]),
        )
    return None


def spawn_sites_in_file(
    program: Program, ctx: FileContext
) -> Iterator[SpawnSite]:
    """Every spawn site in *ctx*, function bodies and module scope."""
    module = module_name_of(ctx.path)
    for qname in sorted(program.table.functions):
        info = program.table.functions[qname]
        if info.path != ctx.path:
            continue
        local_types = program._local_types(info.node, module, info)
        for node in own_nodes(info.node):
            if isinstance(node, ast.Call):
                site = _classify(node, local_types)
                if site is not None:
                    site.caller = qname
                    site.local_types = local_types
                    yield site
    module_qname = f"{module}.<module>"
    for node in program._toplevel_nodes(ctx.tree):
        if isinstance(node, ast.Call):
            site = _classify(node, {})
            if site is not None:
                site.caller = module_qname
                yield site


def resolve_payload(
    program: Program, site: SpawnSite
) -> FunctionInfo | None:
    """The function a spawn payload names, when statically resolvable."""
    payload = site.payload
    if payload is None:
        return None
    module = _module_of_caller(program, site.caller)
    if isinstance(payload, ast.Name):
        nested = f"{site.caller}.<locals>.{payload.id}"
        if nested in program.table.functions:
            return program.table.functions[nested]
        qname = program.table.resolve_name(payload.id, module)
        if qname is not None:
            return program.table.functions.get(qname)
    if isinstance(payload, ast.Attribute):
        from repro.analysis.callgraph import dotted

        name = dotted(payload)
        if name is not None:
            qname = program.table.resolve_name(name, module)
            if qname is not None:
                return program.table.functions.get(qname)
    return None


def _module_of_caller(program: Program, caller: str) -> str:
    """Module a caller qname belongs to (falls back to a prefix)."""
    if caller.endswith(".<module>"):
        return caller[: -len(".<module>")]
    info = program.table.functions.get(caller)
    if info is not None:
        return info.module
    return caller.rsplit(".", 1)[0]
