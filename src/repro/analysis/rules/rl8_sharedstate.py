"""RL8: shared-state race detector.

Module-level mutable globals and class-attribute caches look shared,
but across a process boundary they are anything but: under ``fork``
each worker inherits a snapshot that silently diverges; under ``spawn``
each worker re-imports the module and starts empty.  Either way a
"cache" written inside worker-reachable code desynchronizes from the
parent — the precise failure mode that corrupts seam reconciliation,
whose merge step assumes every shard computed against the same view.
Writes racing within one process (threads) or between a worker and the
supervisor's retry logic compound the hazard.

The rule collects every spawn payload (``run_shard`` handed to
``pool.map``, ``_shard_child`` handed to ``Process(target=...)``),
takes the transitive closure of functions reachable from those entry
points over the call graph, and flags — inside that worker-reachable
region only — writes to module-level mutable globals (rebinds,
``G[k] = v`` subscript stores, ``G.append``-style mutator calls) and
to class-level mutable attributes (``Cls.cache``/``cls.cache``/
``self.cache`` where ``cache`` is a class-level container).  State a
worker needs must travel in the task and come back in the outcome.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import (
    ClassInfo,
    FunctionInfo,
    Program,
    own_nodes,
)
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import BaseProgramRule, register_program
from repro.analysis.rules.spawnsites import (
    resolve_payload,
    spawn_sites_in_file,
)

#: In-place mutator methods of the builtin containers.
MUTATOR_METHODS: frozenset[str] = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "add",
        "discard",
        "update",
        "setdefault",
        "appendleft",
        "popleft",
        "sort",
    }
)


@register_program
class SharedStateRule(BaseProgramRule):
    """No writes to module-level/class-level mutable state in
    worker-reachable code."""

    code = "RL8"
    name = "shared-state"
    summary = (
        "worker-reachable code must not write module-level globals or "
        "class-attribute caches (fork/spawn divergence hazard)"
    )
    enforced = None

    def check_program(self, program: Program) -> Iterator[Diagnostic]:
        entries: list[str] = []
        for path in sorted(program.contexts):
            ctx = program.contexts[path]
            for site in spawn_sites_in_file(program, ctx):
                info = resolve_payload(program, site)
                if info is not None and info.qname not in entries:
                    entries.append(info.qname)
        if not entries:
            return
        reachable = program.graph.reachable_from(sorted(entries))
        origin: dict[str, str] = {}
        for entry in sorted(entries):
            for qname in program.graph.reachable_from([entry]):
                origin.setdefault(qname, entry)
        for qname in sorted(reachable):
            info = program.table.functions.get(qname)
            if info is None:
                continue
            yield from self._check_function(program, info, origin[qname])

    # ------------------------------------------------------------------
    def _check_function(
        self, program: Program, info: FunctionInfo, entry: str
    ) -> Iterator[Diagnostic]:
        locals_ = _local_bindings(info.node)
        globals_decl = _global_decls(info.node)
        owner = self._enclosing_class(program, info)
        where = f"worker-reachable '{_short(info.qname)}' (entered via '{_short(entry)}')"
        for node in own_nodes(info.node):
            yield from self._check_node(
                program, info, node, locals_, globals_decl, owner, where
            )

    def _check_node(
        self,
        program: Program,
        info: FunctionInfo,
        node: ast.AST,
        locals_: frozenset[str],
        globals_decl: frozenset[str],
        owner: ClassInfo | None,
        where: str,
    ) -> Iterator[Diagnostic]:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            yield from self._check_store(
                program, info, target, locals_, globals_decl, owner, where
            )
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            func = node.func
            if func.attr not in MUTATOR_METHODS:
                return
            recv = func.value
            if isinstance(recv, ast.Name):
                if self._is_module_global(
                    program, info, recv.id, locals_, globals_decl
                ):
                    yield self.diag_at(
                        info.path,
                        node.lineno,
                        node.col_offset,
                        f"module-level global '{recv.id}' mutated via "
                        f".{func.attr}() in {where} — worker copies "
                        "diverge under fork/spawn; carry the state in "
                        "the task/outcome instead",
                    )
            elif isinstance(recv, ast.Attribute):
                diag = self._class_attr_write(
                    program, info, recv, owner, where,
                    f"mutated via .{func.attr}()",
                )
                if diag is not None:
                    yield diag

    def _check_store(
        self,
        program: Program,
        info: FunctionInfo,
        target: ast.expr,
        locals_: frozenset[str],
        globals_decl: frozenset[str],
        owner: ClassInfo | None,
        where: str,
    ) -> Iterator[Diagnostic]:
        if isinstance(target, ast.Name):
            if target.id in globals_decl:
                yield self.diag_at(
                    info.path,
                    target.lineno,
                    target.col_offset,
                    f"`global {target.id}` rebound in {where} — the "
                    "rebind happens in the worker's copy only",
                )
        elif isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Name) and self._is_module_global(
                program, info, base.id, locals_, globals_decl
            ):
                yield self.diag_at(
                    info.path,
                    target.lineno,
                    target.col_offset,
                    f"module-level global '{base.id}' written by "
                    f"subscript in {where} — worker copies diverge "
                    "under fork/spawn",
                )
            elif isinstance(base, ast.Attribute):
                diag = self._class_attr_write(
                    program, info, base, owner, where,
                    "written by subscript",
                )
                if diag is not None:
                    yield diag
        elif isinstance(target, ast.Attribute):
            diag = self._class_attr_write(
                program, info, target, owner, where, "rebound",
                stores_ok_on_self=True,
            )
            if diag is not None:
                yield diag

    # ------------------------------------------------------------------
    def _is_module_global(
        self,
        program: Program,
        info: FunctionInfo,
        name: str,
        locals_: frozenset[str],
        globals_decl: frozenset[str],
    ) -> bool:
        if name in locals_ and name not in globals_decl:
            return False  # locally shadowed
        var = program.table.globals.get((info.module, name))
        return var is not None and var.mutable

    def _class_attr_write(
        self,
        program: Program,
        info: FunctionInfo,
        attr_node: ast.Attribute,
        owner: ClassInfo | None,
        where: str,
        verb: str,
        stores_ok_on_self: bool = False,
    ) -> Diagnostic | None:
        recv = attr_node.value
        if not isinstance(recv, ast.Name):
            return None
        attr = attr_node.attr
        cls: ClassInfo | None = None
        via = recv.id
        if recv.id in ("cls",) and owner is not None:
            cls = owner
        elif recv.id == "self" and owner is not None:
            # instance rebinds (`self.x = ...`) create instance state,
            # which is worker-private and fine; only *mutations* of a
            # class-level container through self are shared-state writes.
            if stores_ok_on_self:
                return None
            cls = owner
        else:
            cls = program.table.resolve_class(recv.id, info.module)
        if cls is None:
            return None
        rebind_via_cls = recv.id == "cls" and verb == "rebound"
        if attr not in cls.mutable_attrs and not rebind_via_cls:
            return None  # instance attr or immutable class constant
        return self.diag_at(
            info.path,
            attr_node.lineno,
            attr_node.col_offset,
            f"class-level mutable attribute '{cls.name}.{attr}' {verb} "
            f"(through '{via}') in {where} — class state is per-process; "
            "carry it in the task/outcome instead",
        )

    def _enclosing_class(
        self, program: Program, info: FunctionInfo
    ) -> ClassInfo | None:
        if info.class_qname is None:
            return None
        return program.table.classes.get(info.class_qname)


def _short(qname: str) -> str:
    """Trim the ``repro.`` prefix for readable messages."""
    return qname[6:] if qname.startswith("repro.") else qname


def _local_bindings(node: ast.AST) -> frozenset[str]:
    """Names bound locally in a function body (params + stores)."""
    names: set[str] = set()
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = node.args
    for a in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        names.add(a.arg)
    for sub in own_nodes(node):
        if isinstance(sub, ast.Name) and isinstance(
            sub.ctx, (ast.Store, ast.Del)
        ):
            names.add(sub.id)
    return frozenset(names)


def _global_decls(node: ast.AST) -> frozenset[str]:
    names: set[str] = set()
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    for sub in own_nodes(node):
        if isinstance(sub, ast.Global):
            names.update(sub.names)
    return frozenset(names)
