"""RL1 — journal-bypass.

The transactional layer (PR 2) only restores what the journal saw: a
placement mutation that is not journaled silently breaks rollback, the
exact corruption class ``tests/core/test_transaction_faults.py`` sweeps
for.  This rule finds placement-state mutations performed *outside* the
journaled primitives:

* attribute writes to ``.x`` / ``.y`` / ``.master`` on anything that is
  not ``self`` (the DB classes' own primitives live in ``db/``, which is
  whitelisted wholesale);
* mutating calls on ``.cells`` lists (``append``/``insert``/``remove``/
  ``pop``/``clear``/``extend``/``sort``/``reverse``), plus ``del``/
  item-assignment on ``.cells[...]``.

A mutation is accepted when the **mutate-first, record-second**
convention is visible: a ``journal.note_*`` call appears within the
next :data:`JOURNAL_WINDOW` sibling statements (the pattern used by
``realize_insertion`` and ``apps.sizing``).  Everything else must be
routed through ``Design.place`` / ``unplace`` / ``shift_x`` /
``add_cell`` — or, for scratch structures that merely *look* like DB
state (local-region copies, report objects), suppressed with a
justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext, parent_of
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import BaseRule, register

#: Attributes that constitute journaled placement state.
PLACEMENT_ATTRS = frozenset({"x", "y", "master"})

#: In-place mutators of segment / design cell lists.
LIST_MUTATORS = frozenset(
    {"append", "insert", "remove", "pop", "clear", "extend", "sort", "reverse"}
)

#: How many sibling statements after a mutation may hold its journal
#: record (`x`, then `y`, then ``if journal is not None: note_*``).
JOURNAL_WINDOW = 3

_BODY_FIELDS = ("body", "orelse", "finalbody")


def _is_note_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr.startswith("note_")
    )


def _contains_note_call(node: ast.AST) -> bool:
    return any(_is_note_call(n) for n in ast.walk(node))


def _statement_of(node: ast.AST) -> ast.stmt | None:
    """The innermost statement containing *node*."""
    cur: ast.AST | None = node
    while cur is not None and not isinstance(cur, ast.stmt):
        cur = parent_of(cur)
    return cur


def _journaled_nearby(node: ast.AST) -> bool:
    """True when a ``note_*`` record follows within the journal window."""
    stmt = _statement_of(node)
    if stmt is None:
        return False
    if _contains_note_call(stmt):
        return True
    parent = parent_of(stmt)
    if parent is None:
        return False
    for field in _BODY_FIELDS:
        body = getattr(parent, field, None)
        if isinstance(body, list) and stmt in body:
            idx = body.index(stmt)
            for follower in body[idx + 1 : idx + 1 + JOURNAL_WINDOW]:
                if _contains_note_call(follower):
                    return True
    return False


def _is_self(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id in ("self", "cls")


def _cells_attribute(node: ast.expr) -> bool:
    """True for an expression of shape ``<base>.cells``.

    ``self.cells`` is exempt: a class mutating its *own* list attribute
    is managing encapsulated state (``StuckCellReport.merge``), not
    reaching into the placement database — the DB classes themselves
    live in the whitelisted ``db/`` package.
    """
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "cells"
        and not _is_self(node.value)
    )


@register
class JournalBypassRule(BaseRule):
    code = "RL1"
    name = "journal-bypass"
    summary = (
        "placement-state mutation outside the journaled Design/Journal "
        "primitives (breaks transactional rollback)"
    )
    #: ``db`` is the whitelisted home of the primitives themselves;
    #: ``bench``/``baselines``/``viz``/``gp`` operate on scratch or
    #: pre-legalization state and are exempt by design (documented in
    #: docs/static_analysis.md).
    enforced = ("core", "engine", "apps", "io", "checker")

    #: Like ``db/``, ``core/soa.py`` is a home of journaled primitives
    #: rather than a consumer: its numpy mirror is synchronized *by* the
    #: Design mutators and the Journal itself (sync_cell /
    #: on_journal_record / on_journal_undo), so its array writes are the
    #: receiving end of the journal, not a bypass of it.
    primitive_modules = frozenset({("core", "soa.py")})

    def applies_to(self, ctx: FileContext) -> bool:
        if (ctx.subpackage, ctx.module_name) in self.primitive_modules:
            return False
        return super().applies_to(ctx)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                yield from self._check_assignment(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, ast.Delete):
                yield from self._check_delete(ctx, node)

    # ------------------------------------------------------------------
    def _check_assignment(
        self, ctx: FileContext, node: ast.Assign | ast.AugAssign | ast.AnnAssign
    ) -> Iterator[Diagnostic]:
        targets: list[ast.expr]
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        else:
            targets = [node.target]
        for target in targets:
            # x, y unpacking: look through tuples.
            stack = [target]
            while stack:
                t = stack.pop()
                if isinstance(t, (ast.Tuple, ast.List)):
                    stack.extend(t.elts)
                    continue
                if (
                    isinstance(t, ast.Attribute)
                    and t.attr in PLACEMENT_ATTRS
                    and not _is_self(t.value)
                    and not _journaled_nearby(node)
                ):
                    yield self.diag(
                        ctx,
                        t,
                        f"direct write to placement state `.{t.attr}` "
                        f"bypasses the mutation journal; use "
                        f"Design.place/unplace/shift_x (or journal it "
                        f"with journal.note_* within {JOURNAL_WINDOW} "
                        f"statements)",
                    )
                elif (
                    isinstance(t, ast.Subscript)
                    and _cells_attribute(t.value)
                    and not _journaled_nearby(node)
                ):
                    yield self.diag(
                        ctx,
                        t,
                        "item assignment into a `.cells` list bypasses "
                        "the mutation journal; use the Design/Segment "
                        "primitives or journal the mutation",
                    )

    def _check_call(
        self, ctx: FileContext, node: ast.Call
    ) -> Iterator[Diagnostic]:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in LIST_MUTATORS
            and _cells_attribute(func.value)
            and not _journaled_nearby(node)
        ):
            yield self.diag(
                ctx,
                node,
                f"`.cells.{func.attr}(...)` mutates a cell list outside "
                f"the journaled primitives; use Design.place/unplace or "
                f"journal the mutation (journal.note_* within "
                f"{JOURNAL_WINDOW} statements)",
            )

    def _check_delete(
        self, ctx: FileContext, node: ast.Delete
    ) -> Iterator[Diagnostic]:
        for target in node.targets:
            if (
                isinstance(target, ast.Subscript)
                and _cells_attribute(target.value)
                and not _journaled_nearby(node)
            ):
                yield self.diag(
                    ctx,
                    target,
                    "`del` on a `.cells` list bypasses the mutation "
                    "journal; use Design.unplace or journal the mutation",
                )
