"""RL12: untrusted-input taint from the wire to sensitive sinks.

The serving layer (PR 6) and the shard transport (PR 8) both decode
attacker-shaped bytes: JSON request params in
:mod:`repro.serve.protocol` and worker frames in
:mod:`repro.engine.wire`.  The PR 6 review caught one hole by hand —
a wire-supplied snapshot directory reaching the filesystem before the
dir-confinement helper existed.  This rule checks that whole class
mechanically: **a value originating at a wire decode point must pass
through a registered sanitizer before it reaches a sensitive sink.**

Sources (taint level in parentheses):

* parameters annotated exactly ``dict[str, object]`` and named
  ``params`` / ``message`` / ``reply`` — the decoded wire dicts (raw);
* results of ``decode_request`` / ``decode_message`` and ``.params``
  attribute loads (raw);
* typed extractor results: ``param_int``/``param_float``/
  ``param_opt_int``/``message_int``/``message_float`` (num, the type
  is checked but the range is not), ``param_str``/``message_str``
  (str); ``param_bool`` is clean (two values, nothing to bound).

Sinks and the levels they report:

=============  ==========================================  ===========
kind           examples                                    reports
=============  ==========================================  ===========
path           ``open``/``makedirs``/``rmtree``/           raw, str
               ``unlink``/``rename``/``mkdir``/
               ``write_text``/``write_bytes``
pickle         ``pickle.loads`` / ``pickle.load``          raw, str
spawn          ``subprocess.*`` / ``os.system`` /          raw, str
               ``os.exec*`` / ``os.spawn*``
config         ``EngineConfig``/``LegalizerConfig``/       raw, num
               ``GeneratorConfig``/keyworded ``replace``
=============  ==========================================  ===========

Sanitizers kill taint flow-sensitively on the edge they guard: a
bounded extractor call (``minimum=``/``maximum=`` keyword), ``int()``/
``float()`` downgrade raw→num, helpers whose name contains
``confine``/``validate``/``sanitize``/``clamp``, ``min``/``max``
against a constant, and explicit range guards — an ``if``/``assert``
comparing the name against a numeric bound whose failure path raises
dominates the fall-through, so the post-guard state is clean.

Propagation is intraprocedural over the CFG
(:func:`repro.analysis.cfg.solve_forward`) and interprocedural via
per-function summaries on the resolved call graph: every parameter is
seeded with its own index as a symbolic origin, sink hits inside a
callee are instantiated at each call site with the caller's actual
argument taint, and findings are exactly the hits whose origin set
contains the wire marker.  Interprocedural hits are reported at the
call site (where the untrusted value entered the callee), so a
``# repro-lint: disable=RL12 -- why`` suppression sits next to the
trust decision.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, NamedTuple

from repro.analysis.callgraph import FunctionInfo, Program, dotted
from repro.analysis.cfg import (
    CFG,
    EXC,
    FALSE,
    FLOW,
    TRUE,
    flow_model_for,
    header_walk,
    solve_forward,
)
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import BaseProgramRule, register_program

_FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef

#: The symbolic origin marking a real wire source (vs a parameter
#: index, which is only a potential conduit).
WIRE = -1

RAW = "raw"
NUM = "num"
STR = "str"

_SOURCE_PARAM_NAMES = frozenset({"params", "message", "reply"})
_SOURCE_ANNOTATIONS = frozenset({"dict[str, object]"})
_DECODERS = frozenset({"decode_request", "decode_message"})

_NUM_EXTRACTORS = frozenset(
    {
        "param_int",
        "param_float",
        "param_opt_int",
        "message_int",
        "message_float",
    }
)
_STR_EXTRACTORS = frozenset({"param_str", "message_str"})
_CLEAN_EXTRACTORS = frozenset({"param_bool"})
_BOUND_KWARGS = frozenset({"minimum", "maximum"})
_SANITIZER_FRAGMENTS = ("confine", "validate", "sanitize", "clamp")

_PATH_SINKS = frozenset(
    {
        "open",
        "makedirs",
        "rmtree",
        "unlink",
        "remove",
        "rename",
        "mkdir",
        "write_text",
        "write_bytes",
    }
)
_CONFIG_SINKS = frozenset(
    {"EngineConfig", "LegalizerConfig", "GeneratorConfig"}
)
_PICKLE_SINKS = frozenset({"pickle.loads", "pickle.load"})

_REPORTABLE: dict[str, frozenset[str]] = {
    "path": frozenset({RAW, STR}),
    "pickle": frozenset({RAW, STR}),
    "spawn": frozenset({RAW, STR}),
    "config": frozenset({RAW, NUM}),
}

_SINK_ADVICE: dict[str, str] = {
    "path": (
        "route it through the dir-confinement helper or a typed "
        "extractor before touching the filesystem"
    ),
    "pickle": (
        "never unpickle wire bytes from an untrusted peer; keep "
        "payload decoding behind an explicit trust boundary"
    ),
    "spawn": (
        "never place wire-derived values in a subprocess/spawn "
        "payload without validation"
    ),
    "config": (
        "extract it with `minimum=`/`maximum=` bounds (or an "
        "explicit range guard) before it configures the engine"
    ),
}


class Taint(NamedTuple):
    """Lattice value: a level plus the set of symbolic origins."""

    level: str
    origins: frozenset[int]


class SinkHit(NamedTuple):
    """One (possibly symbolic) taint arrival at a sink."""

    kind: str
    level: str
    path: str
    line: int
    col: int
    origins: frozenset[int]
    detail: str


@dataclass
class _Summary:
    """Per-function interprocedural summary."""

    hits: frozenset[SinkHit] = frozenset()
    returns: Taint | None = None


_Env = dict[str, Taint]


def _join_level(a: str, b: str) -> str:
    if a == b:
        return a
    return RAW


def _join(a: Taint | None, b: Taint | None) -> Taint | None:
    if a is None:
        return b
    if b is None:
        return a
    return Taint(_join_level(a.level, b.level), a.origins | b.origins)


def _join_env(a: _Env, b: _Env) -> _Env:
    out = dict(a)
    for name, taint in b.items():
        merged = _join(out.get(name), taint)
        if merged is not None:
            out[name] = merged
    return out


@register_program
class TaintRule(BaseProgramRule):
    """Wire-derived values must be sanitized before sensitive sinks."""

    code = "RL12"
    name = "untrusted-input-taint"
    summary = (
        "values decoded from the wire must pass a registered "
        "sanitizer (typed bounded extractor, dir confinement, range "
        "guard) before reaching filesystem, pickle, spawn, or "
        "engine-config sinks"
    )
    enforced = ("serve", "engine")

    def check_program(self, program: Program) -> Iterator[Diagnostic]:
        analysis = _Analysis(program)
        analysis.run()
        seen: set[tuple[str, int, int, str]] = set()
        for qname in sorted(analysis.summaries):
            for hit in sorted(analysis.summaries[qname].hits):
                if WIRE not in hit.origins:
                    continue
                if hit.level not in _REPORTABLE[hit.kind]:
                    continue
                if not self._in_scope(program, hit.path):
                    continue
                key = (hit.path, hit.line, hit.col, hit.kind)
                if key in seen:
                    continue
                seen.add(key)
                yield self.diag_at(
                    hit.path,
                    hit.line,
                    hit.col,
                    f"untrusted wire input ({hit.level}) may reach "
                    f"{hit.kind} sink {hit.detail} without a "
                    f"registered sanitizer; {_SINK_ADVICE[hit.kind]}",
                )

    def _in_scope(self, program: Program, path: str) -> bool:
        ctx = program.contexts.get(path)
        if ctx is None or ctx.subpackage is None:
            return True
        assert self.enforced is not None
        return ctx.subpackage in self.enforced


# ----------------------------------------------------------------------
# The interprocedural engine
# ----------------------------------------------------------------------
@dataclass
class _FuncFacts:
    """Static per-function facts shared across fixpoint passes."""

    info: FunctionInfo
    cfg: CFG
    callmap: dict[int, str]
    param_names: list[str]
    self_offset: int


class _Analysis:
    def __init__(self, program: Program) -> None:
        self.program = program
        self.summaries: dict[str, _Summary] = {}
        self._facts: dict[str, _FuncFacts] = {}
        model = flow_model_for(program)
        for qname, info in sorted(program.table.functions.items()):
            if _is_extractor(info.name):
                continue
            cfg = model.cfg_of(qname)
            if cfg is None:  # pragma: no cover - table always has it
                continue
            callmap = {
                id(site.node): site.callee
                for site in program.graph.out_edges.get(qname, [])
                if site.callee is not None and site.node is not None
            }
            args = info.node.args
            positional = list(args.posonlyargs) + list(args.args)
            names = [a.arg for a in positional] + [
                a.arg for a in args.kwonlyargs
            ]
            offset = (
                1 if names and names[0] in ("self", "cls") else 0
            )
            self._facts[qname] = _FuncFacts(
                info, cfg, callmap, names, offset
            )
            self.summaries[qname] = _Summary()

    def run(self) -> None:
        for _round in range(8):
            changed = False
            for qname in sorted(self._facts):
                hits, returns = self._analyze(qname)
                old = self.summaries[qname]
                if hits != old.hits or returns != old.returns:
                    self.summaries[qname] = _Summary(hits, returns)
                    changed = True
            if not changed:
                break

    # ------------------------------------------------------------------
    def _analyze(
        self, qname: str
    ) -> tuple[frozenset[SinkHit], Taint | None]:
        facts = self._facts[qname]
        entry = self._entry_env(facts)
        hits: set[SinkHit] = set()
        returns: list[Taint] = []

        def transfer(bid: int, env: _Env) -> dict[str, _Env]:
            return self._block(facts, bid, env, None, None)

        in_states = solve_forward(
            facts.cfg,
            entry_state=entry,
            transfer=transfer,
            join=_join_env,
            bottom={},
        )
        for bid in facts.cfg.reachable():
            self._block(facts, bid, in_states[bid], hits, returns)
        ret: Taint | None = None
        for taint in returns:
            ret = _join(ret, taint)
        return frozenset(hits), ret

    def _entry_env(self, facts: _FuncFacts) -> _Env:
        env: _Env = {}
        args = facts.info.node.args
        annotated = {
            a.arg: a.annotation
            for a in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
            )
        }
        for index, name in enumerate(facts.param_names):
            if index == 0 and facts.self_offset:
                continue
            origins = {index}
            annotation = annotated.get(name)
            if (
                name in _SOURCE_PARAM_NAMES
                and annotation is not None
                and ast.unparse(annotation) in _SOURCE_ANNOTATIONS
            ):
                origins.add(WIRE)
            env[name] = Taint(RAW, frozenset(origins))
        return env

    # ------------------------------------------------------------------
    def _block(
        self,
        facts: _FuncFacts,
        bid: int,
        in_env: _Env,
        hits: set[SinkHit] | None,
        returns: list[Taint] | None,
    ) -> dict[str, _Env]:
        env = dict(in_env)
        block = facts.cfg.blocks[bid]
        for stmt in block.statements:
            self._step(facts, stmt, env, hits, returns)
        outs: dict[str, _Env] = {FLOW: env, EXC: env}
        last = block.statements[-1] if block.statements else None
        if isinstance(last, ast.If) and _body_raises(last):
            guarded = _guarded_names(last.test)
            if guarded:
                narrowed = {
                    k: v for k, v in env.items() if k not in guarded
                }
                outs[FALSE] = narrowed
                outs[TRUE] = env
        return outs

    def _step(
        self,
        facts: _FuncFacts,
        stmt: ast.stmt,
        env: _Env,
        hits: set[SinkHit] | None,
        returns: list[Taint] | None,
    ) -> None:
        if hits is not None:
            for node in header_walk(stmt):
                if isinstance(node, ast.Call):
                    self._record_sinks(facts, node, env, hits)
                    self._instantiate(facts, node, env, hits)
        if isinstance(stmt, ast.Assign):
            taint = self._eval(facts, stmt.value, env)
            for target in stmt.targets:
                _bind(target, taint, env)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            taint = self._eval(facts, stmt.value, env)
            _bind(stmt.target, taint, env)
        elif isinstance(stmt, ast.AugAssign):
            taint = _join(
                self._eval(facts, stmt.value, env),
                env.get(stmt.target.id)
                if isinstance(stmt.target, ast.Name)
                else None,
            )
            _bind(stmt.target, taint, env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            _bind(stmt.target, self._eval(facts, stmt.iter, env), env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    _bind(
                        item.optional_vars,
                        self._eval(facts, item.context_expr, env),
                        env,
                    )
        elif isinstance(stmt, ast.Assert):
            for name in _guarded_names(stmt.test):
                env.pop(name, None)
        elif isinstance(stmt, ast.Return):
            if returns is not None and stmt.value is not None:
                taint = self._eval(facts, stmt.value, env)
                if taint is not None:
                    returns.append(taint)

    # ------------------------------------------------------------------
    # Expression evaluation (pure — no hit recording)
    # ------------------------------------------------------------------
    def _eval(
        self, facts: _FuncFacts, expr: ast.expr, env: _Env
    ) -> Taint | None:
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Constant):
            return None
        if isinstance(expr, ast.Attribute):
            base = self._eval(facts, expr.value, env)
            if expr.attr == "params":
                return _join(base, Taint(RAW, frozenset({WIRE})))
            return base
        if isinstance(expr, ast.Subscript):
            return self._eval(facts, expr.value, env)
        if isinstance(expr, ast.Call):
            return self._eval_call(facts, expr, env)
        if isinstance(expr, ast.BoolOp):
            out: Taint | None = None
            for value in expr.values:
                out = _join(out, self._eval(facts, value, env))
            return out
        if isinstance(expr, ast.BinOp):
            return _join(
                self._eval(facts, expr.left, env),
                self._eval(facts, expr.right, env),
            )
        if isinstance(expr, ast.UnaryOp):
            return self._eval(facts, expr.operand, env)
        if isinstance(expr, ast.IfExp):
            return _join(
                self._eval(facts, expr.body, env),
                self._eval(facts, expr.orelse, env),
            )
        if isinstance(expr, ast.Compare):
            return None
        if isinstance(expr, (ast.JoinedStr, ast.FormattedValue)):
            inner: Taint | None = None
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, ast.expr):
                    inner = _join(
                        inner, self._eval(facts, child, env)
                    )
            if inner is None:
                return None
            return Taint(STR, inner.origins)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            out = None
            for elt in expr.elts:
                out = _join(out, self._eval(facts, elt, env))
            return out
        if isinstance(expr, ast.Dict):
            out = None
            for value in expr.values:
                out = _join(out, self._eval(facts, value, env))
            return out
        if isinstance(expr, ast.Starred):
            return self._eval(facts, expr.value, env)
        if isinstance(expr, ast.Await):
            return self._eval(facts, expr.value, env)
        return None

    def _eval_call(
        self, facts: _FuncFacts, call: ast.Call, env: _Env
    ) -> Taint | None:
        name = dotted(call.func)
        bare = name.rsplit(".", 1)[-1] if name else ""
        first = (
            self._eval(facts, call.args[0], env) if call.args else None
        )
        if bare in _NUM_EXTRACTORS:
            if any(kw.arg in _BOUND_KWARGS for kw in call.keywords):
                return None
            return None if first is None else Taint(NUM, first.origins)
        if bare in _STR_EXTRACTORS:
            return None if first is None else Taint(STR, first.origins)
        if bare in _CLEAN_EXTRACTORS:
            return None
        if bare in _DECODERS:
            return Taint(RAW, frozenset({WIRE}))
        if bare in ("int", "float") and name == bare:
            args_taint = self._args_taint(facts, call, env)
            if args_taint is None:
                return None
            return Taint(NUM, args_taint.origins)
        if bare == "str" and name == bare:
            args_taint = self._args_taint(facts, call, env)
            if args_taint is None:
                return None
            return Taint(STR, args_taint.origins)
        if bare in ("bool", "len", "isinstance", "type") and name == bare:
            return None
        if any(frag in bare.lower() for frag in _SANITIZER_FRAGMENTS):
            return None
        if bare in ("min", "max") and name == bare:
            if any(
                isinstance(a, ast.Constant)
                and isinstance(a.value, (int, float))
                for a in call.args
            ):
                return None
            return self._args_taint(facts, call, env)
        callee = facts.callmap.get(id(call))
        if callee is not None and callee in self.summaries:
            ret = self.summaries[callee].returns
            # Method-style resolution can land on a same-named
            # function elsewhere (unique-bare-name fallback), so only
            # a direct-name call or a self/cls method inherits the
            # callee's own wire origin; argument-mapped origins flow
            # either way, and a method result conservatively carries
            # its receiver's taint.
            trusted = not isinstance(
                call.func, ast.Attribute
            ) or (
                isinstance(call.func.value, ast.Name)
                and call.func.value.id in ("self", "cls")
            )
            out = (
                None
                if ret is None
                else self._map_origins(
                    facts, call, callee, ret, env, keep_wire=trusted
                )
            )
            if isinstance(call.func, ast.Attribute):
                out = _join(
                    out, self._eval(facts, call.func.value, env)
                )
            return out
        # Unknown callee: conservative pass-through of receiver + args.
        out = self._args_taint(facts, call, env)
        if isinstance(call.func, ast.Attribute):
            out = _join(
                out, self._eval(facts, call.func.value, env)
            )
        return out

    def _args_taint(
        self, facts: _FuncFacts, call: ast.Call, env: _Env
    ) -> Taint | None:
        out: Taint | None = None
        for arg in call.args:
            out = _join(out, self._eval(facts, arg, env))
        for kw in call.keywords:
            out = _join(out, self._eval(facts, kw.value, env))
        return out

    # ------------------------------------------------------------------
    # Summary instantiation
    # ------------------------------------------------------------------
    def _map_origins(
        self,
        facts: _FuncFacts,
        call: ast.Call,
        callee: str,
        symbolic: Taint,
        env: _Env,
        keep_wire: bool = True,
    ) -> Taint | None:
        """Rewrite *symbolic* (callee-parameter origins) into the
        caller's frame using the actual arguments at *call*."""
        callee_facts = self._facts.get(callee)
        if callee_facts is None:
            return None
        origins: set[int] = set()
        level = symbolic.level
        arg_level: str | None = None
        star: Taint | None = None
        for kw in call.keywords:
            if kw.arg is None:
                star = _join(star, self._eval(facts, kw.value, env))
        by_name = {
            name: i
            for i, name in enumerate(callee_facts.param_names)
        }
        for origin in symbolic.origins:
            if origin == WIRE:
                if keep_wire:
                    origins.add(WIRE)
                continue
            actual = self._actual_for(
                facts, call, callee_facts, origin, by_name, env
            )
            if actual is None:
                actual = star
            if actual is None:
                continue
            origins |= actual.origins
            arg_level = (
                actual.level
                if arg_level is None
                else _join_level(arg_level, actual.level)
            )
        if not origins:
            return None
        if level == RAW and arg_level is not None:
            level = arg_level
        return Taint(level, frozenset(origins))

    def _actual_for(
        self,
        facts: _FuncFacts,
        call: ast.Call,
        callee_facts: _FuncFacts,
        index: int,
        by_name: dict[str, int],
        env: _Env,
    ) -> Taint | None:
        """Taint of the argument bound to callee parameter *index*."""
        pos = index - callee_facts.self_offset
        if 0 <= pos < len(call.args):
            arg = call.args[pos]
            if not isinstance(arg, ast.Starred):
                return self._eval(facts, arg, env)
        for kw in call.keywords:
            if kw.arg is not None and by_name.get(kw.arg) == index:
                return self._eval(facts, kw.value, env)
        return None

    def _instantiate(
        self,
        facts: _FuncFacts,
        call: ast.Call,
        env: _Env,
        hits: set[SinkHit],
    ) -> None:
        callee = facts.callmap.get(id(call))
        if callee is None:
            return
        summary = self.summaries.get(callee)
        callee_facts = self._facts.get(callee)
        if summary is None or callee_facts is None:
            return
        short = callee.rsplit(".", 1)[-1]
        for hit in summary.hits:
            if WIRE in hit.origins:
                # Already a finding inside the callee itself.
                continue
            mapped = self._map_origins(
                facts,
                call,
                callee,
                Taint(hit.level, hit.origins),
                env,
            )
            if mapped is None or not mapped.origins:
                continue
            hits.add(
                SinkHit(
                    hit.kind,
                    mapped.level,
                    facts.info.path,
                    call.lineno,
                    call.col_offset,
                    mapped.origins,
                    f"via `{short}` (line {hit.line})",
                )
            )

    def _record_sinks(
        self,
        facts: _FuncFacts,
        call: ast.Call,
        env: _Env,
        hits: set[SinkHit],
    ) -> None:
        kind = _sink_kind(call)
        if kind is None:
            return
        taint = self._args_taint(facts, call, env)
        if taint is None:
            return
        name = dotted(call.func) or "<dynamic>"
        hits.add(
            SinkHit(
                kind,
                taint.level,
                facts.info.path,
                call.lineno,
                call.col_offset,
                taint.origins,
                f"`{name}(...)`",
            )
        )


def _bind(
    target: ast.expr, taint: Taint | None, env: _Env
) -> None:
    if isinstance(target, ast.Name):
        if taint is None:
            env.pop(target.id, None)
        else:
            env[target.id] = taint
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            _bind(elt, taint, env)
    elif isinstance(target, ast.Starred):
        _bind(target.value, taint, env)
    elif isinstance(target, ast.Subscript) and isinstance(
        target.value, ast.Name
    ):
        # ``d[k] = tainted`` taints the container (weak update).
        if taint is not None:
            merged = _join(env.get(target.value.id), taint)
            if merged is not None:
                env[target.value.id] = merged


def _is_extractor(bare_name: str) -> bool:
    return bare_name.startswith(("param_", "message_"))


def _body_raises(stmt: ast.If) -> bool:
    return any(isinstance(s, ast.Raise) for s in stmt.body)


def _guarded_names(test: ast.expr) -> frozenset[str]:
    """Names range-compared against a numeric bound in *test* — a
    constant, or an ALL_CAPS name by convention."""
    out: set[str] = set()
    for node in ast.walk(test):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        if not any(_is_bound(op) for op in operands):
            continue
        if not any(
            isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
            for op in node.ops
        ):
            continue
        for op in operands:
            if isinstance(op, ast.Name) and not op.id.isupper():
                out.add(op.id)
    return frozenset(out)


def _is_bound(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Constant) and isinstance(
        expr.value, (int, float)
    ):
        return True
    return isinstance(expr, ast.Name) and expr.id.isupper()


def _sink_kind(call: ast.Call) -> str | None:
    name = dotted(call.func)
    if name is None:
        return None
    bare = name.rsplit(".", 1)[-1]
    head = name.split(".", 1)[0]
    if name in _PICKLE_SINKS:
        return "pickle"
    if head == "subprocess" or name == "os.system":
        return "spawn"
    if head == "os" and (
        bare.startswith("exec") or bare.startswith("spawn")
    ):
        return "spawn"
    if bare in _PATH_SINKS:
        return "path"
    if bare in _CONFIG_SINKS:
        return "config"
    if bare == "replace" and call.keywords:
        # dataclasses.replace(cfg, field=...) / replace(cfg, **kw);
        # str.replace never takes keywords.
        return "config"
    return None
