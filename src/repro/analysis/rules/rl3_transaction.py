"""RL3 — transaction-safety.

Three checks, from broadest to most targeted:

1. **Bare / BaseException swallowing** (everywhere): ``except:`` or
   ``except BaseException:`` whose handler never re-raises also eats
   ``KeyboardInterrupt`` — which is exactly the signal the journal
   relies on propagating so an interrupted realization rolls back.

2. **Swallowing near journaled mutations**: a function that calls the
   placement-mutation primitives *and* contains a typeless /
   ``Exception``-broad handler with no ``raise`` can observe (and keep)
   a half-applied mutation.  Catch the specific error, or let the
   enclosing :class:`~repro.db.journal.Transaction` unwind.

3. **Unscoped mutations** (``apps/`` and ``engine/reconcile.py``): the
   paper-level applications and the seam reconciler promised (PR 2)
   that every mutation path commits-or-restores byte-identically, so
   their calls to ``place`` / ``unplace`` / ``shift_x`` / ``add_cell``
   / ``realize_insertion`` must sit lexically inside a
   ``with Transaction(design)`` / ``with design.transaction()`` block.
   Helpers whose *callers* own the transaction document that with a
   justified suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext, ancestors
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import BaseRule, register

#: Calls that mutate journaled placement state.
MUTATION_PRIMITIVES = frozenset(
    {"place", "unplace", "shift_x", "add_cell", "realize_insertion"}
)

#: Where check 3 (lexical transaction scoping) is contractual.
_SCOPED_SUBPACKAGES = frozenset({"apps", "serve"})
_SCOPED_MODULES = frozenset({"reconcile.py"})


def _handler_swallows(handler: ast.ExceptHandler) -> bool:
    """True when the handler body contains no ``raise`` at any depth."""
    return not any(
        isinstance(node, ast.Raise)
        for stmt in handler.body
        for node in ast.walk(stmt)
    )


def _handler_breadth(handler: ast.ExceptHandler) -> str | None:
    """``"bare"`` / ``"BaseException"`` / ``"Exception"`` / ``None``."""
    if handler.type is None:
        return "bare"
    names: list[ast.expr]
    if isinstance(handler.type, ast.Tuple):
        names = list(handler.type.elts)
    else:
        names = [handler.type]
    for name in names:
        if isinstance(name, ast.Name) and name.id in (
            "BaseException",
            "Exception",
        ):
            return name.id
        if isinstance(name, ast.Attribute) and name.attr in (
            "BaseException",
            "Exception",
        ):
            return name.attr
    return None


def _is_mutation_call(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in MUTATION_PRIMITIVES:
        return func.attr
    if isinstance(func, ast.Name) and func.id in MUTATION_PRIMITIVES:
        return func.id
    return None


def _is_transaction_ctx(expr: ast.expr) -> bool:
    """``Transaction(...)`` / ``x.transaction()`` / ``design.journal``-ish."""
    if not isinstance(expr, ast.Call):
        return False
    func = expr.func
    if isinstance(func, ast.Name) and func.id == "Transaction":
        return True
    if isinstance(func, ast.Attribute) and func.attr in (
        "Transaction",
        "transaction",
    ):
        return True
    return False


def _inside_transaction(node: ast.AST) -> bool:
    for anc in ancestors(node):
        if isinstance(anc, ast.With):
            for item in anc.items:
                if _is_transaction_ctx(item.context_expr):
                    return True
    return False


@register
class TransactionSafetyRule(BaseRule):
    code = "RL3"
    name = "transaction-safety"
    summary = (
        "exception swallowing around journaled mutations and "
        "mutation primitives reachable outside a Transaction scope"
    )
    enforced = None  # check 1 is global; checks 2-3 self-scope below

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        yield from self._check_handlers(ctx)
        if (
            ctx.subpackage is None
            or ctx.subpackage in _SCOPED_SUBPACKAGES
            or (
                ctx.subpackage == "engine"
                and ctx.module_name in _SCOPED_MODULES
            )
        ):
            yield from self._check_transaction_scope(ctx)

    # ------------------------------------------------------------------
    def _check_handlers(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            mutates = any(
                isinstance(sub, ast.Call) and _is_mutation_call(sub)
                for sub in ast.walk(node)
            )
            for sub in ast.walk(node):
                if not isinstance(sub, ast.ExceptHandler):
                    continue
                breadth = _handler_breadth(sub)
                if breadth is None or not _handler_swallows(sub):
                    continue
                if breadth in ("bare", "BaseException"):
                    label = (
                        "bare `except:`" if breadth == "bare"
                        else "`except BaseException:`"
                    )
                    yield self.diag(
                        ctx,
                        sub,
                        f"{label} without re-raise also swallows "
                        f"KeyboardInterrupt/SystemExit — the signals "
                        f"transactional rollback depends on; catch the "
                        f"specific exception or re-raise",
                    )
                elif mutates:
                    yield self.diag(
                        ctx,
                        sub,
                        "broad `except Exception:` without re-raise in "
                        "a function that mutates placement state can "
                        "keep a half-applied mutation; catch the "
                        "specific error or let the Transaction roll "
                        "back",
                    )

    # ------------------------------------------------------------------
    def _check_transaction_scope(
        self, ctx: FileContext
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _is_mutation_call(node)
            if name is None or _inside_transaction(node):
                continue
            yield self.diag(
                ctx,
                node,
                f"mutation primitive `{name}(...)` is reachable outside "
                f"a Transaction scope; wrap the mutation in `with "
                f"Transaction(design):` (or `design.transaction()`) so "
                f"failure restores the pre-call state",
            )
