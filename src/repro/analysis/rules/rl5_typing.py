"""RL5 — strict-typing gate (the locally enforceable core of it).

``mypy --strict`` is the full gate (wired in CI; the container may not
ship mypy), but its two highest-yield requirements are plain syntax
properties this linter can enforce *everywhere*, offline:

* every function in the typed packages (``core``, ``engine``, ``db``,
  ``analysis``) must annotate all parameters and its return type —
  ``disallow_untyped_defs`` / ``disallow_incomplete_defs``;
* annotations must not use bare ``list`` / ``dict`` / ``set`` /
  ``tuple`` / ``frozenset`` — ``disallow_any_generics``.

``self`` / ``cls`` are exempt (as in mypy).  Test helpers and the
unscoped fixture corpus are only checked for the same two properties,
so fixtures can exercise the rule directly.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import BaseRule, register

#: Builtin generics that require type parameters in annotations.
BARE_GENERICS = frozenset({"list", "dict", "set", "tuple", "frozenset"})

_SELFISH = ("self", "cls")


def _iter_args(node: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.arg]:
    args = node.args
    yield from args.posonlyargs
    yield from args.args
    if args.vararg is not None:
        yield args.vararg
    yield from args.kwonlyargs
    if args.kwarg is not None:
        yield args.kwarg


def _is_method(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    from repro.analysis.context import parent_of

    return isinstance(parent_of(node), ast.ClassDef)


def _decorated_with(
    node: ast.FunctionDef | ast.AsyncFunctionDef, names: frozenset[str]
) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name) and target.id in names:
            return True
        if isinstance(target, ast.Attribute) and target.attr in names:
            return True
    return False


_SKIP_DECORATORS = frozenset({"overload"})


@register
class StrictTypingRule(BaseRule):
    code = "RL5"
    name = "strict-typing"
    summary = (
        "function signatures missing parameter/return annotations, or "
        "bare list/dict/set/tuple generics, in the mypy --strict "
        "packages (core, engine, db, analysis)"
    )
    enforced = ("core", "engine", "db", "analysis", "serve")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_signature(ctx, node)
            elif isinstance(node, ast.AnnAssign):
                yield from self._check_annotation(
                    ctx, node.annotation, "variable annotation"
                )

    # ------------------------------------------------------------------
    def _check_signature(
        self, ctx: FileContext, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Diagnostic]:
        if _decorated_with(node, _SKIP_DECORATORS):
            return
        method = _is_method(node)
        missing: list[str] = []
        for index, arg in enumerate(_iter_args(node)):
            if method and index == 0 and arg.arg in _SELFISH:
                continue
            if arg.annotation is None:
                missing.append(arg.arg)
            else:
                yield from self._check_annotation(
                    ctx, arg.annotation, f"parameter `{arg.arg}`"
                )
        if missing:
            yield self.diag(
                ctx,
                node,
                f"function `{node.name}` has unannotated parameter(s) "
                f"{', '.join(missing)} (mypy --strict: "
                f"disallow_incomplete_defs)",
            )
        if node.returns is None:
            yield self.diag(
                ctx,
                node,
                f"function `{node.name}` has no return annotation "
                f"(annotate `-> None` for procedures; mypy --strict: "
                f"disallow_untyped_defs)",
            )
        else:
            yield from self._check_annotation(
                ctx, node.returns, f"return of `{node.name}`"
            )

    def _check_annotation(
        self, ctx: FileContext, node: ast.expr, where: str
    ) -> Iterator[Diagnostic]:
        for sub in ast.walk(node):
            bare: str | None = None
            if isinstance(sub, ast.Name) and sub.id in BARE_GENERICS:
                bare = sub.id
            elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                head = sub.value.strip()
                if head in BARE_GENERICS:
                    bare = head
            if bare is None:
                continue
            from repro.analysis.context import parent_of

            parent = parent_of(sub)
            if isinstance(parent, ast.Subscript) and parent.value is sub:
                continue  # `list[int]` — parameterized, fine
            yield self.diag(
                ctx,
                sub,
                f"bare `{bare}` in {where}: parameterize the generic "
                f"(e.g. `{bare}[...]`; mypy --strict: "
                f"disallow_any_generics)",
            )
