"""RL13: resource-lifecycle typestate over the control-flow graph.

The serving and transport layers hold real OS resources — dial
sockets, ``makefile`` wrappers, shard worker processes, acquired
locks, checkpoint handles.  PR 8's review already fixed one class of
these by hand (channel leaks on worker teardown); this rule checks the
invariant mechanically: **an owned handle must reach released state on
every CFG path out of the acquiring function, including exception
paths** — or demonstrably transfer ownership (returned, stored on an
object, passed to a callee).

The analysis is a forward may-leak dataflow (the complement of the
must-release property) over :mod:`repro.analysis.cfg`:

* *gen*: ``x = open(...)`` / ``socket.create_connection`` /
  ``sock.makefile`` / ``CheckpointManager(...)`` assignments bind an
  obligation to ``x``; ``proc.start()`` arms one for a
  ``Process(...)`` constructor result (an unstarted process object
  holds no OS resource); ``lock.acquire()`` arms one keyed by the
  receiver chain.
* *kill*: calling a release method (``close``/``release``/``join``/
  ``terminate``/...) on the handle, or any *escape* — the handle
  returned, yielded, stored into an attribute/container, or passed as
  a call argument (ownership transfer is assumed, the conservative
  direction for a lint that must stay quiet on correct code).
* ``with`` scopes never create obligations (the context manager
  releases), and ``finally`` blocks sit on every routed path in the
  CFG, so the classic discharge idioms come out clean by construction.
* exception edges carry the state at the *raise points* inside a
  block, so ``sock = create_connection(...); sock.settimeout(t)``
  leaks along ``settimeout``'s exception edge until a ``try``/
  ``except``/``finally`` (or ``with``) owns the window.
* branch edges narrow ``is None``-style tests: on the path that
  acquired the handle, ``if sock is None: raise`` is unreachable, so
  its raise does not count as a leak path.

Rebinding a name that still holds an obligation (``f = open(a); f =
open(b)``) drops the first handle on the floor and is flagged at the
original acquisition.
"""

from __future__ import annotations

import ast
from typing import Iterator, NamedTuple

from repro.analysis.callgraph import Program, dotted
from repro.analysis.cfg import (
    CFG,
    EXC,
    FALSE,
    FLOW,
    TRUE,
    can_raise,
    flow_model_for,
    header_walk,
    solve_forward,
)
from repro.analysis.context import parent_of
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import BaseProgramRule, register_program

_FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef

#: Constructor names (last dotted component) whose assigned result is
#: an owned handle, mapped to a human description.
_ACQUIRERS: dict[str, str] = {
    "open": "file handle",
    "fdopen": "file handle",
    "makefile": "file handle",
    "socket": "socket",
    "create_connection": "socket",
    "create_server": "socket",
    "CheckpointManager": "checkpoint handle",
}

#: ``.start()``-gated constructors: the OS resource exists only after
#: a successful start, so the obligation is armed there.
_PROCESS_CTORS = frozenset({"Process"})

#: Receiver methods that discharge the obligation.
_RELEASES = frozenset(
    {
        "close",
        "release",
        "terminate",
        "kill",
        "join",
        "shutdown",
        "detach",
        "abort",
        "stop",
        "__exit__",
    }
)


class _Token(NamedTuple):
    """One outstanding obligation: the handle name (or receiver chain
    for locks) plus its acquisition site."""

    key: str
    line: int
    col: int
    desc: str


_State = frozenset[_Token]


@register_program
class LifecycleRule(BaseProgramRule):
    """Owned handles must be released on every path, exceptions included."""

    code = "RL13"
    name = "resource-lifecycle"
    summary = (
        "sockets, file handles, processes, acquired locks and "
        "checkpoint handles must be released/closed on every CFG path "
        "(including exception edges) or have ownership transferred"
    )
    enforced = (
        "",
        "core",
        "engine",
        "db",
        "io",
        "serve",
        "apps",
        "checker",
        "analysis",
        "bench",
    )

    def check_program(self, program: Program) -> Iterator[Diagnostic]:
        model = flow_model_for(program)
        for qname in sorted(program.table.functions):
            info = program.table.functions[qname]
            if not self._in_scope(program, info.path):
                continue
            cfg = model.cfg_of(qname)
            if cfg is None:  # pragma: no cover - table always has it
                continue
            for token, reason in _leaks(cfg, info.node):
                yield self.diag_at(
                    info.path,
                    token.line,
                    token.col,
                    f"resource may leak: {token.desc} `{token.key}` "
                    f"acquired here {reason}; release it in a "
                    "`finally`/`with`, close it in an `except` before "
                    "re-raising, or transfer ownership explicitly",
                )

    def _in_scope(self, program: Program, path: str) -> bool:
        ctx = program.contexts.get(path)
        if ctx is None or ctx.subpackage is None:
            return True
        return ctx.subpackage in self.enforced


# ----------------------------------------------------------------------
# Per-function analysis
# ----------------------------------------------------------------------
def _leaks(
    cfg: CFG, func: _FunctionNode
) -> list[tuple[_Token, str]]:
    """Tokens that may reach an exit unreleased, with the reason."""
    started = _started_process_names(cfg)
    dropped: dict[_Token, str] = {}

    def transfer(bid: int, state: _State) -> dict[str, _State]:
        cur = set(state)
        exc_acc: set[_Token] = set()
        block = cfg.blocks[bid]
        for stmt in block.statements:
            killed = _releases_of(stmt) | _escapes_of(stmt, cur)
            cur = {t for t in cur if t.key not in killed}
            if can_raise(stmt):
                exc_acc |= cur
            for rebound in sorted(_rebinds_of(stmt)):
                for tok in sorted(t for t in cur if t.key == rebound):
                    dropped[tok] = (
                        "is dropped by reassigning "
                        f"`{tok.key}` (line {stmt.lineno}) while the "
                        "handle is still open"
                    )
                    cur.discard(tok)
            cur |= _gens_of(stmt, started)
        outs: dict[str, _State] = {
            FLOW: frozenset(cur),
            EXC: frozenset(exc_acc),
        }
        narrowed = _narrow(block, cur)
        if narrowed is not None:
            outs[TRUE], outs[FALSE] = narrowed
        return outs

    exits = solve_forward(
        cfg,
        entry_state=frozenset(),
        transfer=transfer,
        join=lambda a, b: a | b,
        bottom=frozenset(),
    )
    leaked: dict[_Token, str] = dict(dropped)
    for exit_bid, flavor in (
        (cfg.exit, "on some path to function exit"),
        (cfg.raise_exit, "on an exception path out of the function"),
    ):
        for tok in exits.get(exit_bid, frozenset()):
            leaked.setdefault(
                tok, f"is not closed/released {flavor}"
            )
    return sorted(leaked.items(), key=lambda kv: (kv[0].line, kv[0].key))


def _started_process_names(cfg: CFG) -> frozenset[str]:
    """Names assigned from a ``Process(...)`` constructor *and* started
    in this function — only those carry a join/terminate obligation."""
    ctor_names: set[str] = set()
    for stmt in cfg.statements():
        name_desc = _acquiring_assign(stmt, _PROCESS_CTORS)
        if name_desc is not None:
            ctor_names.add(name_desc[0])
    started: set[str] = set()
    for stmt in cfg.statements():
        for node in header_walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "start"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in ctor_names
            ):
                started.add(node.func.value.id)
    return frozenset(started)


def _acquiring_assign(
    stmt: ast.stmt, ctors: frozenset[str] | None = None
) -> tuple[str, str] | None:
    """``(target-name, description)`` when *stmt* assigns an owned
    handle (or, with *ctors*, one of those constructors) to a name."""
    if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
        return None
    target = stmt.targets[0]
    if not isinstance(target, ast.Name):
        return None
    if not isinstance(stmt.value, ast.Call):
        return None
    name = dotted(stmt.value.func)
    if name is None:
        return None
    last = name.rsplit(".", 1)[-1]
    if ctors is not None:
        return (target.id, "process") if last in ctors else None
    desc = _ACQUIRERS.get(last)
    if desc is None:
        return None
    return target.id, desc


def _gens_of(stmt: ast.stmt, started: frozenset[str]) -> set[_Token]:
    out: set[_Token] = set()
    acquired = _acquiring_assign(stmt)
    if acquired is not None:
        name, desc = acquired
        out.add(_Token(name, stmt.lineno, stmt.col_offset, desc))
    for node in header_walk(stmt):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
        ):
            continue
        recv = dotted(node.func.value)
        if recv is None:
            continue
        if node.func.attr == "acquire":
            out.add(_Token(recv, node.lineno, node.col_offset, "lock"))
        elif node.func.attr == "start" and recv in started:
            out.add(
                _Token(recv, node.lineno, node.col_offset, "process")
            )
    return out


def _releases_of(stmt: ast.stmt) -> set[str]:
    """Receiver chains whose obligation *stmt* discharges by a release
    call (``x.close()``, ``self._lock.release()``, ...)."""
    out: set[str] = set()
    for node in header_walk(stmt):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _RELEASES
        ):
            recv = dotted(node.func.value)
            if recv is not None:
                out.add(recv)
    return out


def _rebinds_of(stmt: ast.stmt) -> set[str]:
    """Names *stmt* rebinds (plain assignment targets)."""
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    return {t.id for t in targets if isinstance(t, ast.Name)}


def _escapes_of(stmt: ast.stmt, live: set[_Token]) -> set[str]:
    """Token keys whose handle escapes in *stmt* (ownership transfer):
    used as a call argument, returned/yielded, or stored anywhere.
    Receiver positions (``sock.settimeout(...)``) and pure tests
    (``if sock is None``, ``while conn:``) do not transfer ownership."""
    keys = {t.key for t in live if "." not in t.key}
    if not keys:
        return set()
    out: set[str] = set()
    for node in header_walk(stmt):
        if not (
            isinstance(node, ast.Name)
            and node.id in keys
            and isinstance(node.ctx, ast.Load)
        ):
            continue
        parent = parent_of(node)
        if isinstance(parent, ast.Attribute) and parent.value is node:
            continue
        if isinstance(parent, (ast.Compare, ast.BoolOp)):
            continue
        if isinstance(parent, ast.UnaryOp) and isinstance(
            parent.op, ast.Not
        ):
            continue
        if (
            isinstance(parent, (ast.If, ast.While))
            and parent.test is node
        ):
            continue
        if isinstance(parent, ast.Call) and parent.func is node:
            continue
        out.add(node.id)
    return out


def _narrow(
    block: "ast.stmt | object", cur: set[_Token]
) -> tuple[_State, _State] | None:
    """Branch narrowing for a block ending in ``if``/``while`` on a
    handle name: on the edge where the name is ``None``/falsy, its
    obligation cannot be live (the acquiring path makes it truthy)."""
    from repro.analysis.cfg import BasicBlock

    if not isinstance(block, BasicBlock) or not block.statements:
        return None
    last = block.statements[-1]
    if not isinstance(last, (ast.If, ast.While)):
        return None
    name, none_on_true = _noneness_test(last.test)
    if name is None:
        return None
    with_it = frozenset(cur)
    without_it = frozenset(t for t in cur if t.key != name)
    if none_on_true:
        return without_it, with_it
    return with_it, without_it


def _noneness_test(test: ast.expr) -> tuple[str | None, bool]:
    """``(name, True)`` when the test is true iff *name* is None/falsy
    (``x is None`` / ``not x``), ``(name, False)`` for the negation
    (``x is not None`` / bare ``x``), else ``(None, ...)``."""
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        name, none_on_true = _noneness_test(test.operand)
        return name, not none_on_true
    if isinstance(test, ast.Name):
        return test.id, False
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.left, ast.Name)
        and len(test.comparators) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        if isinstance(test.ops[0], ast.Is):
            return test.left.id, True
        if isinstance(test.ops[0], ast.IsNot):
            return test.left.id, False
    return None, False
