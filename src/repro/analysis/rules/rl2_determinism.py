"""RL2 — determinism.

``engine/``, ``core/`` and ``checker/`` are contractually
bit-reproducible: the chaos CI job re-runs a ``workers=2`` engine after
injected crashes and requires a byte-identical ``.pl``.  The classic
ways Python code silently loses that property:

* **iterating a set** — iteration order depends on insertion *and*
  (for str elements) on ``PYTHONHASHSEED``, which differs per worker
  process; wrap in ``sorted(...)``;
* **module-level random functions** (``random.random()``, ``shuffle``)
  — they share one ambient, unseeded generator; derive a
  ``random.Random(seed)`` instance instead (see ``shard_seed``);
* **wall-clock reads steering control flow** — timing is fine for
  telemetry (``t0 = time.perf_counter()``) but not for decisions;
* **``os.urandom`` / ``uuid.uuid4`` / builtin ``hash()``** — entropy
  and hash randomization; digests must use ``hashlib``.

Set detection is a local, syntactic type inference: names bound to set
displays/comprehensions/``set()``/``frozenset()`` calls (or annotated
as sets) within the same scope are treated as sets; the rule flags
``for``-loops, comprehension iterables and order-preserving conversions
(``list``/``tuple``/``enumerate``/``iter``/``reversed``/``join``) over
them unless wrapped in ``sorted(...)``.

Two dataflow-lite refinements keep the inference honest:

* **scope fences** — both the inference and the check walk stop at
  nested function/class boundaries, so a set-typed ``names`` in one
  function cannot contaminate an unrelated ``names`` parameter in a
  sibling scope (each ``def`` is analyzed as its own scope);
* **ordering demotion** — a name *rebound* from ``sorted(...)``,
  ``list(...)``, ``tuple(...)`` or a list display/comprehension has had
  a deterministic order established, so the rebind removes it from the
  set-name pool (``pending = sorted(pending)`` is the blessed idiom,
  aliased or multiline).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import BaseRule, register

#: random-module callables that are seedable generator *constructors*
#: (allowed); every other ``random.<fn>`` call shares ambient state.
_RANDOM_ALLOWED = frozenset({"Random", "SystemRandom", "getstate", "setstate"})

#: Wall-clock reads that must not steer control flow.
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.monotonic",
        "time.perf_counter",
        "time.process_time",
        "time.thread_time",
        "time.time_ns",
        "time.monotonic_ns",
        "time.perf_counter_ns",
    }
)

#: Entropy sources banned outright in deterministic packages.
_ENTROPY_CALLS = frozenset({"os.urandom", "uuid.uuid1", "uuid.uuid4"})

#: Order-preserving consumers: converting a set through these bakes the
#: nondeterministic order into a list/tuple/stream.
_ORDER_SENSITIVE_CALLS = frozenset(
    {"list", "tuple", "enumerate", "iter", "reversed"}
)

_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

#: Order-insensitive consumers: a comprehension feeding one of these
#: directly cannot leak set order into the result.
_ORDER_INSENSITIVE_CALLS = frozenset(
    {"sorted", "min", "max", "sum", "set", "frozenset", "any", "all", "len"}
)


#: Assigning from one of these establishes a deterministic order: the
#: target name is *demoted* from the set-name pool even if it was
#: previously bound to a set (``pending = sorted(pending)``).
_ORDER_ESTABLISHING_CALLS = frozenset({"sorted", "list", "tuple"})

#: Scope fences: the per-scope walks stop at these node types so one
#: scope's inference never leaks into another's.
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _scope_walk(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk *scope* without descending into nested function/class scopes.

    The root itself is yielded even when it is a ``def``/``class``;
    nested scope roots are yielded (so the checker can see them) but
    their subtrees are not entered — they get their own pass.
    """
    stack: list[ast.AST] = [scope]
    while stack:
        node = stack.pop()
        yield node
        if node is not scope and isinstance(node, _SCOPE_NODES):
            continue
        stack.extend(reversed(list(ast.iter_child_nodes(node))))


def _establishes_order(node: ast.expr) -> bool:
    """Expression whose value carries a deterministic element order."""
    if isinstance(node, (ast.List, ast.ListComp, ast.Tuple)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _ORDER_ESTABLISHING_CALLS
    return False


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    return ".".join(reversed(parts))


def _annotation_is_set(node: ast.expr | None) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        return _annotation_is_set(node.value)
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet")
    if isinstance(node, ast.Attribute):
        return node.attr in ("Set", "FrozenSet", "AbstractSet")
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        head = node.value.split("[", 1)[0].strip()
        return head in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet")
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_is_set(node.left) or _annotation_is_set(node.right)
    return False


class _SetInference:
    """Scope-local syntactic inference of set-typed names."""

    def __init__(self, scope: ast.AST) -> None:
        self.names: set[str] = set()
        self._collect(scope)

    def _collect(self, scope: ast.AST) -> None:
        demoted: set[str] = set()
        for node in _scope_walk(scope):
            if isinstance(node, ast.Assign):
                if self.is_set_expr(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.names.add(target.id)
                elif _establishes_order(node.value):
                    # ``pending = sorted(pending)`` rebinds the name to
                    # an ordered value: demote it from the set pool.
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            demoted.add(target.id)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and (
                    _annotation_is_set(node.annotation)
                    or (
                        node.value is not None
                        and self.is_set_expr(node.value)
                    )
                ):
                    self.names.add(node.target.id)
            elif (
                node is scope
                and isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            ):
                args = node.args
                for arg in (
                    list(args.posonlyargs)
                    + list(args.args)
                    + list(args.kwonlyargs)
                ):
                    if _annotation_is_set(arg.annotation):
                        self.names.add(arg.arg)
        self.names -= demoted

    def is_set_expr(self, node: ast.expr) -> bool:
        """Syntactically set-valued: display, comp, ctor, algebra."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_METHODS
                and self.is_set_expr(func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        if isinstance(node, ast.IfExp):
            return self.is_set_expr(node.body) or self.is_set_expr(node.orelse)
        return False


@register
class DeterminismRule(BaseRule):
    code = "RL2"
    name = "determinism"
    summary = (
        "order/entropy hazards in bit-reproducible packages: set "
        "iteration without sorted(), ambient random, wall-clock in "
        "control flow, os.urandom/uuid4/builtin hash"
    )
    enforced = ("core", "engine", "checker", "analysis", "serve")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        yield from self._check_set_iteration(ctx)
        yield from self._check_calls(ctx)
        yield from self._check_clock_control_flow(ctx)

    # ------------------------------------------------------------------
    def _check_set_iteration(self, ctx: FileContext) -> Iterator[Diagnostic]:
        # One inference pass per scope (module, each function, each
        # class body); the walks stop at nested scope fences so names
        # never leak across unrelated scopes.
        scopes: list[ast.AST] = [ctx.tree]
        scopes.extend(
            n for n in ast.walk(ctx.tree) if isinstance(n, _SCOPE_NODES)
        )
        flagged: set[int] = set()
        for scope in scopes:
            inference = _SetInference(scope)
            if not inference.names and not self._has_set_syntax(scope):
                continue
            for node in _scope_walk(scope):
                expr: ast.expr | None = None
                what = ""
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    expr, what = node.iter, "for-loop"
                elif isinstance(node, ast.comprehension):
                    if self._order_insensitive_comprehension(node):
                        continue
                    expr, what = node.iter, "comprehension"
                elif isinstance(node, ast.Call):
                    name = _dotted(node.func)
                    if (
                        name in _ORDER_SENSITIVE_CALLS
                        and node.args
                        and not node.keywords
                    ):
                        expr, what = node.args[0], f"{name}() conversion"
                    elif (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr == "join"
                        and node.args
                    ):
                        expr, what = node.args[0], "str.join"
                    elif (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr == "pop"
                        and not node.args
                        and inference.is_set_expr(node.func.value)
                    ):
                        expr, what = node.func.value, "set.pop()"
                if expr is None or not inference.is_set_expr(expr):
                    continue
                key = id(node)
                if key in flagged:
                    continue
                flagged.add(key)
                yield self.diag(
                    ctx,
                    expr,
                    f"unordered set iterated by {what}: iteration order "
                    f"is not reproducible across processes — wrap in "
                    f"sorted(...) (or restructure around a list/dict)",
                )

    @staticmethod
    def _order_insensitive_comprehension(node: ast.comprehension) -> bool:
        """Set→set rebuilds and ``sorted(x for x in s)`` are order-free."""
        from repro.analysis.context import parent_of

        owner = parent_of(node)
        if isinstance(owner, ast.SetComp):
            return True  # building an unordered container again
        if isinstance(owner, (ast.GeneratorExp, ast.ListComp)):
            call = parent_of(owner)
            if isinstance(call, ast.Call) and owner in call.args:
                name = _dotted(call.func)
                if name in _ORDER_INSENSITIVE_CALLS:
                    return True
        return False

    @staticmethod
    def _has_set_syntax(scope: ast.AST) -> bool:
        for node in _scope_walk(scope):
            if isinstance(node, (ast.Set, ast.SetComp)):
                return True
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in ("set", "frozenset"):
                    return True
        return False

    # ------------------------------------------------------------------
    def _check_calls(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            if name is None:
                continue
            if name in _ENTROPY_CALLS:
                yield self.diag(
                    ctx,
                    node,
                    f"`{name}()` draws entropy: bit-reproducible code "
                    f"must derive randomness from the run seed "
                    f"(random.Random(seed)) or use hashlib for digests",
                )
            elif name == "hash":
                yield self.diag(
                    ctx,
                    node,
                    "builtin hash() is randomized per process for str "
                    "(PYTHONHASHSEED); use hashlib for stable digests "
                    "or compare values directly",
                )
            elif (
                name.startswith("random.")
                and name.split(".", 1)[1] not in _RANDOM_ALLOWED
                and name.count(".") == 1
            ):
                yield self.diag(
                    ctx,
                    node,
                    f"`{name}()` uses the ambient module-level RNG; "
                    f"construct random.Random(derived_seed) so results "
                    f"do not depend on import-time state",
                )

    # ------------------------------------------------------------------
    def _check_clock_control_flow(
        self, ctx: FileContext
    ) -> Iterator[Diagnostic]:
        tests: list[ast.expr] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.If, ast.While)):
                tests.append(node.test)
            elif isinstance(node, ast.IfExp):
                tests.append(node.test)
            elif isinstance(node, ast.Assert):
                tests.append(node.test)
            elif isinstance(node, ast.Compare):
                tests.append(node)
        seen: set[int] = set()
        for test in tests:
            for sub in ast.walk(test):
                if not isinstance(sub, ast.Call) or id(sub) in seen:
                    continue
                name = _dotted(sub.func)
                if name in _CLOCK_CALLS:
                    seen.add(id(sub))
                    yield self.diag(
                        ctx,
                        sub,
                        f"wall-clock read `{name}()` steers control "
                        f"flow: decisions must not depend on timing "
                        f"(keep clocks in telemetry assignments only)",
                    )
