"""RL4 — exception taxonomy.

``engine/errors.py`` (PR 3) gives every engine failure mode a class so
callers — the CLI, the supervisor's degradation ladder, tests — react
to *categories* instead of string-matching messages.  Raising a generic
``Exception`` / ``RuntimeError`` in ``engine/`` silently escapes that
contract (a supervisor that retries on ``EngineError`` will crash on
it), and a new exception class defined outside the taxonomy fragments
it.  Two checks, both scoped to ``engine/``:

* ``raise Exception(...)`` / ``raise RuntimeError(...)`` /
  ``raise BaseException(...)`` → use (or add) a taxonomy class;
* ``class FooError(Exception)`` defined outside ``errors.py`` → derive
  from :class:`~repro.engine.errors.EngineError` so category handlers
  keep working.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import BaseRule, register

#: Generic exception types that must not be raised in engine code.
GENERIC_EXCEPTIONS = frozenset({"Exception", "RuntimeError", "BaseException"})

#: Module that owns the taxonomy (the one place generic bases are fine).
TAXONOMY_MODULE = "errors.py"


def _base_name(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


@register
class ExceptionTaxonomyRule(BaseRule):
    code = "RL4"
    name = "exception-taxonomy"
    summary = (
        "generic Exception/RuntimeError raised (or subclassed outside "
        "errors.py) in engine/ instead of the EngineError taxonomy"
    )
    enforced = ("engine",)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        in_taxonomy = ctx.module_name == TAXONOMY_MODULE
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Raise) and node.exc is not None:
                target = node.exc
                if isinstance(target, ast.Call):
                    target = target.func
                name = _base_name(target)
                if name in GENERIC_EXCEPTIONS:
                    yield self.diag(
                        ctx,
                        node,
                        f"`raise {name}` bypasses the engine failure "
                        f"taxonomy; raise an `engine.errors` class (or "
                        f"add one) so callers can handle the category",
                    )
            elif isinstance(node, ast.ClassDef) and not in_taxonomy:
                for base in node.bases:
                    name = _base_name(base)
                    if name in GENERIC_EXCEPTIONS:
                        yield self.diag(
                            ctx,
                            node,
                            f"exception class `{node.name}` derives from "
                            f"generic `{name}` outside errors.py; derive "
                            f"from EngineError (or a taxonomy subclass) "
                            f"so category handlers keep working",
                        )
