"""Rule modules — importing this package populates the registry.

Add a new rule by dropping a module here that defines a
``@register``-decorated :class:`~repro.analysis.registry.BaseRule`
subclass and importing it below; see docs/static_analysis.md for the
step-by-step recipe.
"""

from repro.analysis.rules import (  # noqa: F401  (imported for side effects)
    rl1_journal,
    rl2_determinism,
    rl3_transaction,
    rl4_exceptions,
    rl5_typing,
    rl6_procboundary,
    rl7_journalflow,
    rl8_sharedstate,
    rl9_awaittxn,
    rl10_blockingloop,
    rl11_lockset,
    rl12_taint,
    rl13_lifecycle,
    rl14_hotpath,
)

__all__ = [
    "rl1_journal",
    "rl2_determinism",
    "rl3_transaction",
    "rl4_exceptions",
    "rl5_typing",
    "rl6_procboundary",
    "rl7_journalflow",
    "rl8_sharedstate",
    "rl9_awaittxn",
    "rl10_blockingloop",
    "rl11_lockset",
    "rl12_taint",
    "rl13_lifecycle",
    "rl14_hotpath",
]
