"""RL11: lockset discipline for state shared across threads and tasks.

The TCP shard coordinator (:mod:`repro.engine.remote`) runs one accept
thread, one handler thread per worker connection and a heartbeat
thread, all mutating one lease table under one lock; the serve layer
mixes an event loop with ``asyncio.to_thread`` job threads.  Two
concurrency bugs hide in that shape and survive every per-file rule:

* **Inconsistent locksets** (Eraser-style, writes only): an attribute
  of a lock-owning class — or a module-level global — written from two
  or more concurrency roots where *some* writes hold a lock and others
  hold none.  The locked sites document the discipline; the bare sites
  break it.  Locksets combine the lexical ``with self._lock:`` scope
  with the inherited entry lockset (the meet over call sites), so the
  coordinator's "caller holds the lock" helpers analyze correctly.
* **Cross-thread loop touches**: event-loop objects (``asyncio.Queue``,
  futures, the loop itself) are not thread-safe; the only blessed hops
  from a worker thread are ``call_soon_threadsafe`` /
  ``run_coroutine_threadsafe``.  Any direct ``put_nowait`` /
  ``set_result`` / ``call_soon`` / ``create_task`` on a loop object
  from thread context is flagged.

Concurrency roots are spawn payloads (threads, tasks, to_thread
off-loads) plus the spawning frames themselves — the spawner keeps
running concurrently with its payload.  Reads are deliberately exempt:
the tree's convention allows racy reads of monotonic counters, and
flagging them would bury the real findings.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import ClassInfo, Program, own_nodes
from repro.analysis.concurrency import (
    THREADSAFE_HOPS,
    ConcurrencyModel,
    model_for,
)
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import BaseProgramRule, register_program
from repro.analysis.rules.rl8_sharedstate import MUTATOR_METHODS

_FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef
#: (write node, enclosing method qname, reaching roots, lockset held).
_Access = tuple[ast.AST, str, frozenset[str], frozenset[str]]
_Closures = dict[str, frozenset[str]]

#: Loop-object methods unsafe to call from a foreign thread.
_LOOP_UNSAFE_BY_NAME: frozenset[str] = frozenset(
    {"call_soon", "call_later", "call_at", "create_task"}
)
_LOOP_UNSAFE_TYPED: frozenset[str] = frozenset(
    {"put_nowait", "get_nowait", "set_result", "set_exception"}
)


@register_program
class LocksetRule(BaseProgramRule):
    """Shared state needs one lockset; loop objects need loop-hops."""

    code = "RL11"
    name = "lockset"
    summary = (
        "state written from several threads/tasks must hold a "
        "consistent lockset, and event-loop objects are only touched "
        "from threads via *_threadsafe hops"
    )
    enforced = ("", "core", "engine", "apps", "io", "checker", "serve")

    def check_program(self, program: Program) -> Iterator[Diagnostic]:
        model = model_for(program)
        if not model.spawns:
            return
        roots = model.concurrency_roots()
        if not roots:
            return
        closures = {
            root: frozenset(program.graph.reachable_from([root]))
            for root in sorted(roots)
        }
        yield from self._check_attr_locksets(program, model, closures)
        yield from self._check_global_locksets(program, model, closures)
        yield from self._check_loop_touches(program, model)

    # ------------------------------------------------------------------
    # Inconsistent locksets on lock-owning classes
    # ------------------------------------------------------------------
    def _check_attr_locksets(
        self,
        program: Program,
        model: ConcurrencyModel,
        closures: _Closures,
    ) -> Iterator[Diagnostic]:
        for cls_qname in sorted(model.lock_attrs):
            cls = program.table.classes[cls_qname]
            accesses: dict[str, list[_Access]] = {}
            for mname in sorted(cls.methods):
                qname = cls.methods[mname]
                origins = frozenset(
                    root
                    for root, closure in closures.items()
                    if qname in closure
                )
                if not origins:
                    continue
                info = program.table.functions[qname]
                for attr, node in self._attr_writes(info.node):
                    if attr in model.lock_attrs[cls_qname]:
                        continue  # writing the lock attr itself
                    accesses.setdefault(attr, []).append(
                        (
                            node,
                            qname,
                            origins,
                            model.effective_lockset(node, qname),
                        )
                    )
            for attr in sorted(accesses):
                yield from self._judge(
                    program, f"{_short(cls_qname)}.{attr}", accesses[attr]
                )

    def _attr_writes(
        self, func_node: _FunctionNode
    ) -> Iterator[tuple[str, ast.AST]]:
        """``self.X`` attribute names written in *func_node*'s body."""
        for node in own_nodes(func_node):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATOR_METHODS
                ):
                    attr = _self_attr_of(func.value)
                    if attr is not None:
                        yield attr, node
                continue
            for target in targets:
                attr = _self_attr_of(target)
                if attr is not None:
                    yield attr, node

    # ------------------------------------------------------------------
    # Inconsistent locksets on module globals
    # ------------------------------------------------------------------
    def _check_global_locksets(
        self,
        program: Program,
        model: ConcurrencyModel,
        closures: _Closures,
    ) -> Iterator[Diagnostic]:
        table = program.table
        accesses: dict[tuple[str, str], list[_Access]] = {}
        reached: dict[str, frozenset[str]] = {}
        for root, closure in closures.items():
            for qname in closure:
                reached[qname] = reached.get(qname, frozenset()) | {root}
        for qname in sorted(reached):
            info = table.functions.get(qname)
            if info is None:
                continue
            declared = _global_decls(info.node)
            for node in own_nodes(info.node):
                name: str | None = None
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Name)
                            and target.id in declared
                        ):
                            name = target.id
                elif isinstance(node, ast.AugAssign):
                    if (
                        isinstance(node.target, ast.Name)
                        and node.target.id in declared
                    ):
                        name = node.target.id
                elif isinstance(node, ast.Call):
                    func = node.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in MUTATOR_METHODS
                        and isinstance(func.value, ast.Name)
                    ):
                        var = (info.module, func.value.id)
                        gvar = table.globals.get(var)
                        if (
                            gvar is not None
                            and gvar.mutable
                            and func.value.id not in _local_names(info.node)
                        ):
                            name = func.value.id
                if name is None:
                    continue
                if name in model.module_locks.get(info.module, ()):
                    continue
                accesses.setdefault((info.module, name), []).append(
                    (
                        node,
                        qname,
                        reached[qname],
                        model.effective_lockset(node, qname),
                    )
                )
        for module, name in sorted(accesses):
            yield from self._judge(
                program, f"{_short(module)}.{name}", accesses[(module, name)]
            )

    # ------------------------------------------------------------------
    def _judge(
        self, program: Program, what: str, rows: list[_Access]
    ) -> Iterator[Diagnostic]:
        """Flag bare writes when locked writes document a discipline
        and the accesses span ≥2 concurrency roots."""
        all_roots: set[str] = set()
        for _node, _qname, origins, _lockset in rows:
            all_roots.update(origins)
        if len(all_roots) < 2:
            return
        locked = [r for r in rows if r[3]]
        bare = [r for r in rows if not r[3]]
        if not locked or not bare:
            return
        tokens = sorted({t for r in locked for t in r[3]})
        seen: set[tuple[str, int]] = set()
        for node, qname, _origins, _lockset in bare:
            info = program.table.functions[qname]
            key = (info.path, node.lineno)
            if key in seen or not self._in_scope(program, info.path):
                continue
            seen.add(key)
            yield self.diag_at(
                info.path,
                node.lineno,
                node.col_offset,
                f"{what} is written from {len(all_roots)} concurrent "
                f"contexts with an inconsistent lockset: this write in "
                f"{_short(qname)} holds no lock while other writes "
                f"hold {', '.join(_short(t) for t in tokens)}; wrap it "
                "in the same `with` scope (or document single-threaded "
                "ownership with a suppression)",
            )

    # ------------------------------------------------------------------
    # Cross-thread event-loop touches
    # ------------------------------------------------------------------
    def _check_loop_touches(
        self, program: Program, model: ConcurrencyModel
    ) -> Iterator[Diagnostic]:
        table = program.table
        for qname in sorted(model.thread_context()):
            info = table.functions.get(qname)
            if info is None or not self._in_scope(program, info.path):
                continue
            types = model._local_types_of(info)
            cls: ClassInfo | None = None
            if info.class_qname is not None:
                cls = table.classes.get(info.class_qname)
            for node in own_nodes(info.node):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr in THREADSAFE_HOPS:
                    continue
                unsafe = func.attr in _LOOP_UNSAFE_BY_NAME or (
                    func.attr in _LOOP_UNSAFE_TYPED
                    and _receiver_is_asyncio(func.value, types, cls)
                )
                if unsafe:
                    yield self.diag_at(
                        info.path,
                        node.lineno,
                        node.col_offset,
                        f"thread-context frame {_short(qname)} calls "
                        f"{func.attr} on an event-loop object: loop "
                        "objects are not thread-safe; route the call "
                        "through loop.call_soon_threadsafe (or "
                        "run_coroutine_threadsafe)",
                    )

    def _in_scope(self, program: Program, path: str) -> bool:
        ctx = program.contexts.get(path)
        if ctx is None or ctx.subpackage is None:
            return True
        return ctx.subpackage in self.enforced


# ----------------------------------------------------------------------
def _self_attr_of(expr: ast.expr) -> str | None:
    """First attribute name of a chain rooted at ``self``: the owning
    slot for ``self.X``, ``self.X[k]`` and ``self.X.y.append`` alike."""
    cur = expr
    while isinstance(cur, ast.Subscript):
        cur = cur.value
    chain: list[str] = []
    while isinstance(cur, ast.Attribute):
        chain.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name) and cur.id == "self" and chain:
        return chain[-1]
    return None


def _receiver_is_asyncio(
    expr: ast.expr, types: dict[str, str], cls: ClassInfo | None
) -> bool:
    """Receiver statically typed as an asyncio object."""
    tname: str | None = None
    if isinstance(expr, ast.Name):
        tname = types.get(expr.id)
    elif (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and cls is not None
    ):
        tname = cls.attr_types.get(expr.attr)
    if tname is None:
        return False
    return tname.startswith("asyncio.") or tname in (
        "Queue", "Future", "Event", "AbstractEventLoop",
    )


def _global_decls(node: _FunctionNode) -> frozenset[str]:
    names: set[str] = set()
    for sub in own_nodes(node):
        if isinstance(sub, ast.Global):
            names.update(sub.names)
    return frozenset(names)


def _local_names(func_node: _FunctionNode) -> frozenset[str]:
    """Names bound locally (params + assignments), shadowing globals."""
    names: set[str] = set()
    args = func_node.args
    for arg in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
    ):
        names.add(arg.arg)
    for sub in own_nodes(func_node):
        if isinstance(sub, ast.Assign):
            for target in sub.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(sub.target, ast.Name):
                names.add(sub.target.id)
        elif isinstance(sub, (ast.For, ast.AsyncFor)):
            if isinstance(sub.target, ast.Name):
                names.add(sub.target.id)
    return frozenset(names)


def _short(qname: str) -> str:
    return qname[6:] if qname.startswith("repro.") else qname
